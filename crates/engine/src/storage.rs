//! Persistent columnar chunk storage: the on-disk format behind lazy
//! chunk residency.
//!
//! The paper assumes each worker serves chunks from a disk-resident,
//! scan-oriented store (§4.3 "shared scanning", §5.2) rather than from
//! RAM. This module supplies that store for the embedded engine: one
//! *chunk file* per chunk table, laid out column-major in fixed-row-count
//! pages so a scan touches only the columns (and, via zone maps, only the
//! pages) it needs.
//!
//! ## File layout
//!
//! ```text
//! +----------+----------------------------+--------+-----------+----------+
//! | "QCHUNK01" | page blobs (row-group    | footer | footer len | "QFOOTR01" |
//! |  magic     |  stripes, col-major)     |        |  (u64 LE)  |  tail      |
//! +----------+----------------------------+--------+-----------+----------+
//! ```
//!
//! Rows are buffered `page_rows` at a time and flushed as one *row-group
//! stripe*: one page per column, written back to back. Each page carries
//! its own null bitmap and one of several encodings — plain little-endian
//! values, run-length runs, or a dictionary for low-cardinality integer
//! and string columns; the writer picks whichever is smallest per page.
//! Floats are stored as raw IEEE-754 bits, so NaN payloads and signed
//! zeros round-trip bit-identically.
//!
//! The footer holds the schema, the row count, the indexed-column name,
//! and a page directory: per column, per stripe, the byte extent,
//! encoding, null count and a *zone map* (min/max over non-NULL,
//! non-NaN values). A reader parses only the footer at open time; page
//! bytes are fetched on demand with positioned reads, so opening a chunk
//! costs O(footer) memory regardless of file size.
//!
//! ## Zone-map page elision
//!
//! [`prune_mask`] evaluates the compiled filter kernels of a vectorized
//! plan against the per-page zone maps and marks every stripe that
//! *provably* yields no passing row. Elision is conservative: a stripe is
//! skipped only when some kernel rejects all of its rows under the exact
//! comparison semantics the kernel itself uses (integer bounds compare as
//! `i64`; anything mixed compares through the same monotone `as f64`
//! conversion the kernel applies; NULL and NaN values fail every range
//! predicate, so a page with no valid values is skipped outright).
//! General program kernels never prune.
//!
//! ## Residency
//!
//! [`StoredChunk`] is the catalog-side handle: footer plus an empty
//! *shape* table (schema + index definition) that planners compile
//! against without touching row data. Full materialization for the
//! interpreter, joins and index seeks goes through [`Residency`], a
//! byte-budgeted LRU of decoded tables shared by every clone of a
//! [`crate::Database`] — the worker's lazy chunk residency.

use crate::compile::{Kernel, NumLit};
use crate::schema::{ColumnDef, ColumnType, Schema};
use crate::table::{ColumnData, Table};
use crate::value::Value;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Leading file magic (format version 1).
pub const MAGIC: &[u8; 8] = b"QCHUNK01";
/// Trailing magic after the footer length.
pub const TAIL: &[u8; 8] = b"QFOOTR01";
/// Default rows per page (one stripe buffers this many rows per column).
pub const DEFAULT_PAGE_ROWS: usize = 1024;
/// Default residency budget: 256 MiB of decoded tables.
pub const DEFAULT_RESIDENCY_BUDGET: u64 = 256 * 1024 * 1024;

const ENC_INT_PLAIN: u8 = 0;
const ENC_INT_RLE: u8 = 1;
const ENC_INT_DICT: u8 = 2;
const ENC_FLOAT_PLAIN: u8 = 3;
const ENC_STR_PLAIN: u8 = 4;
const ENC_STR_DICT: u8 = 5;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Per-page zone map: enough to decide, conservatively, whether a filter
/// kernel can possibly accept a row of the page.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum PageZone {
    /// Integer page: min/max over the `valid` (non-NULL) values;
    /// meaningful only when `valid > 0`.
    Int { valid: u64, min: i64, max: i64 },
    /// Float page: min/max over the `valid` (non-NULL, non-NaN) values,
    /// plus the NaN count (NaNs fail range predicates but poison spatial
    /// pruning conservatively).
    Float {
        valid: u64,
        nans: u64,
        min: f64,
        max: f64,
    },
    /// String page: no ordering statistics kept (catalog filters are
    /// numeric).
    Str,
}

/// Directory entry for one column page.
#[derive(Clone, Debug)]
pub(crate) struct PageMeta {
    offset: u64,
    len: u64,
    rows: u32,
    nulls: u32,
    encoding: u8,
    pub(crate) zone: PageZone,
}

/// Parsed chunk-file footer: schema, row count, index column and the
/// page directory (`pages[col][stripe]`).
#[derive(Clone, Debug)]
pub(crate) struct Footer {
    schema: Schema,
    rows: u64,
    page_rows: u32,
    index_col: Option<String>,
    pub(crate) pages: Vec<Vec<PageMeta>>,
}

impl Footer {
    /// Number of row-group stripes (pages per column).
    pub(crate) fn n_groups(&self) -> usize {
        self.pages.first().map(|p| p.len()).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Little-endian byte helpers.

fn w_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn w_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn w_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn w_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn w_str(buf: &mut Vec<u8>, s: &str) {
    w_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Sequential reader over a byte slice with range checks.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated chunk data"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64_bits(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-UTF-8 string in chunk file"))
    }
}

// ---------------------------------------------------------------------------
// Page encoding.

/// Packs the null mask as one bit per row (bit set = NULL).
fn encode_bitmap(buf: &mut Vec<u8>, nulls: &[bool]) {
    let mut byte = 0u8;
    for (i, &n) in nulls.iter().enumerate() {
        if n {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !nulls.len().is_multiple_of(8) {
        buf.push(byte);
    }
}

fn decode_bitmap(r: &mut ByteReader<'_>, rows: usize, out: &mut Vec<bool>) -> io::Result<u32> {
    let bytes = r.take(rows.div_ceil(8))?;
    let mut nulls = 0u32;
    for i in 0..rows {
        let is_null = bytes[i / 8] & (1 << (i % 8)) != 0;
        if is_null {
            nulls += 1;
        }
        out.push(is_null);
    }
    Ok(nulls)
}

/// Encodes one integer page, choosing the smallest of plain / RLE /
/// dictionary layouts.
fn encode_int_page(buf: &mut Vec<u8>, vals: &[i64]) -> u8 {
    let mut runs: Vec<(u32, i64)> = Vec::new();
    for &v in vals {
        match runs.last_mut() {
            Some((n, rv)) if *rv == v && *n < u32::MAX => *n += 1,
            _ => runs.push((1, v)),
        }
    }
    let mut distinct: Vec<i64> = runs.iter().map(|&(_, v)| v).collect();
    distinct.sort_unstable();
    distinct.dedup();

    let plain = 8 * vals.len();
    let rle = 4 + 12 * runs.len();
    let dict = if distinct.len() <= 256 {
        Some(4 + 8 * distinct.len() + vals.len())
    } else {
        None
    };

    if let Some(d) = dict {
        if d < plain && d <= rle {
            w_u32(buf, distinct.len() as u32);
            for &v in &distinct {
                w_i64(buf, v);
            }
            for &v in vals {
                let idx = distinct.binary_search(&v).expect("value in dictionary");
                w_u8(buf, idx as u8);
            }
            return ENC_INT_DICT;
        }
    }
    if rle < plain {
        w_u32(buf, runs.len() as u32);
        for &(n, v) in &runs {
            w_u32(buf, n);
            w_i64(buf, v);
        }
        return ENC_INT_RLE;
    }
    for &v in vals {
        w_i64(buf, v);
    }
    ENC_INT_PLAIN
}

/// Encodes one string page: plain length-prefixed values, or a sorted
/// dictionary when repetition makes it smaller.
fn encode_str_page(buf: &mut Vec<u8>, vals: &[String]) -> u8 {
    let mut distinct: Vec<&str> = vals.iter().map(|s| s.as_str()).collect();
    distinct.sort_unstable();
    distinct.dedup();

    let plain: usize = vals.iter().map(|s| 4 + s.len()).sum();
    let dict: usize = 4 + distinct.iter().map(|s| 4 + s.len()).sum::<usize>() + 4 * vals.len();

    if distinct.len() <= u32::MAX as usize && dict < plain {
        w_u32(buf, distinct.len() as u32);
        for s in &distinct {
            w_str(buf, s);
        }
        for v in vals {
            let idx = distinct.binary_search(&v.as_str()).expect("in dictionary");
            w_u32(buf, idx as u32);
        }
        ENC_STR_DICT
    } else {
        for v in vals {
            w_str(buf, v);
        }
        ENC_STR_PLAIN
    }
}

/// Computes the zone map for one page.
fn page_zone(col: &ColumnSliceView<'_>, nulls: &[bool]) -> PageZone {
    match col {
        ColumnSliceView::Int(vals) => {
            let (mut valid, mut min, mut max) = (0u64, i64::MAX, i64::MIN);
            for (&v, &n) in vals.iter().zip(nulls) {
                if !n {
                    valid += 1;
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            PageZone::Int { valid, min, max }
        }
        ColumnSliceView::Float(vals) => {
            let (mut valid, mut nans) = (0u64, 0u64);
            let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
            for (&v, &n) in vals.iter().zip(nulls) {
                if n {
                    continue;
                }
                if v.is_nan() {
                    nans += 1;
                } else {
                    valid += 1;
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            PageZone::Float {
                valid,
                nans,
                min,
                max,
            }
        }
        ColumnSliceView::Str(_) => PageZone::Str,
    }
}

/// Borrowed page slice, by column type.
enum ColumnSliceView<'a> {
    Int(&'a [i64]),
    Float(&'a [f64]),
    Str(&'a [String]),
}

// ---------------------------------------------------------------------------
// Writer.

/// Streams rows into a chunk file in bounded memory: at most one
/// row-group stripe (`page_rows` rows) is buffered before it is encoded,
/// flushed and dropped. This is how `datagen` produces datasets larger
/// than RAM.
pub struct StreamWriter {
    out: BufWriter<File>,
    schema: Schema,
    page_rows: usize,
    index_col: Option<String>,
    buf: Table,
    pages: Vec<Vec<PageMeta>>,
    offset: u64,
    rows: u64,
}

impl StreamWriter {
    /// Creates `path` and writes the header. `page_rows` is the stripe
    /// height; [`DEFAULT_PAGE_ROWS`] suits catalog tables.
    pub fn create(path: &Path, schema: Schema, page_rows: usize) -> io::Result<StreamWriter> {
        assert!(page_rows > 0, "page_rows must be positive");
        let ncols = schema.len();
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        Ok(StreamWriter {
            out,
            buf: Table::new(schema.clone()),
            schema,
            page_rows,
            index_col: None,
            pages: vec![Vec::new(); ncols],
            offset: MAGIC.len() as u64,
            rows: 0,
        })
    }

    /// Declares the indexed column (must be an existing integer column);
    /// readers rebuild the index on full materialization.
    pub fn set_index_column(&mut self, name: &str) -> io::Result<()> {
        match self.schema.column(name) {
            Some(def) if def.ty == ColumnType::Int => {
                self.index_col = Some(name.to_string());
                Ok(())
            }
            _ => Err(bad(format!("index column {name:?} missing or not integer"))),
        }
    }

    /// Appends one row; flushes a stripe when the buffer fills.
    pub fn push_row(&mut self, row: Vec<Value>) -> io::Result<()> {
        self.buf
            .push_row(row)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        if self.buf.num_rows() >= self.page_rows {
            self.flush_stripe()?;
        }
        Ok(())
    }

    fn flush_stripe(&mut self) -> io::Result<()> {
        let rows = self.buf.num_rows();
        if rows == 0 {
            return Ok(());
        }
        for col in 0..self.schema.len() {
            let nulls = self.buf.null_mask(col);
            let view = match self.buf.column_slice(col) {
                crate::table::ColumnSlice::Int(v) => ColumnSliceView::Int(v),
                crate::table::ColumnSlice::Float(v) => ColumnSliceView::Float(v),
                crate::table::ColumnSlice::Str(v) => ColumnSliceView::Str(v),
            };
            let zone = page_zone(&view, nulls);
            let mut blob = Vec::new();
            encode_bitmap(&mut blob, nulls);
            let encoding = match view {
                ColumnSliceView::Int(vals) => encode_int_page(&mut blob, vals),
                ColumnSliceView::Float(vals) => {
                    for &v in vals {
                        w_u64(&mut blob, v.to_bits());
                    }
                    ENC_FLOAT_PLAIN
                }
                ColumnSliceView::Str(vals) => encode_str_page(&mut blob, vals),
            };
            self.out.write_all(&blob)?;
            self.pages[col].push(PageMeta {
                offset: self.offset,
                len: blob.len() as u64,
                rows: rows as u32,
                nulls: nulls.iter().filter(|&&n| n).count() as u32,
                encoding,
                zone,
            });
            self.offset += blob.len() as u64;
        }
        self.rows += rows as u64;
        self.buf = Table::new(self.schema.clone());
        Ok(())
    }

    /// Flushes the tail stripe and the footer; returns total bytes
    /// written.
    pub fn finish(mut self) -> io::Result<u64> {
        self.flush_stripe()?;
        let mut footer = Vec::new();
        w_u32(&mut footer, self.schema.len() as u32);
        for def in self.schema.columns() {
            w_str(&mut footer, &def.name);
            w_u8(
                &mut footer,
                match def.ty {
                    ColumnType::Int => 0,
                    ColumnType::Float => 1,
                    ColumnType::Str => 2,
                },
            );
        }
        w_u64(&mut footer, self.rows);
        w_u32(&mut footer, self.page_rows as u32);
        match &self.index_col {
            Some(name) => {
                w_u8(&mut footer, 1);
                w_str(&mut footer, name);
            }
            None => w_u8(&mut footer, 0),
        }
        let n_groups = self.pages.first().map(|p| p.len()).unwrap_or(0);
        w_u32(&mut footer, n_groups as u32);
        for col_pages in &self.pages {
            for p in col_pages {
                w_u64(&mut footer, p.offset);
                w_u64(&mut footer, p.len);
                w_u32(&mut footer, p.rows);
                w_u32(&mut footer, p.nulls);
                w_u8(&mut footer, p.encoding);
                match p.zone {
                    PageZone::Int { valid, min, max } => {
                        w_u64(&mut footer, valid);
                        w_i64(&mut footer, min);
                        w_i64(&mut footer, max);
                    }
                    PageZone::Float {
                        valid,
                        nans,
                        min,
                        max,
                    } => {
                        w_u64(&mut footer, valid);
                        w_u64(&mut footer, nans);
                        w_u64(&mut footer, min.to_bits());
                        w_u64(&mut footer, max.to_bits());
                    }
                    PageZone::Str => {}
                }
            }
        }
        self.out.write_all(&footer)?;
        self.out.write_all(&(footer.len() as u64).to_le_bytes())?;
        self.out.write_all(TAIL)?;
        self.out.flush()?;
        Ok(self.offset + footer.len() as u64 + 16)
    }

    /// Rows pushed so far (flushed + buffered).
    pub fn rows_written(&self) -> u64 {
        self.rows + self.buf.num_rows() as u64
    }
}

/// Writes an in-memory table to a chunk file (index column carried over);
/// returns the file size in bytes.
pub fn write_table(path: &Path, table: &Table, page_rows: usize) -> io::Result<u64> {
    let mut w = StreamWriter::create(path, table.schema().clone(), page_rows)?;
    if let Some(ic) = table.indexed_column() {
        let ic = ic.to_string();
        w.set_index_column(&ic)?;
    }
    for r in 0..table.num_rows() {
        w.push_row(table.row(r))?;
    }
    w.finish()
}

// ---------------------------------------------------------------------------
// Reader.

/// An open chunk file: parsed footer plus the path for positioned page
/// reads. Opening costs O(footer); no row data is loaded.
#[derive(Clone, Debug)]
pub struct ChunkFile {
    path: PathBuf,
    footer: Footer,
    file_bytes: u64,
}

impl ChunkFile {
    /// Opens `path` and parses the footer.
    pub fn open(path: &Path) -> io::Result<ChunkFile> {
        let mut f = File::open(path)?;
        let file_bytes = f.seek(SeekFrom::End(0))?;
        let mut head = [0u8; 8];
        f.seek(SeekFrom::Start(0))?;
        f.read_exact(&mut head)?;
        if &head != MAGIC {
            return Err(bad("not a chunk file (bad magic)"));
        }
        if file_bytes < (MAGIC.len() + 16) as u64 {
            return Err(bad("chunk file too short"));
        }
        let mut tail = [0u8; 16];
        f.seek(SeekFrom::End(-16))?;
        f.read_exact(&mut tail)?;
        if &tail[8..] != TAIL {
            return Err(bad("chunk file missing footer magic"));
        }
        let footer_len = u64::from_le_bytes(tail[..8].try_into().unwrap());
        if footer_len + 16 + MAGIC.len() as u64 > file_bytes {
            return Err(bad("chunk footer length out of range"));
        }
        let mut footer_bytes = vec![0u8; footer_len as usize];
        f.seek(SeekFrom::End(-16 - footer_len as i64))?;
        f.read_exact(&mut footer_bytes)?;
        let footer = parse_footer(&footer_bytes)?;
        Ok(ChunkFile {
            path: path.to_path_buf(),
            footer,
            file_bytes,
        })
    }

    /// The stored schema.
    pub fn schema(&self) -> &Schema {
        &self.footer.schema
    }

    /// Total row count.
    pub fn rows(&self) -> u64 {
        self.footer.rows
    }

    /// Number of row-group stripes (pages per column).
    pub fn row_groups(&self) -> usize {
        self.footer.n_groups()
    }

    /// The stripe height the file was written with.
    pub fn page_rows(&self) -> u32 {
        self.footer.page_rows
    }

    /// Declared index column, when any.
    pub fn index_column(&self) -> Option<&str> {
        self.footer.index_col.as_deref()
    }

    /// File size in bytes.
    pub fn on_disk_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// The chunk file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    pub(crate) fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Decodes the selected stripes into one table, preserving row order.
    ///
    /// `keep` selects stripes (`None` = all); `needed` selects columns
    /// (`None` = all). Unneeded columns are filled with non-NULL defaults
    /// — callers must only project columns they marked needed.
    pub(crate) fn read_groups(
        &self,
        keep: Option<&[bool]>,
        needed: Option<&[bool]>,
    ) -> io::Result<Table> {
        let schema = self.footer.schema.clone();
        let ncols = schema.len();
        let n_groups = self.footer.n_groups();
        let mut columns: Vec<ColumnData> = schema
            .columns()
            .iter()
            .map(|c| match c.ty {
                ColumnType::Int => ColumnData::Int(Vec::new()),
                ColumnType::Float => ColumnData::Float(Vec::new()),
                ColumnType::Str => ColumnData::Str(Vec::new()),
            })
            .collect();
        let mut nulls: Vec<Vec<bool>> = vec![Vec::new(); ncols];
        let mut rows = 0usize;

        let mut f = File::open(&self.path)?;
        let mut blob = Vec::new();
        for g in 0..n_groups {
            if let Some(k) = keep {
                if !k[g] {
                    continue;
                }
            }
            let group_rows = self
                .footer
                .pages
                .first()
                .map(|p| p[g].rows as usize)
                .unwrap_or(0);
            for (col, page_list) in self.footer.pages.iter().enumerate() {
                let page = &page_list[g];
                let wanted = needed.map(|n| n[col]).unwrap_or(true);
                if !wanted {
                    // Placeholder defaults; never projected by the caller.
                    match &mut columns[col] {
                        ColumnData::Int(v) => v.resize(rows + group_rows, 0),
                        ColumnData::Float(v) => v.resize(rows + group_rows, 0.0),
                        ColumnData::Str(v) => v.resize(rows + group_rows, String::new()),
                    }
                    nulls[col].resize(rows + group_rows, false);
                    continue;
                }
                blob.clear();
                blob.resize(page.len as usize, 0);
                f.seek(SeekFrom::Start(page.offset))?;
                f.read_exact(&mut blob)?;
                decode_page(&blob, page, &mut columns[col], &mut nulls[col])?;
            }
            rows += group_rows;
        }
        Ok(Table::from_dense(schema, columns, nulls, rows))
    }

    /// Fully materializes the chunk, rebuilding the declared index — the
    /// round-trip inverse of [`write_table`].
    pub fn read_all(&self) -> io::Result<Table> {
        let mut t = self.read_groups(None, None)?;
        if let Some(ic) = self.footer.index_col.clone() {
            t.build_index(&ic)
                .map_err(|e| bad(format!("stored index column invalid: {e}")))?;
        }
        Ok(t)
    }

    /// Chunk-level per-column summaries folded from the page zone maps —
    /// what the master registers for chunk elision.
    pub fn column_summaries(&self) -> Vec<ColumnSummary> {
        self.footer
            .schema
            .columns()
            .iter()
            .enumerate()
            .filter_map(|(i, def)| {
                let mut valid = 0u64;
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                for p in &self.footer.pages[i] {
                    match p.zone {
                        PageZone::Int {
                            valid: v,
                            min: lo,
                            max: hi,
                        } => {
                            if v > 0 {
                                valid += v;
                                min = min.min(lo as f64);
                                max = max.max(hi as f64);
                            }
                        }
                        PageZone::Float {
                            valid: v,
                            min: lo,
                            max: hi,
                            ..
                        } => {
                            if v > 0 {
                                valid += v;
                                min = min.min(lo);
                                max = max.max(hi);
                            }
                        }
                        PageZone::Str => return None,
                    }
                }
                Some(ColumnSummary {
                    name: def.name.clone(),
                    valid,
                    min,
                    max,
                })
            })
            .collect()
    }
}

fn parse_footer(bytes: &[u8]) -> io::Result<Footer> {
    let mut r = ByteReader::new(bytes);
    let ncols = r.u32()? as usize;
    let mut defs = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.str()?;
        let ty = match r.u8()? {
            0 => ColumnType::Int,
            1 => ColumnType::Float,
            2 => ColumnType::Str,
            other => return Err(bad(format!("unknown column type tag {other}"))),
        };
        defs.push(ColumnDef::new(&name, ty));
    }
    let schema = Schema::new(defs);
    let rows = r.u64()?;
    let page_rows = r.u32()?;
    let index_col = if r.u8()? == 1 { Some(r.str()?) } else { None };
    let n_groups = r.u32()? as usize;
    let mut pages = Vec::with_capacity(ncols);
    for col in 0..ncols {
        let ty = schema.columns()[col].ty;
        let mut list = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let offset = r.u64()?;
            let len = r.u64()?;
            let prows = r.u32()?;
            let nulls = r.u32()?;
            let encoding = r.u8()?;
            let zone = match ty {
                ColumnType::Int => PageZone::Int {
                    valid: r.u64()?,
                    min: r.i64()?,
                    max: r.i64()?,
                },
                ColumnType::Float => PageZone::Float {
                    valid: r.u64()?,
                    nans: r.u64()?,
                    min: r.f64_bits()?,
                    max: r.f64_bits()?,
                },
                ColumnType::Str => PageZone::Str,
            };
            list.push(PageMeta {
                offset,
                len,
                rows: prows,
                nulls,
                encoding,
                zone,
            });
        }
        pages.push(list);
    }
    let total: u64 = pages
        .first()
        .map(|p| p.iter().map(|m| m.rows as u64).sum())
        .unwrap_or(0);
    if ncols > 0 && total != rows {
        return Err(bad("page directory row count disagrees with footer"));
    }
    Ok(Footer {
        schema,
        rows,
        page_rows,
        index_col,
        pages,
    })
}

fn decode_page(
    blob: &[u8],
    page: &PageMeta,
    col: &mut ColumnData,
    nulls: &mut Vec<bool>,
) -> io::Result<()> {
    let rows = page.rows as usize;
    let mut r = ByteReader::new(blob);
    let null_count = decode_bitmap(&mut r, rows, nulls)?;
    if null_count != page.nulls {
        return Err(bad("page null count disagrees with directory"));
    }
    match (col, page.encoding) {
        (ColumnData::Int(out), ENC_INT_PLAIN) => {
            out.reserve(rows);
            for _ in 0..rows {
                out.push(r.i64()?);
            }
        }
        (ColumnData::Int(out), ENC_INT_RLE) => {
            let n_runs = r.u32()? as usize;
            let before = out.len();
            for _ in 0..n_runs {
                let n = r.u32()? as usize;
                let v = r.i64()?;
                out.resize(out.len() + n, v);
            }
            if out.len() - before != rows {
                return Err(bad("RLE run lengths disagree with page rows"));
            }
        }
        (ColumnData::Int(out), ENC_INT_DICT) => {
            let d = r.u32()? as usize;
            let mut dict = Vec::with_capacity(d);
            for _ in 0..d {
                dict.push(r.i64()?);
            }
            out.reserve(rows);
            for _ in 0..rows {
                let idx = r.u8()? as usize;
                out.push(*dict.get(idx).ok_or_else(|| bad("dict index range"))?);
            }
        }
        (ColumnData::Float(out), ENC_FLOAT_PLAIN) => {
            out.reserve(rows);
            for _ in 0..rows {
                out.push(r.f64_bits()?);
            }
        }
        (ColumnData::Str(out), ENC_STR_PLAIN) => {
            out.reserve(rows);
            for _ in 0..rows {
                out.push(r.str()?);
            }
        }
        (ColumnData::Str(out), ENC_STR_DICT) => {
            let d = r.u32()? as usize;
            let mut dict = Vec::with_capacity(d);
            for _ in 0..d {
                dict.push(r.str()?);
            }
            out.reserve(rows);
            for _ in 0..rows {
                let idx = r.u32()? as usize;
                out.push(
                    dict.get(idx)
                        .ok_or_else(|| bad("dict index range"))?
                        .clone(),
                );
            }
        }
        _ => {
            return Err(bad(format!(
                "encoding {} invalid for column",
                page.encoding
            )))
        }
    }
    Ok(())
}

/// Chunk-level zone summary for one numeric column: `min`/`max` over the
/// `valid` (non-NULL, non-NaN) values, as `f64`. With `valid == 0` the
/// bounds are meaningless (±∞) and every range predicate on the column
/// rejects all rows.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// Count of non-NULL, non-NaN values.
    pub valid: u64,
    /// Minimum valid value (`+∞` when `valid == 0`).
    pub min: f64,
    /// Maximum valid value (`−∞` when `valid == 0`).
    pub max: f64,
}

/// Computes [`ColumnSummary`]s straight from an in-memory table — the
/// in-memory loader path registers these so chunk elision works with or
/// without on-disk storage.
pub fn table_column_summaries(t: &Table) -> Vec<ColumnSummary> {
    t.schema()
        .columns()
        .iter()
        .enumerate()
        .filter_map(|(i, def)| {
            let nulls = t.null_mask(i);
            let (mut valid, mut min, mut max) = (0u64, f64::INFINITY, f64::NEG_INFINITY);
            match t.column_slice(i) {
                crate::table::ColumnSlice::Int(vals) => {
                    for (&v, &n) in vals.iter().zip(nulls) {
                        if !n {
                            valid += 1;
                            min = min.min(v as f64);
                            max = max.max(v as f64);
                        }
                    }
                }
                crate::table::ColumnSlice::Float(vals) => {
                    for (&v, &n) in vals.iter().zip(nulls) {
                        if !n && !v.is_nan() {
                            valid += 1;
                            min = min.min(v);
                            max = max.max(v);
                        }
                    }
                }
                crate::table::ColumnSlice::Str(_) => return None,
            }
            Some(ColumnSummary {
                name: def.name.clone(),
                valid,
                min,
                max,
            })
        })
        .collect()
}

/// Planner-grade statistics for one numeric column of an in-memory
/// table: the zone-map summary plus row count and an exact
/// distinct-value count. Collected at write/load time (the loader runs
/// this over each chunk table it builds, right where it registers zone
/// maps), never read back from disk — the chunk-file format carries
/// only the per-page zone summaries and stays unchanged.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Rows in the table (including NULLs for this column).
    pub rows: u64,
    /// Count of non-NULL, non-NaN values.
    pub valid: u64,
    /// Minimum valid value (`+∞` when `valid == 0`).
    pub min: f64,
    /// Maximum valid value (`−∞` when `valid == 0`).
    pub max: f64,
    /// Exact count of distinct valid values. At catalog-simulation row
    /// counts an exact set fits easily; a sketch (HLL) would take this
    /// field's place at survey scale.
    pub distinct: u64,
}

/// Computes [`ColumnStats`] straight from an in-memory table. Same
/// traversal as [`table_column_summaries`] plus distinct counting:
/// values are deduplicated by bit pattern (`i64` bits for Int columns,
/// IEEE-754 bits for Float), so `-0.0` and `0.0` count as two — a
/// harmless over-count for selectivity purposes.
pub fn table_column_stats(t: &Table) -> Vec<ColumnStats> {
    let rows = t.num_rows() as u64;
    t.schema()
        .columns()
        .iter()
        .enumerate()
        .filter_map(|(i, def)| {
            let nulls = t.null_mask(i);
            let (mut valid, mut min, mut max) = (0u64, f64::INFINITY, f64::NEG_INFINITY);
            let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            match t.column_slice(i) {
                crate::table::ColumnSlice::Int(vals) => {
                    for (&v, &n) in vals.iter().zip(nulls) {
                        if !n {
                            valid += 1;
                            min = min.min(v as f64);
                            max = max.max(v as f64);
                            seen.insert(v as u64);
                        }
                    }
                }
                crate::table::ColumnSlice::Float(vals) => {
                    for (&v, &n) in vals.iter().zip(nulls) {
                        if !n && !v.is_nan() {
                            valid += 1;
                            min = min.min(v);
                            max = max.max(v);
                            seen.insert(v.to_bits());
                        }
                    }
                }
                crate::table::ColumnSlice::Str(_) => return None,
            }
            Some(ColumnStats {
                name: def.name.clone(),
                rows,
                valid,
                min,
                max,
                distinct: seen.len() as u64,
            })
        })
        .collect()
}

/// Bit-level table equality: schema, row count, dense column storage
/// (floats by IEEE bits, so NaN payloads count) and null masks. Index
/// presence is ignored — it is derived state.
pub fn tables_bit_identical(a: &Table, b: &Table) -> bool {
    if a.schema() != b.schema() || a.num_rows() != b.num_rows() {
        return false;
    }
    for col in 0..a.schema().len() {
        if a.null_mask(col) != b.null_mask(col) {
            return false;
        }
        use crate::table::ColumnSlice as S;
        let same = match (a.column_slice(col), b.column_slice(col)) {
            (S::Int(x), S::Int(y)) => x == y,
            (S::Float(x), S::Float(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(&p, &q)| p.to_bits() == q.to_bits())
            }
            (S::Str(x), S::Str(y)) => x == y,
            _ => false,
        };
        if !same {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Zone-map pruning against compiled kernels.

/// Marks the stripes a compiled plan must scan: `true` = keep. A stripe
/// is dropped only when some kernel *provably* rejects every row in it
/// (see module docs for the soundness argument); program kernels and any
/// shape we cannot reason about keep the stripe.
pub(crate) fn prune_mask(footer: &Footer, kernels: &[Kernel]) -> Vec<bool> {
    (0..footer.n_groups())
        .map(|g| !kernels.iter().any(|k| kernel_excludes_group(footer, k, g)))
        .collect()
}

fn lit_f64(l: NumLit) -> f64 {
    match l {
        NumLit::I(v) => v as f64,
        NumLit::F(v) => v,
    }
}

fn kernel_excludes_group(footer: &Footer, kernel: &Kernel, g: usize) -> bool {
    match kernel {
        Kernel::Range { col, lo, hi } => zone_excludes_range(&footer.pages[*col][g].zone, lo, hi),
        Kernel::IntIn { col, keys } => match footer.pages[*col][g].zone {
            PageZone::Int { valid, min, max } => {
                if valid == 0 {
                    return true; // NULL never matches IN.
                }
                // `keys` is sorted: any key inside [min, max]?
                let i = keys.partition_point(|&k| k < min);
                !(i < keys.len() && keys[i] <= max)
            }
            _ => false,
        },
        Kernel::Box2D { lon, lat, bx } => {
            let lon_z = float_view(&footer.pages[*lon][g].zone);
            let lat_z = float_view(&footer.pages[*lat][g].zone);
            let (Some(lon_z), Some(lat_z)) = (lon_z, lat_z) else {
                return false;
            };
            // All-NULL coordinate column: no point can be in the box.
            if lon_z.valid == 0 && lon_z.nans == 0 {
                return true;
            }
            if lat_z.valid == 0 && lat_z.nans == 0 {
                return true;
            }
            // NaN coordinates poison rectangle reasoning: keep the page.
            if lon_z.nans > 0 || lat_z.nans > 0 {
                return false;
            }
            // Latitude ranges are absolute — sound even when the query
            // box wraps in longitude.
            if lat_z.min >= -90.0 && lat_z.max <= 90.0 {
                let (blat_min, blat_max) = (bx.lat_min_deg(), bx.lat_max_deg());
                if lat_z.max < blat_min || lat_z.min > blat_max {
                    return true;
                }
            }
            // Longitude only when neither the box nor the data wraps.
            let (blon_min, blon_max) = (bx.lon_min_deg(), bx.lon_max_deg());
            if blon_min <= blon_max
                && lon_z.min >= 0.0
                && lon_z.max < 360.0
                && (lon_z.max < blon_min || lon_z.min > blon_max)
            {
                return true;
            }
            false
        }
        Kernel::FnRange { .. } | Kernel::Program(_) => false,
    }
}

struct FloatView {
    valid: u64,
    nans: u64,
    min: f64,
    max: f64,
}

fn float_view(zone: &PageZone) -> Option<FloatView> {
    match *zone {
        PageZone::Int { valid, min, max } => Some(FloatView {
            valid,
            nans: 0,
            min: min as f64,
            max: max as f64,
        }),
        PageZone::Float {
            valid,
            nans,
            min,
            max,
        } => Some(FloatView {
            valid,
            nans,
            min,
            max,
        }),
        PageZone::Str => None,
    }
}

/// True when a [`Kernel::Range`] rejects every row of a page with this
/// zone. NULLs and NaNs fail every range predicate, so `valid == 0`
/// excludes outright; otherwise the bound comparison mirrors the kernel:
/// exact `i64` when both sides are integers, the kernel's own monotone
/// `as f64` conversion for any mixed pair (monotonicity keeps the
/// conclusion sound even where the conversion is lossy).
fn zone_excludes_range(
    zone: &PageZone,
    lo: &Option<(NumLit, bool)>,
    hi: &Option<(NumLit, bool)>,
) -> bool {
    // A NaN literal bound makes the comparison false for every row.
    for b in [lo, hi].into_iter().flatten() {
        if let (NumLit::F(v), _) = b {
            if v.is_nan() {
                return true;
            }
        }
    }
    match *zone {
        PageZone::Str => false,
        PageZone::Int { valid, min, max } => {
            if valid == 0 {
                return true;
            }
            if let Some((lit, strict)) = lo {
                let out = match lit {
                    NumLit::I(b) => {
                        if *strict {
                            max <= *b
                        } else {
                            max < *b
                        }
                    }
                    NumLit::F(b) => {
                        let m = max as f64;
                        if *strict {
                            m <= *b
                        } else {
                            m < *b
                        }
                    }
                };
                if out {
                    return true;
                }
            }
            if let Some((lit, strict)) = hi {
                let out = match lit {
                    NumLit::I(b) => {
                        if *strict {
                            min >= *b
                        } else {
                            min > *b
                        }
                    }
                    NumLit::F(b) => {
                        let m = min as f64;
                        if *strict {
                            m >= *b
                        } else {
                            m > *b
                        }
                    }
                };
                if out {
                    return true;
                }
            }
            false
        }
        PageZone::Float {
            valid, min, max, ..
        } => {
            if valid == 0 {
                return true;
            }
            if let Some((lit, strict)) = lo {
                let b = lit_f64(*lit);
                if (*strict && max <= b) || (!*strict && max < b) {
                    return true;
                }
            }
            if let Some((lit, strict)) = hi {
                let b = lit_f64(*lit);
                if (*strict && min >= b) || (!*strict && min > b) {
                    return true;
                }
            }
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Residency: LRU over decoded chunks.

/// Byte-budgeted LRU of fully decoded chunk tables — the worker's lazy
/// chunk residency. Shared (behind `Arc`) by every clone of a
/// [`crate::Database`], so per-statement snapshots reuse one cache.
///
/// The most recently loaded chunk is always admitted, even when it alone
/// exceeds the budget; eviction trims least-recently-used entries down
/// to the budget afterwards. Tables checked out by running queries stay
/// alive through their `Arc`s regardless of eviction.
pub struct Residency {
    inner: Mutex<ResidencyInner>,
}

struct ResidencyInner {
    budget: u64,
    bytes: u64,
    /// LRU order: front = coldest.
    lru: Vec<(String, Arc<Table>)>,
}

impl fmt::Debug for Residency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("residency lock");
        f.debug_struct("Residency")
            .field("budget", &inner.budget)
            .field("bytes", &inner.bytes)
            .field("resident", &inner.lru.len())
            .finish()
    }
}

impl Residency {
    /// A residency cache with the given byte budget.
    pub fn new(budget_bytes: u64) -> Residency {
        Residency {
            inner: Mutex::new(ResidencyInner {
                budget: budget_bytes,
                bytes: 0,
                lru: Vec::new(),
            }),
        }
    }

    /// Changes the budget, evicting down to it.
    pub fn set_budget(&self, budget_bytes: u64) {
        let mut inner = self.inner.lock().expect("residency lock");
        inner.budget = budget_bytes;
        Self::evict(&mut inner);
    }

    /// Bytes of decoded tables currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("residency lock").bytes
    }

    /// Number of resident chunks.
    pub fn resident_count(&self) -> usize {
        self.inner.lock().expect("residency lock").lru.len()
    }

    /// Drops every resident table (queries holding `Arc`s keep theirs).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("residency lock");
        inner.lru.clear();
        inner.bytes = 0;
    }

    fn lookup(&self, key: &str) -> Option<Arc<Table>> {
        let mut inner = self.inner.lock().expect("residency lock");
        let pos = inner.lru.iter().position(|(k, _)| k == key)?;
        let entry = inner.lru.remove(pos);
        let t = entry.1.clone();
        inner.lru.push(entry);
        Some(t)
    }

    fn admit(&self, key: String, t: Arc<Table>) {
        let mut inner = self.inner.lock().expect("residency lock");
        if let Some(pos) = inner.lru.iter().position(|(k, _)| k == &key) {
            let old = inner.lru.remove(pos);
            inner.bytes -= old.1.footprint_bytes();
        }
        inner.bytes += t.footprint_bytes();
        inner.lru.push((key, t));
        Self::evict(&mut inner);
    }

    fn evict(inner: &mut ResidencyInner) {
        while inner.bytes > inner.budget && inner.lru.len() > 1 {
            let (_, t) = inner.lru.remove(0);
            inner.bytes -= t.footprint_bytes();
        }
    }
}

impl Default for Residency {
    fn default() -> Residency {
        Residency::new(DEFAULT_RESIDENCY_BUDGET)
    }
}

/// A chunk table attached from disk: footer plus an empty *shape* table
/// (schema + index definition, zero rows) that query compilation runs
/// against without materializing any row data.
#[derive(Clone, Debug)]
pub struct StoredChunk {
    file: ChunkFile,
    shape: Arc<Table>,
}

impl StoredChunk {
    /// Opens a chunk file as an attachable stored table.
    pub fn open(path: &Path) -> io::Result<StoredChunk> {
        let file = ChunkFile::open(path)?;
        let mut shape = Table::new(file.schema().clone());
        if let Some(ic) = file.index_column() {
            let ic = ic.to_string();
            shape
                .build_index(&ic)
                .map_err(|e| bad(format!("stored index column invalid: {e}")))?;
        }
        Ok(StoredChunk {
            file,
            shape: Arc::new(shape),
        })
    }

    /// The underlying chunk file.
    pub fn file(&self) -> &ChunkFile {
        &self.file
    }

    /// The zero-row shape table (schema + index definition).
    pub fn shape(&self) -> &Arc<Table> {
        &self.shape
    }

    /// The resident decoded table when already cached (its LRU position
    /// is refreshed); `None` without touching disk otherwise.
    pub fn cached(&self, residency: &Residency) -> Option<Arc<Table>> {
        residency.lookup(&self.file.path().to_string_lossy())
    }

    /// The fully decoded table, via the residency cache: a hit returns
    /// the shared `Arc`; a miss decodes the whole file (cold read) and
    /// admits it, evicting LRU entries past the budget.
    pub fn resident(&self, residency: &Residency) -> io::Result<Arc<Table>> {
        if let Some(t) = self.cached(residency) {
            return Ok(t);
        }
        let t = Arc::new(self.file.read_all()?);
        residency.admit(self.file.path().to_string_lossy().into_owned(), t.clone());
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "qserv_storage_test_{}_{name}.qcf",
            std::process::id()
        ));
        p
    }

    fn mixed_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("flux", ColumnType::Float),
            ColumnDef::new("tag", ColumnType::Str),
        ]);
        let mut t = Table::new(schema);
        let odd_nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Float(10.5), Value::Str("a".into())],
            vec![Value::Int(2), Value::Float(odd_nan), Value::Str("b".into())],
            vec![Value::Null, Value::Null, Value::Null],
            vec![Value::Int(4), Value::Float(-0.0), Value::Str("a".into())],
            vec![
                Value::Int(5),
                Value::Float(f64::NEG_INFINITY),
                Value::Str(String::new()),
            ],
        ];
        for r in rows {
            t.push_row(r).unwrap();
        }
        t.build_index("objectId").unwrap();
        t
    }

    #[test]
    fn roundtrip_bit_identical_including_nan_payloads() {
        let t = mixed_table();
        let path = tmp("roundtrip");
        write_table(&path, &t, 2).unwrap();
        let cf = ChunkFile::open(&path).unwrap();
        assert_eq!(cf.rows(), 5);
        assert_eq!(cf.row_groups(), 3);
        assert_eq!(cf.index_column(), Some("objectId"));
        let back = cf.read_all().unwrap();
        assert!(tables_bit_identical(&t, &back));
        // Index rebuilt on materialization.
        assert_eq!(back.index_lookup(4), &[3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_writer_matches_bulk_writer() {
        let t = mixed_table();
        let (pa, pb) = (tmp("stream_a"), tmp("stream_b"));
        write_table(&pa, &t, 2).unwrap();
        let mut w = StreamWriter::create(&pb, t.schema().clone(), 2).unwrap();
        w.set_index_column("objectId").unwrap();
        for r in 0..t.num_rows() {
            w.push_row(t.row(r)).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }

    #[test]
    fn low_cardinality_int_column_compresses() {
        let schema = Schema::new(vec![ColumnDef::new("chunkId", ColumnType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..4096 {
            t.push_row(vec![Value::Int((i / 1000) as i64)]).unwrap();
        }
        let path = tmp("rle");
        let bytes = write_table(&path, &t, 1024).unwrap();
        // Plain storage would be 8 * 4096 = 32 KiB of values alone.
        assert!(bytes < 8 * 4096, "low-cardinality ints should compress");
        let back = ChunkFile::open(&path).unwrap().read_all().unwrap();
        assert!(tables_bit_identical(&t, &back));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_strings_dictionary_encode() {
        let schema = Schema::new(vec![ColumnDef::new("band", ColumnType::Str)]);
        let mut t = Table::new(schema);
        for i in 0..2000 {
            t.push_row(vec![Value::Str(["u", "g", "r"][i % 3].into())])
                .unwrap();
        }
        let path = tmp("dict");
        let bytes = write_table(&path, &t, 1024).unwrap();
        assert!(
            bytes < 2000 * 5,
            "repeated strings should dictionary-encode"
        );
        let back = ChunkFile::open(&path).unwrap().read_all().unwrap();
        assert!(tables_bit_identical(&t, &back));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zone_maps_skip_nulls_and_nans() {
        let schema = Schema::new(vec![
            ColumnDef::new("n", ColumnType::Int),
            ColumnDef::new("x", ColumnType::Float),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Int(5), Value::Float(f64::NAN)])
            .unwrap();
        t.push_row(vec![Value::Null, Value::Float(2.5)]).unwrap();
        t.push_row(vec![Value::Int(-3), Value::Null]).unwrap();
        let path = tmp("zones");
        write_table(&path, &t, 1024).unwrap();
        let cf = ChunkFile::open(&path).unwrap();
        assert_eq!(
            cf.footer().pages[0][0].zone,
            PageZone::Int {
                valid: 2,
                min: -3,
                max: 5
            }
        );
        assert_eq!(
            cf.footer().pages[1][0].zone,
            PageZone::Float {
                valid: 1,
                nans: 1,
                min: 2.5,
                max: 2.5
            }
        );
        std::fs::remove_file(&path).ok();
    }

    fn range(col: usize, lo: Option<(NumLit, bool)>, hi: Option<(NumLit, bool)>) -> Kernel {
        Kernel::Range { col, lo, hi }
    }

    #[test]
    fn prune_mask_respects_zone_bounds() {
        // objectId 0..99 in stripes of 25.
        let schema = Schema::new(vec![ColumnDef::new("objectId", ColumnType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..100 {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        let path = tmp("prune");
        write_table(&path, &t, 25).unwrap();
        let cf = ChunkFile::open(&path).unwrap();
        let f = cf.footer();

        // BETWEEN 30 AND 40 touches only the second stripe.
        let k = range(
            0,
            Some((NumLit::I(30), false)),
            Some((NumLit::I(40), false)),
        );
        assert_eq!(prune_mask(f, &[k]), vec![false, true, false, false]);

        // Strict bound at a stripe's max prunes it; non-strict keeps it.
        let k = range(0, Some((NumLit::I(24), true)), None);
        assert!(!prune_mask(f, &[k])[0]);
        let k = range(0, Some((NumLit::I(24), false)), None);
        assert!(prune_mask(f, &[k])[0]);

        // Float bounds via the monotone conversion.
        let k = range(0, None, Some((NumLit::F(12.5), false)));
        assert_eq!(prune_mask(f, &[k]), vec![true, false, false, false]);

        // IN-list keys prune stripes outside every key.
        let k = Kernel::IntIn {
            col: 0,
            keys: vec![3, 77],
        };
        assert_eq!(prune_mask(f, &[k]), vec![true, false, false, true]);

        // Program kernels never prune.
        let k = Kernel::Program(crate::compile::Program { ops: Vec::new() });
        assert_eq!(prune_mask(f, &[k]), vec![true; 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_null_page_pruned_for_any_range() {
        let schema = Schema::new(vec![ColumnDef::new("x", ColumnType::Float)]);
        let mut t = Table::new(schema);
        for _ in 0..4 {
            t.push_row(vec![Value::Null]).unwrap();
        }
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        let path = tmp("allnull");
        write_table(&path, &t, 4).unwrap();
        let cf = ChunkFile::open(&path).unwrap();
        let k = range(0, Some((NumLit::F(-1e18), false)), None);
        assert_eq!(prune_mask(cf.footer(), &[k]), vec![false, true]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn residency_lru_respects_budget() {
        let t = mixed_table();
        let (pa, pb) = (tmp("lru_a"), tmp("lru_b"));
        write_table(&pa, &t, 2).unwrap();
        write_table(&pb, &t, 2).unwrap();
        let a = StoredChunk::open(&pa).unwrap();
        let b = StoredChunk::open(&pb).unwrap();
        let one = t.footprint_bytes();

        // Budget for one table: loading the second evicts the first.
        let res = Residency::new(one + one / 2);
        let ta = a.resident(&res).unwrap();
        assert_eq!(res.resident_count(), 1);
        let _tb = b.resident(&res).unwrap();
        assert_eq!(res.resident_count(), 1);
        assert_eq!(res.resident_bytes(), one);
        // The evicted Arc stays usable.
        assert_eq!(ta.num_rows(), 5);
        // Re-loading A is a fresh decode, not the same Arc.
        let ta2 = a.resident(&res).unwrap();
        assert!(!Arc::ptr_eq(&ta, &ta2));
        // A hit returns the cached Arc.
        let ta3 = a.resident(&res).unwrap();
        assert!(Arc::ptr_eq(&ta2, &ta3));
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }

    #[test]
    fn open_rejects_corrupt_files() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"definitely not a chunk file").unwrap();
        assert!(ChunkFile::open(&path).is_err());
        std::fs::write(&path, b"short").unwrap();
        assert!(ChunkFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shape_table_carries_schema_and_index() {
        let t = mixed_table();
        let path = tmp("shape");
        write_table(&path, &t, 2).unwrap();
        let sc = StoredChunk::open(&path).unwrap();
        assert_eq!(sc.shape().num_rows(), 0);
        assert_eq!(sc.shape().schema(), t.schema());
        assert_eq!(sc.shape().indexed_column(), Some("objectId"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_roundtrips() {
        let schema = Schema::new(vec![ColumnDef::new("x", ColumnType::Float)]);
        let t = Table::new(schema);
        let path = tmp("empty");
        write_table(&path, &t, 8).unwrap();
        let cf = ChunkFile::open(&path).unwrap();
        assert_eq!(cf.rows(), 0);
        assert_eq!(cf.row_groups(), 0);
        assert!(tables_bit_identical(&t, &cf.read_all().unwrap()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_summaries_fold_pages() {
        let t = mixed_table();
        let path = tmp("summaries");
        write_table(&path, &t, 2).unwrap();
        let cf = ChunkFile::open(&path).unwrap();
        let s = cf.column_summaries();
        // Str column filtered out.
        assert_eq!(s.len(), 2);
        assert_eq!(
            (s[0].name.as_str(), s[0].min, s[0].max),
            ("objectId", 1.0, 5.0)
        );
        assert_eq!(s[1].name, "flux");
        assert_eq!((s[1].min, s[1].max), (f64::NEG_INFINITY, 10.5));
        // In-memory summaries agree with the on-disk fold.
        assert_eq!(table_column_summaries(&t), s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_stats_count_rows_valid_and_distinct() {
        let t = mixed_table();
        let s = table_column_stats(&t);
        assert_eq!(s.len(), 2, "Str column filtered out");
        assert_eq!(s[0].name, "objectId");
        assert_eq!((s[0].rows, s[0].valid, s[0].distinct), (5, 4, 4));
        assert_eq!((s[0].min, s[0].max), (1.0, 5.0));
        // flux: NaN and NULL excluded from valid; -0.0 and -inf distinct.
        assert_eq!(s[1].name, "flux");
        assert_eq!((s[1].rows, s[1].valid, s[1].distinct), (5, 3, 3));
        // Stats agree with the zone summaries on the shared fields.
        for (st, su) in s.iter().zip(table_column_summaries(&t)) {
            assert_eq!((st.valid, st.min, st.max), (su.valid, su.min, su.max));
        }
    }
}
