//! The query executor.
//!
//! Executes a parsed [`SelectStatement`] against a [`Database`]: FROM
//! resolution, predicate-driven row selection (full scan, objectId index
//! lookup, hash equi-join or nested-loop join), grouping and aggregation,
//! projection, ordering and limiting.
//!
//! The planning mirrors what the paper relies on from MySQL:
//! * selections are **full scans** by default (§4.3: "table-scanning being
//!   the norm rather than the exception");
//! * the one exception is the per-chunk **objectId index** (§5.5), used for
//!   `objectId = ?` / `objectId IN (...)` point predicates;
//! * spatial near-neighbour joins run as **nested loops over subchunk
//!   tables**, which is exactly the O(kn) structure of §4.4 — the executor
//!   additionally recognizes integer equi-join predicates and builds a hash
//!   table (MySQL would use the objectId index the same way).

use crate::db::Database;
use crate::eval::{eval, eval_predicate, is_aggregate, Bindings, EvalError};
use crate::schema::{ColumnDef, ColumnType, Schema};
use crate::table::Table;
use crate::value::{GroupKey, Value};
use qserv_sqlparse::ast::{BinaryOp, Expr, Literal, SelectStatement};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors from query execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// FROM references a table the database does not have.
    UnknownTable(String),
    /// Two FROM entries bind the same name.
    DuplicateBinding(String),
    /// Expression evaluation failed.
    Eval(EvalError),
    /// Statement shape not supported (message explains).
    Unsupported(String),
    /// Reading a stored chunk file failed.
    Storage(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t}"),
            ExecError::DuplicateBinding(b) => write!(f, "duplicate table binding {b}"),
            ExecError::Eval(e) => write!(f, "{e}"),
            ExecError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ExecError::Storage(m) => write!(f, "storage: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> ExecError {
        ExecError::Eval(e)
    }
}

/// A materialized query result: named columns, row-major values.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ResultTable {
    /// Output column names, in SELECT order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultTable {
    /// Index of an output column by exact name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The single value of a one-row, one-column result (e.g. COUNT(*)),
    /// when it has that shape.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => Some(&self.rows[0][0]),
            _ => None,
        }
    }

    /// Converts into a typed [`Table`] (used to load results into the
    /// master's merge database). Column types are inferred by scanning
    /// every row and widening: any Str makes the column Str, else any
    /// Float makes it Float, else Int; all-NULL columns become Float.
    pub fn into_table(self) -> Table {
        // One pass over the rows collects every column's type flags.
        let ncols = self.columns.len();
        let mut saw_int = vec![false; ncols];
        let mut saw_float = vec![false; ncols];
        let mut saw_str = vec![false; ncols];
        for r in &self.rows {
            for (i, v) in r.iter().enumerate() {
                match v {
                    Value::Null => {}
                    Value::Int(_) => saw_int[i] = true,
                    Value::Float(_) => saw_float[i] = true,
                    Value::Str(_) => saw_str[i] = true,
                }
            }
        }
        let mut defs = Vec::with_capacity(ncols);
        let mut widen = vec![false; ncols]; // Int values landing in Float columns
        for (i, name) in self.columns.iter().enumerate() {
            let ty = if saw_str[i] {
                ColumnType::Str
            } else if saw_float[i] {
                ColumnType::Float
            } else if saw_int[i] {
                ColumnType::Int
            } else {
                ColumnType::Float
            };
            widen[i] = ty == ColumnType::Float;
            defs.push(ColumnDef::new(name, ty));
        }
        let mut t = Table::new(Schema::new(defs));
        for row in self.rows {
            let coerced = row
                .into_iter()
                .zip(&widen)
                .map(|(v, &w)| match v {
                    Value::Int(x) if w => Value::Float(x as f64),
                    v => v,
                })
                .collect();
            t.push_row(coerced)
                .expect("inferred schema admits its rows");
        }
        t
    }
}

/// Which execution path [`execute_with_mode`] may take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Vectorize single-table scans when compilable, fall back to the
    /// interpreter otherwise (the default).
    Auto,
    /// Tree-walking interpreter only — the semantic oracle.
    Interpreted,
    /// Vectorized only: `Unsupported` when the statement cannot compile.
    /// Used by benches and equivalence tests to pin the path.
    Vectorized,
}

/// Which path actually executed a statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecPath {
    /// Compiled predicates + columnar kernels ([`crate::vector`]).
    Vectorized,
    /// Row-at-a-time tree-walking interpreter.
    Interpreted,
}

/// Executes `stmt` against `db`.
pub fn execute(db: &Database, stmt: &SelectStatement) -> Result<ResultTable, ExecError> {
    execute_with_mode(db, stmt, ExecMode::Auto).map(|(r, _)| r)
}

/// Like [`execute`], additionally reporting which path ran (the worker
/// records this in its scan statistics).
pub fn execute_traced(
    db: &Database,
    stmt: &SelectStatement,
) -> Result<(ResultTable, ExecPath), ExecError> {
    execute_with_mode(db, stmt, ExecMode::Auto)
}

/// Executes `stmt` against `db` on a chosen execution path.
pub fn execute_with_mode(
    db: &Database,
    stmt: &SelectStatement,
    mode: ExecMode,
) -> Result<(ResultTable, ExecPath), ExecError> {
    execute_detailed(db, stmt, mode).map(|(r, p, _)| (r, p))
}

/// Per-statement cold-scan statistics: row-group pages elided by the
/// zone maps versus decoded from disk. Both stay zero for in-memory
/// tables and interpreted executions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Row-group pages skipped via zone maps without touching their bytes.
    pub pages_pruned: u64,
    /// Row-group pages decoded from disk.
    pub pages_scanned: u64,
}

/// Like [`execute_with_mode`], additionally reporting cold-scan page
/// statistics (the worker forwards them to the master's query stats).
pub fn execute_detailed(
    db: &Database,
    stmt: &SelectStatement,
    mode: ExecMode,
) -> Result<(ResultTable, ExecPath, ScanStats), ExecError> {
    let storage_err = |e: std::io::Error| ExecError::Storage(e.to_string());
    // Resolve FROM bindings. A stored (on-disk) table normally
    // materializes through the residency cache; the one special case is
    // a sole non-resident stored table outside interpreted mode, which
    // binds its zero-row *shape* so the scan can run paged, straight
    // off disk, with zone-map elision.
    let mut bindings: Vec<(String, Arc<Table>)> = Vec::new();
    let mut stored_single: Option<Arc<crate::storage::StoredChunk>> = None;
    for tref in &stmt.from {
        let name = tref.binding_name().to_string();
        if bindings.iter().any(|(b, _)| *b == name) {
            return Err(ExecError::DuplicateBinding(name));
        }
        if let Some(table) = db.table(&tref.table) {
            bindings.push((name, Arc::clone(table)));
        } else if let Some(chunk) = db.stored(&tref.table) {
            let resident = chunk.cached(db.residency());
            if stmt.from.len() == 1 && mode != ExecMode::Interpreted && resident.is_none() {
                stored_single = Some(Arc::clone(chunk));
                bindings.push((name, Arc::clone(chunk.shape())));
            } else {
                let table = match resident {
                    Some(t) => t,
                    None => chunk.resident(db.residency()).map_err(storage_err)?,
                };
                bindings.push((name, table));
            }
        } else {
            return Err(ExecError::UnknownTable(tref.table.clone()));
        }
    }
    if bindings.is_empty() {
        if mode == ExecMode::Vectorized {
            return Err(ExecError::Unsupported(
                "tableless statements are not vectorizable".to_string(),
            ));
        }
        return execute_tableless(stmt).map(|r| (r, ExecPath::Interpreted, ScanStats::default()));
    }

    let aggregated = stmt_is_aggregated(stmt);
    let conjuncts = stmt
        .where_clause
        .as_ref()
        .map(|w| split_conjuncts(w))
        .unwrap_or_default();

    // Attribute each conjunct to the single binding it references, or to
    // the cross-binding residue.
    let names: Vec<&str> = bindings.iter().map(|(n, _)| n.as_str()).collect();
    let mut per_binding: Vec<Vec<&Expr>> = vec![Vec::new(); bindings.len()];
    let mut cross: Vec<&Expr> = Vec::new();
    for c in &conjuncts {
        match sole_binding(c, &names, &bindings) {
            Some(i) => per_binding[i].push(c),
            None => cross.push(c),
        }
    }

    // Early-exit limit for plain (non-aggregated, unordered) selections.
    let quick_limit = if !aggregated && stmt.order_by.is_empty() {
        stmt.limit.map(|l| l as usize)
    } else {
        None
    };

    // Paged cold scan: the sole stored binding compiles against its
    // shape, zone maps elide row-group pages the kernels provably
    // reject, and only the referenced columns of the surviving pages are
    // decoded — no full materialization, no row pivot. Falls back to
    // materialization (the interpreter stays the oracle) when the
    // statement does not compile.
    if let Some(chunk) = stored_single {
        let sink = RowSink::new(db, stmt, &bindings, aggregated)?;
        let (name, shape) = &bindings[0];
        if let Some(mut plan) = crate::compile::compile_single(stmt, name, shape, &sink, &conjuncts)
        {
            // Decoded pages carry no index; scan every surviving page.
            plan.seed = None;
            let file = chunk.file();
            let keep = if db.page_pruning() {
                crate::storage::prune_mask(file.footer(), &plan.kernels)
            } else {
                vec![true; file.row_groups()]
            };
            let pages_scanned = keep.iter().filter(|&&k| k).count() as u64;
            let stats = ScanStats {
                pages_pruned: keep.len() as u64 - pages_scanned,
                pages_scanned,
            };
            let needed = plan.referenced_cols(shape.schema().len());
            let decoded = file
                .read_groups(Some(&keep), Some(&needed))
                .map_err(storage_err)?;
            let mut sink = sink;
            crate::vector::run(&plan, &decoded, &mut sink, quick_limit);
            return sink.finish().map(|r| (r, ExecPath::Vectorized, stats));
        }
        drop(sink);
        if mode == ExecMode::Vectorized {
            return Err(ExecError::Unsupported(
                "statement is not vectorizable".to_string(),
            ));
        }
        bindings[0].1 = chunk.resident(db.residency()).map_err(storage_err)?;
    }

    let mut sink = RowSink::new(db, stmt, &bindings, aggregated)?;

    // Vectorized path: a single-table scan whose filters and output all
    // compile runs over columnar kernels; anything else falls through to
    // the interpreter, which stays the semantic oracle.
    if bindings.len() == 1 && mode != ExecMode::Interpreted {
        let (name, table) = &bindings[0];
        if let Some(plan) = crate::compile::compile_single(stmt, name, table, &sink, &conjuncts) {
            crate::vector::run(&plan, table, &mut sink, quick_limit);
            return sink
                .finish()
                .map(|r| (r, ExecPath::Vectorized, ScanStats::default()));
        }
    }
    // Vectorized join path: a two-table join whose cross predicates are
    // one angular-distance cut plus integer comparisons runs the compiled
    // distance kernel (per-binding filters still seed candidates below).
    let dist_plan = if bindings.len() == 2 && mode != ExecMode::Interpreted {
        crate::joinvec::plan_dist_join(&bindings, &cross)
    } else {
        None
    };
    if mode == ExecMode::Vectorized && dist_plan.is_none() {
        return Err(ExecError::Unsupported(
            "statement is not vectorizable".to_string(),
        ));
    }

    // Candidate rows per binding: index lookup when possible, else a
    // filtered scan.
    let mut candidates: Vec<Vec<u32>> = Vec::with_capacity(bindings.len());
    for (i, (name, table)) in bindings.iter().enumerate() {
        candidates.push(candidate_rows(name, table, &per_binding[i])?);
    }

    match bindings.len() {
        1 => {
            let (name, table) = &bindings[0];
            let mut b = Bindings::single(name, table, 0);
            for &r in &candidates[0] {
                b.set_row(0, r as usize);
                // Cross predicates are impossible with one binding, but
                // ambiguous/unresolvable conjuncts land there; apply them.
                if all_pass(&cross, &b)? {
                    sink.consume(&b)?;
                    if sink.emitted_at_least(quick_limit) {
                        break;
                    }
                }
            }
        }
        2 => {
            if let Some(plan) = &dist_plan {
                crate::joinvec::run_dist_join(
                    plan,
                    &bindings,
                    &candidates,
                    &mut sink,
                    quick_limit,
                )?;
                return sink
                    .finish()
                    .map(|r| (r, ExecPath::Vectorized, ScanStats::default()));
            }
            join_two(&bindings, &candidates, &cross, &mut sink, quick_limit)?;
        }
        n => {
            return Err(ExecError::Unsupported(format!(
                "{n}-way joins are not supported (Qserv's evaluation uses at most two tables)"
            )));
        }
    }

    sink.finish()
        .map(|r| (r, ExecPath::Interpreted, ScanStats::default()))
}

/// Executes a FROM-less statement (`SELECT 1 + 1`).
fn execute_tableless(stmt: &SelectStatement) -> Result<ResultTable, ExecError> {
    if stmt.where_clause.is_some() || !stmt.group_by.is_empty() {
        return Err(ExecError::Unsupported(
            "WHERE/GROUP BY without FROM".to_string(),
        ));
    }
    let empty = Bindings::new(vec![]);
    let mut columns = Vec::new();
    let mut row = Vec::new();
    for p in &stmt.projections {
        if matches!(p.expr, Expr::Star) {
            return Err(ExecError::Unsupported("SELECT * without FROM".to_string()));
        }
        columns.push(p.output_name());
        row.push(eval(&p.expr, &empty)?);
    }
    Ok(ResultTable {
        columns,
        rows: vec![row],
    })
}

/// Splits a predicate into top-level AND conjuncts.
fn split_conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } = e
        {
            walk(lhs, out);
            walk(rhs, out);
        } else {
            out.push(e);
        }
    }
    walk(expr, &mut out);
    out
}

/// Returns `Some(i)` when every column in `expr` resolves to binding `i`
/// alone; `None` when it references several bindings, none, or is
/// ambiguous.
fn sole_binding(expr: &Expr, names: &[&str], bindings: &[(String, Arc<Table>)]) -> Option<usize> {
    let mut owner: Option<usize> = None;
    let mut bad = false;
    expr.visit(&mut |e| {
        if let Expr::Column {
            qualifier, name, ..
        } = e
        {
            let idx = match qualifier {
                Some(q) => names.iter().position(|n| n == q),
                None => {
                    // Unqualified: unique schema owner or ambiguous.
                    let hits: Vec<usize> = bindings
                        .iter()
                        .enumerate()
                        .filter(|(_, (_, t))| t.schema().index_of(name).is_some())
                        .map(|(i, _)| i)
                        .collect();
                    if hits.len() == 1 {
                        Some(hits[0])
                    } else {
                        None
                    }
                }
            };
            match idx {
                Some(i) => match owner {
                    None => owner = Some(i),
                    Some(o) if o == i => {}
                    Some(_) => bad = true,
                },
                None => bad = true,
            }
        }
    });
    if bad {
        None
    } else {
        owner
    }
}

/// Computes the candidate row ids of one binding: an index lookup when a
/// conjunct is `idxcol = int` / `idxcol IN (ints)`, otherwise a filtered
/// scan of all rows. The remaining conjuncts are verified either way, so
/// using the index is purely an optimization.
fn candidate_rows(
    name: &str,
    table: &Arc<Table>,
    conjuncts: &[&Expr],
) -> Result<Vec<u32>, ExecError> {
    let mut seed: Option<Vec<u32>> = None;
    if let Some(idx_col) = table.indexed_column() {
        for c in conjuncts {
            if let Some(keys) = index_keys(c, idx_col) {
                let mut rows: Vec<u32> = keys
                    .iter()
                    .flat_map(|k| table.index_lookup(*k).iter().copied())
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                seed = Some(rows);
                break;
            }
        }
    }
    let mut b = Bindings::single(name, table, 0);
    let mut out = Vec::new();
    match seed {
        Some(rows) => {
            for r in rows {
                b.set_row(0, r as usize);
                if all_pass(conjuncts, &b)? {
                    out.push(r);
                }
            }
        }
        None => {
            // Sorted-probe fast path: an un-indexed `intcol IN (int
            // literals)` conjunct rejects rows by binary search before
            // the general evaluator runs — O(log k) per row instead of
            // a linear pass over the k-item list. Probe failure implies
            // the conjunct is false (or NULL) for the row, so skipping
            // it never changes the answer; survivors still run the full
            // conjunct list.
            let probe = conjuncts.iter().find_map(|c| in_probe(c, name, table));
            match probe {
                Some((ci, keys)) => {
                    let nulls = table.null_mask(ci);
                    if let crate::table::ColumnSlice::Int(vals) = table.column_slice(ci) {
                        for r in 0..table.num_rows() {
                            if nulls[r] || keys.binary_search(&vals[r]).is_err() {
                                continue;
                            }
                            b.set_row(0, r);
                            if all_pass(conjuncts, &b)? {
                                out.push(r as u32);
                            }
                        }
                    }
                }
                None => {
                    for r in 0..table.num_rows() {
                        b.set_row(0, r);
                        if all_pass(conjuncts, &b)? {
                            out.push(r as u32);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// When `conjunct` is a non-negated `intcol IN (<int literals>)` over a
/// dense Int column of `table` (unqualified or qualified by this
/// binding's name), returns the column's index and the sorted,
/// deduplicated key list for binary-search probing.
fn in_probe(conjunct: &Expr, binding: &str, table: &Table) -> Option<(usize, Vec<i64>)> {
    let Expr::InList {
        expr,
        negated: false,
        list,
    } = conjunct
    else {
        return None;
    };
    let Expr::Column {
        qualifier, name, ..
    } = expr.as_ref()
    else {
        return None;
    };
    if qualifier.as_deref().is_some_and(|q| q != binding) {
        return None;
    }
    let ci = table.schema().index_of(name)?;
    if table.schema().columns()[ci].ty != ColumnType::Int {
        return None;
    }
    let mut keys: Vec<i64> = list
        .iter()
        .map(|e| match e {
            Expr::Literal(Literal::Int(v)) => Some(*v),
            _ => None,
        })
        .collect::<Option<Vec<i64>>>()?;
    keys.sort_unstable();
    keys.dedup();
    Some((ci, keys))
}

/// When `conjunct` is `col = <int literal>` or `col IN (<int literals>)`
/// over the indexed column, returns the key list.
pub(crate) fn index_keys(conjunct: &Expr, idx_col: &str) -> Option<Vec<i64>> {
    fn col_is(e: &Expr, idx_col: &str) -> bool {
        matches!(e, Expr::Column { name, .. } if name == idx_col)
    }
    fn int_of(e: &Expr) -> Option<i64> {
        match e {
            Expr::Literal(Literal::Int(v)) => Some(*v),
            _ => None,
        }
    }
    match conjunct {
        Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } => {
            if col_is(lhs, idx_col) {
                int_of(rhs).map(|v| vec![v])
            } else if col_is(rhs, idx_col) {
                int_of(lhs).map(|v| vec![v])
            } else {
                None
            }
        }
        Expr::InList {
            expr,
            negated: false,
            list,
        } if col_is(expr, idx_col) => list.iter().map(int_of).collect(),
        _ => None,
    }
}

fn all_pass(conjuncts: &[&Expr], b: &Bindings<'_>) -> Result<bool, ExecError> {
    for c in conjuncts {
        if !eval_predicate(c, b)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Two-table join: hash join on an integer equi-key when one exists,
/// otherwise a nested loop. Cross conjuncts are applied to each joined
/// pair.
fn join_two(
    bindings: &[(String, Arc<Table>)],
    candidates: &[Vec<u32>],
    cross: &[&Expr],
    sink: &mut RowSink<'_>,
    quick_limit: Option<usize>,
) -> Result<(), ExecError> {
    let (n0, t0) = (&bindings[0].0, &bindings[0].1);
    let (n1, t1) = (&bindings[1].0, &bindings[1].1);
    let names = [n0.as_str(), n1.as_str()];

    // Find an equi-join conjunct `x = y` with one side per binding, both
    // integer columns.
    let equi = cross.iter().find_map(|c| {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } = c
        {
            let l = column_of(lhs, &names, bindings)?;
            let r = column_of(rhs, &names, bindings)?;
            if l.0 != r.0 {
                // Orient as (binding0 column, binding1 column).
                return if l.0 == 0 {
                    Some((l.1, r.1))
                } else {
                    Some((r.1, l.1))
                };
            }
        }
        None
    });

    let mut b = Bindings::new(vec![(n0, t0, 0), (n1, t1, 0)]);
    match equi {
        Some((c0, c1)) => {
            // Build a hash table over the smaller candidate side (side 1
            // keys → row ids), probe with side 0.
            let mut map: HashMap<GroupKey, Vec<u32>> = HashMap::new();
            for &r in &candidates[1] {
                let v = t1.get(r as usize, c1);
                if !v.is_null() {
                    map.entry(v.group_key()).or_default().push(r);
                }
            }
            for &r0 in &candidates[0] {
                let v = t0.get(r0 as usize, c0);
                if v.is_null() {
                    continue;
                }
                if let Some(rows1) = map.get(&v.group_key()) {
                    b.set_row(0, r0 as usize);
                    for &r1 in rows1 {
                        b.set_row(1, r1 as usize);
                        if all_pass(cross, &b)? {
                            sink.consume(&b)?;
                            if sink.emitted_at_least(quick_limit) {
                                return Ok(());
                            }
                        }
                    }
                }
            }
        }
        None => {
            for &r0 in &candidates[0] {
                b.set_row(0, r0 as usize);
                for &r1 in &candidates[1] {
                    b.set_row(1, r1 as usize);
                    if all_pass(cross, &b)? {
                        sink.consume(&b)?;
                        if sink.emitted_at_least(quick_limit) {
                            return Ok(());
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// When `e` is a bare column of one of the two bindings, returns
/// `(binding index, column index)`.
pub(crate) fn column_of(
    e: &Expr,
    names: &[&str; 2],
    bindings: &[(String, Arc<Table>)],
) -> Option<(usize, usize)> {
    if let Expr::Column {
        qualifier, name, ..
    } = e
    {
        match qualifier {
            Some(q) => {
                let bi = names.iter().position(|n| n == q)?;
                let ci = bindings[bi].1.schema().index_of(name)?;
                Some((bi, ci))
            }
            None => {
                let hits: Vec<(usize, usize)> = bindings
                    .iter()
                    .enumerate()
                    .filter_map(|(i, (_, t))| t.schema().index_of(name).map(|c| (i, c)))
                    .collect();
                if hits.len() == 1 {
                    Some(hits[0])
                } else {
                    None
                }
            }
        }
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Row sink: projection for plain queries, accumulation for aggregates.
// ---------------------------------------------------------------------------

fn stmt_is_aggregated(stmt: &SelectStatement) -> bool {
    if !stmt.group_by.is_empty() {
        return true;
    }
    stmt.projections.iter().any(|p| {
        let mut agg = false;
        p.expr.visit(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if is_aggregate(name) {
                    agg = true;
                }
            }
        });
        agg
    })
}

/// One aggregate call found in the projections.
pub(crate) struct AggSpec {
    /// Canonical SQL text of the call (the merge key the frontend's
    /// rewriting relies on, paper §5.3).
    sql: String,
    pub(crate) kind: AggKind,
    /// Argument expression (`None` for COUNT(*)).
    pub(crate) arg: Option<Expr>,
}

/// The aggregate functions the executor implements.
///
/// Public because the master's incremental merger (`qserv-core`) folds
/// partial aggregates with the same accumulators the interpreter uses —
/// one implementation of the combine semantics, not two.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// A running accumulator for one aggregate in one group.
#[derive(Clone)]
pub enum AggAcc {
    Count(i64),
    Sum {
        int: i64,
        float: f64,
        saw_float: bool,
        saw_any: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    MinMax {
        best: Option<Value>,
        want_max: bool,
    },
}

impl AggAcc {
    pub fn new(kind: AggKind) -> AggAcc {
        match kind {
            AggKind::CountStar | AggKind::Count => AggAcc::Count(0),
            AggKind::Sum => AggAcc::Sum {
                int: 0,
                float: 0.0,
                saw_float: false,
                saw_any: false,
            },
            AggKind::Avg => AggAcc::Avg { sum: 0.0, n: 0 },
            AggKind::Min => AggAcc::MinMax {
                best: None,
                want_max: false,
            },
            AggKind::Max => AggAcc::MinMax {
                best: None,
                want_max: true,
            },
        }
    }

    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            AggAcc::Count(n) => {
                // COUNT(*) passes None (count every row); COUNT(expr)
                // counts non-NULLs.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggAcc::Sum {
                int,
                float,
                saw_float,
                saw_any,
            } => {
                if let Some(val) = v {
                    match val {
                        Value::Int(x) => {
                            *int = int.saturating_add(*x);
                            *float += *x as f64;
                            *saw_any = true;
                        }
                        Value::Float(x) => {
                            *float += x;
                            *saw_float = true;
                            *saw_any = true;
                        }
                        _ => {}
                    }
                }
            }
            AggAcc::Avg { sum, n } => {
                if let Some(val) = v {
                    if let Some(x) = val.as_f64() {
                        *sum += x;
                        *n += 1;
                    }
                }
            }
            AggAcc::MinMax { best, want_max } => {
                if let Some(val) = v {
                    if val.is_null() {
                        return;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => match val.sql_cmp(b) {
                            Some(o) => {
                                if *want_max {
                                    o.is_gt()
                                } else {
                                    o.is_lt()
                                }
                            }
                            None => false,
                        },
                    };
                    if better {
                        *best = Some(val.clone());
                    }
                }
            }
        }
    }

    pub fn finish(&self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(*n),
            AggAcc::Sum {
                int,
                float,
                saw_float,
                saw_any,
            } => {
                if !saw_any {
                    Value::Null // SUM of no rows is NULL in SQL.
                } else if *saw_float {
                    Value::Float(*float)
                } else {
                    Value::Int(*int)
                }
            }
            AggAcc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            AggAcc::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
        }
    }

    /// Like [`finish`](AggAcc::finish), but forces a Float result when
    /// `widen` is set — the value an identical accumulator would have
    /// produced had every Int input been widened to Float first. Sum
    /// returns its float-side total (accumulated per input value, so
    /// rounding matches the widened fold exactly, not `Int total as f64`);
    /// other kinds coerce their Int result.
    pub fn finish_widened(&self, widen: bool) -> Value {
        if !widen {
            return self.finish();
        }
        match self {
            AggAcc::Sum { float, saw_any, .. } => {
                if *saw_any {
                    Value::Float(*float)
                } else {
                    Value::Null
                }
            }
            other => match other.finish() {
                Value::Int(x) => Value::Float(x as f64),
                v => v,
            },
        }
    }
}

/// Consumes joined row combinations and produces the result table.
pub(crate) struct RowSink<'q> {
    stmt: &'q SelectStatement,
    aggregated: bool,
    /// Expanded output column names.
    columns: Vec<String>,
    /// For plain queries: projection expressions (Star already expanded).
    plain_exprs: Vec<Expr>,
    /// Extra hidden sort-key expressions appended to plain rows.
    hidden_sort: Vec<Expr>,
    rows: Vec<Vec<Value>>,
    /// For aggregate queries.
    aggs: Vec<AggSpec>,
    /// Rewritten projections with aggregate calls replaced by references
    /// into the per-group accumulator pseudo table.
    agg_projected: Vec<Expr>,
    groups: HashMap<Vec<GroupKey>, GroupState>,
    group_order: Vec<Vec<GroupKey>>,
}

/// Per-group accumulator state plus representative row values for
/// non-aggregate expressions.
struct GroupState {
    accs: Vec<AggAcc>,
    /// Values of the group-by keys and of every bare column the
    /// projections need, captured from the group's first row.
    rep: Vec<Value>,
}

impl<'q> RowSink<'q> {
    fn new(
        _db: &Database,
        stmt: &'q SelectStatement,
        bindings: &[(String, Arc<Table>)],
        aggregated: bool,
    ) -> Result<RowSink<'q>, ExecError> {
        let mut columns = Vec::new();
        let mut plain_exprs = Vec::new();
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut agg_projected = Vec::new();

        for p in &stmt.projections {
            if matches!(p.expr, Expr::Star) {
                if aggregated {
                    return Err(ExecError::Unsupported(
                        "SELECT * with aggregation".to_string(),
                    ));
                }
                for (bname, table) in bindings {
                    for c in table.schema().columns() {
                        columns.push(c.name.clone());
                        plain_exprs.push(Expr::Column {
                            qualifier: Some(bname.clone()),
                            name: c.name.clone(),
                            quoted: false,
                        });
                    }
                }
                continue;
            }
            columns.push(p.output_name());
            if aggregated {
                // Replace each aggregate call with a pseudo column keyed by
                // its SQL text; remember the spec.
                let rewritten = p.expr.clone().rewrite(&mut |e| match &e {
                    Expr::Function { name, args } if is_aggregate(name) => {
                        let sql = e.to_sql();
                        if !aggs.iter().any(|a| a.sql == sql) {
                            let lname = name.to_ascii_lowercase();
                            let (kind, arg) = match (lname.as_str(), args.first()) {
                                ("count", Some(Expr::Star)) | ("count", None) => {
                                    (AggKind::CountStar, None)
                                }
                                ("count", Some(a)) => (AggKind::Count, Some(a.clone())),
                                ("sum", Some(a)) => (AggKind::Sum, Some(a.clone())),
                                ("avg", Some(a)) => (AggKind::Avg, Some(a.clone())),
                                ("min", Some(a)) => (AggKind::Min, Some(a.clone())),
                                ("max", Some(a)) => (AggKind::Max, Some(a.clone())),
                                _ => (AggKind::CountStar, None),
                            };
                            aggs.push(AggSpec {
                                sql: sql.clone(),
                                kind,
                                arg,
                            });
                        }
                        Expr::Column {
                            qualifier: Some("__agg".to_string()),
                            name: sql,
                            quoted: false,
                        }
                    }
                    _ => e.clone(),
                });
                agg_projected.push(rewritten);
            } else {
                plain_exprs.push(p.expr.clone());
            }
        }

        // Hidden sort keys for plain queries whose ORDER BY is not an
        // output column.
        let mut hidden_sort = Vec::new();
        if !aggregated {
            for o in &stmt.order_by {
                if output_index(&columns, stmt, &o.expr).is_none() {
                    hidden_sort.push(o.expr.clone());
                }
            }
        }

        Ok(RowSink {
            stmt,
            aggregated,
            columns,
            plain_exprs,
            hidden_sort,
            rows: Vec::new(),
            aggs,
            agg_projected,
            groups: HashMap::new(),
            group_order: Vec::new(),
        })
    }

    pub(crate) fn consume(&mut self, b: &Bindings<'_>) -> Result<(), ExecError> {
        if self.aggregated {
            let mut key = Vec::with_capacity(self.stmt.group_by.len());
            let mut rep = Vec::with_capacity(self.stmt.group_by.len());
            for g in &self.stmt.group_by {
                let v = eval(g, b)?;
                key.push(v.group_key());
                rep.push(v);
            }
            // Evaluate aggregate arguments *before* borrowing group state.
            let mut arg_vals = Vec::with_capacity(self.aggs.len());
            for a in &self.aggs {
                arg_vals.push(match (&a.kind, &a.arg) {
                    (AggKind::CountStar, _) => None,
                    (_, Some(arg)) => Some(eval(arg, b)?),
                    (_, None) => None,
                });
            }
            // Non-aggregate projections need representative values; capture
            // every non-agg column expr on first sight of the group.
            let state = match self.groups.get_mut(&key) {
                Some(s) => s,
                None => {
                    self.group_order.push(key.clone());
                    let accs = self.aggs.iter().map(|a| AggAcc::new(a.kind)).collect();
                    self.groups.insert(key.clone(), GroupState { accs, rep });
                    self.groups.get_mut(&key).expect("just inserted")
                }
            };
            for (acc, v) in state.accs.iter_mut().zip(&arg_vals) {
                acc.update(v.as_ref());
            }
            // Group-by key reps were captured at insert; also capture
            // per-group values of bare (non-aggregate) projections lazily
            // at finish time via the stored key reps — see finish().
            // To support projections over arbitrary row expressions we
            // additionally remember the first row's full evaluation:
            if state.rep.len() == self.stmt.group_by.len() {
                for proj in &self.agg_projected {
                    // Evaluate the non-aggregate parts only; aggregate
                    // pseudo columns are unknown yet, so skip exprs that
                    // reference them — they get computed in finish().
                    if !references_agg(proj) {
                        state.rep.push(eval(proj, b)?);
                    } else {
                        state.rep.push(Value::Null); // placeholder
                    }
                }
            }
            Ok(())
        } else {
            let mut row = Vec::with_capacity(self.plain_exprs.len() + self.hidden_sort.len());
            for e in &self.plain_exprs {
                row.push(eval(e, b)?);
            }
            for e in &self.hidden_sort {
                row.push(eval(e, b)?);
            }
            self.rows.push(row);
            Ok(())
        }
    }

    /// True when `limit` is set and at least that many plain rows exist.
    pub(crate) fn emitted_at_least(&self, limit: Option<usize>) -> bool {
        match limit {
            Some(l) => !self.aggregated && self.rows.len() >= l,
            None => false,
        }
    }

    // -- vectorized-path entry points (crate::compile / crate::vector) --

    /// Whether this sink accumulates aggregates.
    pub(crate) fn is_aggregated(&self) -> bool {
        self.aggregated
    }

    /// Star-expanded plain projection expressions.
    pub(crate) fn plain_exprs(&self) -> &[Expr] {
        &self.plain_exprs
    }

    /// Hidden ORDER BY key expressions appended to plain rows.
    pub(crate) fn hidden_sort(&self) -> &[Expr] {
        &self.hidden_sort
    }

    /// The deduplicated aggregate specs.
    pub(crate) fn agg_specs(&self) -> &[AggSpec] {
        &self.aggs
    }

    /// Projections with aggregate calls rewritten to `__agg` references.
    pub(crate) fn agg_projected(&self) -> &[Expr] {
        &self.agg_projected
    }

    /// Accepts one fully evaluated plain output row (visible projections
    /// followed by hidden sort keys) — the vectorized equivalent of the
    /// non-aggregated arm of [`RowSink::consume`].
    pub(crate) fn consume_plain_row(&mut self, row: Vec<Value>) {
        self.rows.push(row);
    }

    /// Accepts one evaluated row for aggregation: `key_vals` are the
    /// GROUP BY key values, `arg_vals` the aggregate arguments (`None`
    /// for COUNT(*)), and `rep_tail` lazily produces the representative
    /// projection values captured on a group's first row. Mirrors the
    /// aggregated arm of [`RowSink::consume`] exactly.
    pub(crate) fn consume_agg_row(
        &mut self,
        key_vals: Vec<Value>,
        arg_vals: &[Option<Value>],
        rep_tail: impl FnOnce() -> Vec<Value>,
    ) {
        let mut key = Vec::with_capacity(key_vals.len());
        let mut rep = Vec::with_capacity(key_vals.len());
        for v in key_vals {
            key.push(v.group_key());
            rep.push(v);
        }
        let state = match self.groups.get_mut(&key) {
            Some(s) => s,
            None => {
                self.group_order.push(key.clone());
                let accs = self.aggs.iter().map(|a| AggAcc::new(a.kind)).collect();
                self.groups.insert(key.clone(), GroupState { accs, rep });
                self.groups.get_mut(&key).expect("just inserted")
            }
        };
        for (acc, v) in state.accs.iter_mut().zip(arg_vals) {
            acc.update(v.as_ref());
        }
        if state.rep.len() == self.stmt.group_by.len() {
            state.rep.extend(rep_tail());
        }
    }

    /// Installs the groups of a fused grouped aggregation: per group its
    /// key value, finished accumulators (one per spec, in exact
    /// sequential-`update` state), and representative projection values
    /// captured on the group's first row. Groups arrive in
    /// first-appearance order, matching `consume`'s `group_order`.
    pub(crate) fn install_groups(
        &mut self,
        key_vals: Vec<Value>,
        accs: Vec<Vec<AggAcc>>,
        reps: Vec<Vec<Value>>,
    ) {
        for ((key_val, accs), rep_tail) in key_vals.into_iter().zip(accs).zip(reps) {
            let key = vec![key_val.group_key()];
            let mut rep = vec![key_val];
            rep.extend(rep_tail);
            self.group_order.push(key.clone());
            self.groups.insert(key, GroupState { accs, rep });
        }
    }

    /// Installs the single global group of a fused ungrouped aggregation.
    /// The accumulators must be in the exact state per-row updates would
    /// have produced; representative values are NULL placeholders, as in
    /// the interpreter (every projection references `__agg`).
    pub(crate) fn install_global_group(&mut self, accs: Vec<AggAcc>) {
        let rep = vec![Value::Null; self.agg_projected.len()];
        self.group_order.push(Vec::new());
        self.groups.insert(Vec::new(), GroupState { accs, rep });
    }

    fn finish(mut self) -> Result<ResultTable, ExecError> {
        if self.aggregated {
            // Global aggregate with zero input rows still yields one row
            // (COUNT(*) = 0) when there is no GROUP BY.
            if self.groups.is_empty() && self.stmt.group_by.is_empty() {
                let accs: Vec<AggAcc> = self.aggs.iter().map(|a| AggAcc::new(a.kind)).collect();
                let mut rep = Vec::new();
                for proj in &self.agg_projected {
                    if !references_agg(proj) {
                        // No rows to evaluate bare columns against: NULL.
                        rep.push(Value::Null);
                    } else {
                        rep.push(Value::Null);
                    }
                }
                self.group_order.push(Vec::new());
                self.groups.insert(Vec::new(), GroupState { accs, rep });
            }
            let mut rows = Vec::with_capacity(self.group_order.len());
            for key in &self.group_order {
                let state = &self.groups[key];
                // Pseudo table carrying this group's aggregate results.
                let mut schema = Schema::default();
                let mut agg_row = Vec::new();
                for (spec, acc) in self.aggs.iter().zip(&state.accs) {
                    let v = acc.finish();
                    let ty = match &v {
                        Value::Int(_) => ColumnType::Int,
                        Value::Float(_) | Value::Null => ColumnType::Float,
                        Value::Str(_) => ColumnType::Str,
                    };
                    schema.push(ColumnDef::new(&spec.sql, ty));
                    agg_row.push(v);
                }
                let mut pseudo = Table::new(schema);
                pseudo
                    .push_row(agg_row)
                    .expect("schema built from the row itself");
                let b = Bindings::single("__agg", &pseudo, 0);
                let nkeys = self.stmt.group_by.len();
                let mut row = Vec::with_capacity(self.agg_projected.len());
                for (i, proj) in self.agg_projected.iter().enumerate() {
                    if references_agg(proj) {
                        row.push(eval(proj, &b)?);
                    } else {
                        // Representative value captured from the group's
                        // first row.
                        row.push(state.rep[nkeys + i].clone());
                    }
                }
                rows.push(row);
            }
            self.rows = rows;
        }

        // ORDER BY.
        if !self.stmt.order_by.is_empty() {
            let mut keys: Vec<(usize, bool)> = Vec::new(); // (column index, desc)
            let mut hidden_base = self.columns.len();
            for o in &self.stmt.order_by {
                match output_index(&self.columns, self.stmt, &o.expr) {
                    Some(i) => keys.push((i, o.desc)),
                    None => {
                        if self.aggregated {
                            return Err(ExecError::Unsupported(format!(
                                "ORDER BY {} must name an output column of an aggregate query",
                                o.expr.to_sql()
                            )));
                        }
                        keys.push((hidden_base, o.desc));
                        hidden_base += 1;
                    }
                }
            }
            let key_cmp = |a: &[Value], b: &[Value]| {
                for &(i, desc) in &keys {
                    let ord = a[i].total_cmp(&b[i]);
                    if ord != std::cmp::Ordering::Equal {
                        return if desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            };
            match self.stmt.limit {
                // Top-n selection: ORDER BY + LIMIT n with n well under
                // the row count selects the n smallest under (keys,
                // original index) — a strict total order, so the result
                // is exactly the stable sort's prefix without sorting
                // the whole set.
                Some(l) if (l as usize) < self.rows.len() => {
                    let n = l as usize;
                    if n == 0 {
                        self.rows.clear();
                    } else {
                        let rows = &self.rows;
                        let ord =
                            |x: &usize, y: &usize| key_cmp(&rows[*x], &rows[*y]).then(x.cmp(y));
                        let mut idx: Vec<usize> = (0..rows.len()).collect();
                        idx.select_nth_unstable_by(n - 1, ord);
                        idx.truncate(n);
                        idx.sort_unstable_by(ord);
                        let mut out = Vec::with_capacity(n);
                        for &i in &idx {
                            out.push(std::mem::take(&mut self.rows[i]));
                        }
                        self.rows = out;
                    }
                }
                _ => self.rows.sort_by(|a, b| key_cmp(a, b)),
            }
        }
        // Strip hidden sort keys.
        let visible = self.columns.len();
        for r in &mut self.rows {
            r.truncate(visible);
        }

        if let Some(l) = self.stmt.limit {
            self.rows.truncate(l as usize);
        }
        Ok(ResultTable {
            columns: self.columns,
            rows: self.rows,
        })
    }
}

/// True when `expr` references the `__agg` pseudo binding.
pub(crate) fn references_agg(expr: &Expr) -> bool {
    let mut found = false;
    expr.visit(&mut |e| {
        if let Expr::Column {
            qualifier: Some(q), ..
        } = e
        {
            if q == "__agg" {
                found = true;
            }
        }
    });
    found
}

/// Resolves an ORDER BY expression to an output column index: by alias,
/// by rendered SQL text, or by bare column name.
fn output_index(columns: &[String], stmt: &SelectStatement, expr: &Expr) -> Option<usize> {
    let sql = expr.to_sql();
    if let Some(i) = columns.iter().position(|c| *c == sql) {
        return Some(i);
    }
    // A bare column may also match a projection whose *expression* is that
    // column even though the output name is an alias.
    if let Expr::Column { name, .. } = expr {
        for (i, p) in stmt.projections.iter().enumerate() {
            if let Expr::Column { name: pn, .. } = &p.expr {
                if pn == name && i < columns.len() {
                    return Some(i);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qserv_sqlparse::parse_select;

    /// A tiny Object-chunk-like table.
    fn object_table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra_PS", ColumnType::Float),
            ColumnDef::new("decl_PS", ColumnType::Float),
            ColumnDef::new("zFlux_PS", ColumnType::Float),
            ColumnDef::new("chunkId", ColumnType::Int),
        ]));
        let rows = [
            (1i64, 1.0, 1.0, 100.0, 7i64),
            (2, 1.5, 1.5, 200.0, 7),
            (3, 2.5, 2.5, 50.0, 8),
            (4, 3.0, 3.0, 400.0, 8),
            (5, 3.5, 3.5, 0.0, 9),
        ];
        for (id, ra, decl, flux, chunk) in rows {
            t.push_row(vec![
                Value::Int(id),
                Value::Float(ra),
                Value::Float(decl),
                if flux == 0.0 {
                    Value::Null
                } else {
                    Value::Float(flux)
                },
                Value::Int(chunk),
            ])
            .unwrap();
        }
        t.build_index("objectId").unwrap();
        t
    }

    fn source_table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("sourceId", ColumnType::Int),
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra", ColumnType::Float),
            ColumnDef::new("decl", ColumnType::Float),
            ColumnDef::new("psfFlux", ColumnType::Float),
        ]));
        for (sid, oid, ra, decl, flux) in [
            (10i64, 1i64, 1.0, 1.0, 90.0),
            (11, 1, 1.001, 1.0, 95.0),
            (12, 2, 1.5, 1.5, 190.0),
            (13, 9, 9.0, 9.0, 10.0), // orphan source
        ] {
            t.push_row(vec![
                Value::Int(sid),
                Value::Int(oid),
                Value::Float(ra),
                Value::Float(decl),
                Value::Float(flux),
            ])
            .unwrap();
        }
        t.build_index("objectId").unwrap();
        t
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("Object", object_table());
        db.create_table("Source", source_table());
        db
    }

    fn run(sql: &str) -> ResultTable {
        execute(&db(), &parse_select(sql).unwrap()).unwrap()
    }

    #[test]
    fn select_star_by_object_id() {
        let r = run("SELECT * FROM Object WHERE objectId = 3");
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.columns.len(), 5);
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert_eq!(r.rows[0][4], Value::Int(8));
    }

    #[test]
    fn index_and_scan_agree() {
        // Same predicate with and without a usable index shape.
        let via_index = run("SELECT objectId FROM Object WHERE objectId = 2");
        let via_scan = run("SELECT objectId FROM Object WHERE objectId + 0 = 2");
        assert_eq!(via_index.rows, via_scan.rows);
    }

    #[test]
    fn in_list_uses_index() {
        let r = run("SELECT objectId FROM Object WHERE objectId IN (1, 4, 99) ORDER BY objectId");
        assert_eq!(r.rows, vec![vec![Value::Int(1)], vec![Value::Int(4)]]);
    }

    #[test]
    fn count_star() {
        let r = run("SELECT COUNT(*) FROM Object");
        assert_eq!(r.scalar(), Some(&Value::Int(5)));
    }

    #[test]
    fn count_of_empty_selection_is_zero_row() {
        let r = run("SELECT COUNT(*) FROM Object WHERE objectId = 999");
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn count_column_skips_nulls() {
        let r = run("SELECT COUNT(zFlux_PS) FROM Object");
        assert_eq!(r.scalar(), Some(&Value::Int(4)));
    }

    #[test]
    fn sum_avg_min_max() {
        let r = run("SELECT SUM(chunkId), AVG(ra_PS), MIN(ra_PS), MAX(ra_PS) FROM Object");
        assert_eq!(r.rows[0][0], Value::Int(39));
        assert_eq!(
            r.rows[0][1],
            Value::Float((1.0 + 1.5 + 2.5 + 3.0 + 3.5) / 5.0)
        );
        assert_eq!(r.rows[0][2], Value::Float(1.0));
        assert_eq!(r.rows[0][3], Value::Float(3.5));
    }

    #[test]
    fn sum_of_no_rows_is_null() {
        let r = run("SELECT SUM(ra_PS) FROM Object WHERE objectId = 999");
        assert_eq!(r.scalar(), Some(&Value::Null));
    }

    #[test]
    fn group_by_chunk_density_like_hv3() {
        let r = run(
            "SELECT count(*) AS n, AVG(ra_PS), chunkId FROM Object GROUP BY chunkId ORDER BY chunkId",
        );
        assert_eq!(r.columns, vec!["n", "AVG(ra_PS)", "chunkId"]);
        assert_eq!(r.num_rows(), 3);
        assert_eq!(
            r.rows[0],
            vec![Value::Int(2), Value::Float(1.25), Value::Int(7)]
        );
        assert_eq!(
            r.rows[2],
            vec![Value::Int(1), Value::Float(3.5), Value::Int(9)]
        );
    }

    #[test]
    fn aggregate_expression_over_aggregates() {
        // The master's merge query shape: SUM(x)/SUM(y).
        let r = run("SELECT SUM(chunkId) / COUNT(*) FROM Object");
        assert_eq!(r.rows[0][0], Value::Float(39.0 / 5.0));
    }

    #[test]
    fn where_with_udf_filter_like_hv2() {
        let r =
            run("SELECT objectId FROM Object WHERE fluxToAbMag(zFlux_PS) < 26 ORDER BY objectId");
        // mag(100)=26.4, mag(200)=25.65, mag(50)=27.15, mag(400)=24.9.
        assert_eq!(r.rows, vec![vec![Value::Int(2)], vec![Value::Int(4)]]);
    }

    #[test]
    fn null_flux_rows_filtered_by_udf_predicate() {
        let r = run("SELECT objectId FROM Object WHERE fluxToAbMag(zFlux_PS) > 0");
        assert_eq!(r.num_rows(), 4); // object 5 has NULL flux
    }

    #[test]
    fn equi_join_object_source() {
        let r = run("SELECT o.objectId, s.sourceId FROM Object o, Source s \
             WHERE o.objectId = s.objectId ORDER BY s.sourceId");
        assert_eq!(r.num_rows(), 3); // orphan source 13 drops out
        assert_eq!(r.rows[0], vec![Value::Int(1), Value::Int(10)]);
        assert_eq!(r.rows[2], vec![Value::Int(2), Value::Int(12)]);
    }

    #[test]
    fn join_with_cross_predicate_like_shv2() {
        let r = run(
            "SELECT o.objectId, s.sourceId FROM Object o, Source s \
             WHERE o.objectId = s.objectId AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0005",
        );
        // Only source 11 is displaced from its object by > 0.0005 deg.
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.rows[0][1], Value::Int(11));
    }

    #[test]
    fn self_join_near_neighbor_like_shv1() {
        let r = run("SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.8 \
             AND o1.objectId != o2.objectId");
        // Pairs within 0.8 deg (~0.707 separation): (1,2), (3,4), (4,5),
        // each counted in both orders.
        assert_eq!(r.scalar(), Some(&Value::Int(6)));
    }

    #[test]
    fn nested_loop_join_without_equi_key() {
        let r = run("SELECT count(*) FROM Object o1, Object o2 WHERE o1.ra_PS < o2.ra_PS");
        assert_eq!(r.scalar(), Some(&Value::Int(10))); // 5 choose 2 ordered
    }

    #[test]
    fn order_by_desc_and_limit() {
        let r = run("SELECT objectId FROM Object ORDER BY ra_PS DESC LIMIT 2");
        assert_eq!(r.rows, vec![vec![Value::Int(5)], vec![Value::Int(4)]]);
    }

    #[test]
    fn order_by_expression_not_projected() {
        let r = run("SELECT objectId FROM Object ORDER BY -ra_PS LIMIT 1");
        assert_eq!(r.rows[0][0], Value::Int(5));
        assert_eq!(r.columns.len(), 1); // hidden key stripped
    }

    #[test]
    fn limit_without_order_short_circuits() {
        let r = run("SELECT objectId FROM Object LIMIT 3");
        assert_eq!(r.num_rows(), 3);
    }

    #[test]
    fn tableless_select() {
        let r = run("SELECT 1 + 1, 3 * 2");
        assert_eq!(r.rows[0], vec![Value::Int(2), Value::Int(6)]);
    }

    #[test]
    fn spatial_box_udf_restriction() {
        let r = run("SELECT objectId FROM Object \
             WHERE qserv_ptInSphericalBox(ra_PS, decl_PS, 0.0, 0.0, 2.0, 2.0) = 1 \
             ORDER BY objectId");
        assert_eq!(r.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn between_filter_like_lv3() {
        let r = run(
            "SELECT COUNT(*) FROM Object WHERE ra_PS BETWEEN 1 AND 2 AND decl_PS BETWEEN 1 AND 2",
        );
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn unknown_table_and_duplicate_binding() {
        let e = execute(&db(), &parse_select("SELECT * FROM Nope").unwrap());
        assert!(matches!(e, Err(ExecError::UnknownTable(_))));
        let e = execute(
            &db(),
            &parse_select("SELECT 1 FROM Object o, Source o").unwrap(),
        );
        assert!(matches!(e, Err(ExecError::DuplicateBinding(_))));
    }

    #[test]
    fn three_way_join_unsupported() {
        let e = execute(
            &db(),
            &parse_select("SELECT 1 FROM Object a, Object b, Object c").unwrap(),
        );
        assert!(matches!(e, Err(ExecError::Unsupported(_))));
    }

    #[test]
    fn result_into_table_round_trip() {
        let r = run("SELECT objectId, ra_PS FROM Object WHERE objectId <= 2");
        let t = r.clone().into_table();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().columns()[0].ty, ColumnType::Int);
        assert_eq!(t.schema().columns()[1].ty, ColumnType::Float);
        assert_eq!(t.get_by_name(0, "ra_PS"), Some(Value::Float(1.0)));
    }

    #[test]
    fn group_by_key_is_projected_via_rep_values() {
        let r = run("SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId ORDER BY chunkId");
        assert_eq!(r.rows[0], vec![Value::Int(7), Value::Int(2)]);
        assert_eq!(r.rows[1], vec![Value::Int(8), Value::Int(2)]);
    }

    #[test]
    fn empty_group_by_result_is_empty() {
        let r = run("SELECT chunkId, COUNT(*) FROM Object WHERE objectId = 999 GROUP BY chunkId");
        assert_eq!(r.num_rows(), 0);
    }
}
