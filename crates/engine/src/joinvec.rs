//! Vectorized near-neighbor join: the compiled distance kernel for
//! two-table statements whose cross predicates are one angular-distance
//! cut plus integer column comparisons — the shape every worker-side
//! near-neighbor and XMatch statement has after the frontend's rewrite
//! (`qserv_angSep(a.lon, a.lat, b.lon, b.lat) < r AND a.id != b.id`).
//!
//! The interpreter evaluates that predicate with a nested loop: per pair
//! it builds `Bindings`, walks the expression tree, constructs two
//! `LonLat`s and converts both to unit vectors. This module instead
//! precomputes one unit vector per candidate row, sorts the build side by
//! declination, and for each probe row scans only the rows within
//! `±(r + ε)` of its declination — sound because great-circle separation
//! is bounded below by the declination difference — evaluating the
//! distance over dense `f64` columns.
//!
//! Like `crate::compile`, planning is conservative: any cross predicate
//! outside the recognized shapes refuses to plan and the executor falls
//! back to the interpreter, which stays the semantic oracle. The distance
//! itself goes through `qserv_sphgeom::chord2`/`chord2_to_angle`, the
//! exact arithmetic of `angular_separation_deg`, so accept/reject
//! decisions are bit-identical to the interpreter's
//! (`tests/join_oracle.rs` and `tests/vectorized.rs` enforce this).

use crate::eval::Bindings;
use crate::exec::{column_of, ExecError, RowSink};
use crate::schema::ColumnType;
use crate::table::{ColumnSlice, Table};
use qserv_sphgeom::{chord2_to_angle, LonLat, UnitVector3};
use qserv_sqlparse::ast::{BinaryOp, Expr, Literal};
use std::sync::Arc;

/// Safety margin added to the declination window, in degrees. The window
/// bound `|Δdecl| ≤ separation` holds exactly in real arithmetic; the
/// computed separation differs from the true one by a few ULP, so a
/// nano-degree of slack (~3 µas, far below catalog astrometry) makes the
/// pruning conservative without admitting meaningfully more candidates.
const DECL_MARGIN_DEG: f64 = 1e-9;

/// One integer cross-column comparison, oriented as
/// `binding0.col ⟨op⟩ binding1.col`.
struct IntCmp {
    c0: usize,
    c1: usize,
    op: BinaryOp,
}

/// A planned vectorized distance join over two bindings.
pub(crate) struct DistJoinPlan {
    /// Per binding: (lon column, lat column) of the distance predicate.
    lon: [usize; 2],
    lat: [usize; 2],
    /// Distance cut in degrees.
    radius: f64,
    /// `true` for `<`, `false` for `<=`.
    strict: bool,
    /// Remaining cross conjuncts, all integer column comparisons.
    residuals: Vec<IntCmp>,
}

/// Recognizes the vectorizable two-table join shape: exactly one
/// `qserv_angSep(lon_a, lat_a, lon_b, lat_b) < r` (or `<=`, either
/// argument orientation, literal on either side) cross conjunct, every
/// other cross conjunct an integer column comparison across the two
/// bindings. `None` falls back to the interpreter.
pub(crate) fn plan_dist_join(
    bindings: &[(String, Arc<Table>)],
    cross: &[&Expr],
) -> Option<DistJoinPlan> {
    let names = [bindings[0].0.as_str(), bindings[1].0.as_str()];
    let mut dist: Option<([usize; 2], [usize; 2], f64, bool)> = None;
    let mut residuals = Vec::new();

    for c in cross {
        if let Some((lon, lat, radius, strict)) = recognize_angsep(c, &names, bindings) {
            if dist.is_some() {
                return None; // two distance cuts: out of scope
            }
            dist = Some((lon, lat, radius, strict));
            continue;
        }
        residuals.push(recognize_int_cmp(c, &names, bindings)?);
    }

    let (lon, lat, radius, strict) = dist?;
    Some(DistJoinPlan {
        lon,
        lat,
        radius,
        strict,
        residuals,
    })
}

/// `qserv_angSep(c, c, c, c) ⟨ < | <= ⟩ numeric-literal`, either
/// orientation. The first argument pair must be the coordinates of one
/// binding, the second pair the other's; all four numeric columns.
fn recognize_angsep(
    e: &Expr,
    names: &[&str; 2],
    bindings: &[(String, Arc<Table>)],
) -> Option<([usize; 2], [usize; 2], f64, bool)> {
    let Expr::Binary { op, lhs, rhs } = e else {
        return None;
    };
    // Normalize to `angsep(...) op literal`.
    let (func, lit, op) = if let Some(r) = num_lit_f64(rhs) {
        (&**lhs, r, *op)
    } else if let Some(l) = num_lit_f64(lhs) {
        let flipped = match op {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            _ => return None,
        };
        (&**rhs, l, flipped)
    } else {
        return None;
    };
    // Only upper cuts: a lower distance bound admits nearly every pair,
    // which the declination window cannot prune.
    let strict = match op {
        BinaryOp::Lt => true,
        BinaryOp::LtEq => false,
        _ => return None,
    };
    let Expr::Function { name, args } = func else {
        return None;
    };
    if !matches!(
        name.to_ascii_lowercase().as_str(),
        "qserv_angsep" | "scisql_angsep"
    ) || args.len() != 4
    {
        return None;
    }
    let mut cols = [(0usize, 0usize); 4];
    for (slot, a) in cols.iter_mut().zip(args) {
        let (bi, ci) = column_of(a, names, bindings)?;
        if bindings[bi].1.schema().columns()[ci].ty == ColumnType::Str {
            return None; // non-NULL strings error in the interpreter
        }
        *slot = (bi, ci);
    }
    // (args[0], args[1]) one binding, (args[2], args[3]) the other.
    let (b_first, b_second) = (cols[0].0, cols[2].0);
    if cols[1].0 != b_first || cols[3].0 != b_second || b_first == b_second {
        return None;
    }
    let mut lon = [0usize; 2];
    let mut lat = [0usize; 2];
    lon[b_first] = cols[0].1;
    lat[b_first] = cols[1].1;
    lon[b_second] = cols[2].1;
    lat[b_second] = cols[3].1;
    Some((lon, lat, lit, strict))
}

fn num_lit_f64(e: &Expr) -> Option<f64> {
    match e {
        Expr::Literal(Literal::Int(v)) => Some(*v as f64),
        Expr::Literal(Literal::Float(v)) => Some(*v),
        _ => None,
    }
}

/// `col ⟨cmp⟩ col` across the two bindings, both integer columns,
/// oriented as `binding0.col op binding1.col`.
fn recognize_int_cmp(
    e: &Expr,
    names: &[&str; 2],
    bindings: &[(String, Arc<Table>)],
) -> Option<IntCmp> {
    let Expr::Binary { op, lhs, rhs } = e else {
        return None;
    };
    if !matches!(
        op,
        BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq
    ) {
        return None;
    }
    let l = column_of(lhs, names, bindings)?;
    let r = column_of(rhs, names, bindings)?;
    if l.0 == r.0 {
        return None;
    }
    for &(bi, ci) in [&l, &r] {
        if bindings[bi].1.schema().columns()[ci].ty != ColumnType::Int {
            return None;
        }
    }
    let (c0, c1, op) = if l.0 == 0 {
        (l.1, r.1, *op)
    } else {
        let flipped = match op {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::NotEq => BinaryOp::NotEq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            _ => unreachable!("filtered above"),
        };
        (r.1, l.1, flipped)
    };
    Some(IntCmp { c0, c1, op })
}

/// Numeric column reader over dense storage.
enum NumCol<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl NumCol<'_> {
    fn new(table: &Table, col: usize) -> NumCol<'_> {
        match table.column_slice(col) {
            ColumnSlice::Int(v) => NumCol::I(v),
            ColumnSlice::Float(v) => NumCol::F(v),
            ColumnSlice::Str(_) => unreachable!("plan guarantees a numeric column"),
        }
    }

    fn get(&self, i: usize) -> f64 {
        match self {
            NumCol::I(v) => v[i] as f64,
            NumCol::F(v) => v[i],
        }
    }
}

/// The build side, declination-sorted: one precomputed unit vector per
/// usable candidate row.
struct BuildSide {
    decl: Vec<f64>,
    rows: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
}

/// Executes a planned distance join over the candidate rows, feeding
/// matched pairs to `sink` in the interpreter's nested-loop order
/// (probe rows ascending, build rows ascending within each probe row).
pub(crate) fn run_dist_join(
    plan: &DistJoinPlan,
    bindings: &[(String, Arc<Table>)],
    candidates: &[Vec<u32>],
    sink: &mut RowSink<'_>,
    quick_limit: Option<usize>,
) -> Result<(), ExecError> {
    let (n0, t0) = (&bindings[0].0, &bindings[0].1);
    let (n1, t1) = (&bindings[1].0, &bindings[1].1);

    // Build side (binding 1): rows with a NULL or non-finite coordinate
    // can never satisfy the distance cut (NULL propagates to a NULL
    // predicate, NaN fails every comparison), so they drop here exactly
    // as the interpreter drops them per pair.
    let lon1 = NumCol::new(t1, plan.lon[1]);
    let lat1 = NumCol::new(t1, plan.lat[1]);
    let lon1_nulls = t1.null_mask(plan.lon[1]);
    let lat1_nulls = t1.null_mask(plan.lat[1]);
    let mut entries: Vec<(f64, u32, UnitVector3)> = Vec::with_capacity(candidates[1].len());
    for &r in &candidates[1] {
        let i = r as usize;
        if lon1_nulls[i] || lat1_nulls[i] {
            continue;
        }
        let (lo, la) = (lon1.get(i), lat1.get(i));
        if !lo.is_finite() || !la.is_finite() {
            continue;
        }
        let v = LonLat::from_degrees(lo, la).to_vector();
        // LonLat clamps declination; window on the clamped value.
        entries.push((la.clamp(-90.0, 90.0), r, v));
    }
    entries.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut build = BuildSide {
        decl: Vec::with_capacity(entries.len()),
        rows: Vec::with_capacity(entries.len()),
        xs: Vec::with_capacity(entries.len()),
        ys: Vec::with_capacity(entries.len()),
        zs: Vec::with_capacity(entries.len()),
    };
    for (d, r, v) in entries {
        build.decl.push(d);
        build.rows.push(r);
        build.xs.push(v.x());
        build.ys.push(v.y());
        build.zs.push(v.z());
    }

    // Residual column slices (all Int by plan construction): null masks
    // and data for both sides, plus the comparison operator.
    type ResidualSlices<'a> = (&'a [bool], &'a [i64], &'a [bool], &'a [i64], BinaryOp);
    let residuals: Vec<ResidualSlices> = plan
        .residuals
        .iter()
        .map(|rc| {
            let ColumnSlice::Int(d0) = t0.column_slice(rc.c0) else {
                unreachable!("plan guarantees integer residual columns");
            };
            let ColumnSlice::Int(d1) = t1.column_slice(rc.c1) else {
                unreachable!("plan guarantees integer residual columns");
            };
            (t0.null_mask(rc.c0), d0, t1.null_mask(rc.c1), d1, rc.op)
        })
        .collect();

    let lon0 = NumCol::new(t0, plan.lon[0]);
    let lat0 = NumCol::new(t0, plan.lat[0]);
    let lon0_nulls = t0.null_mask(plan.lon[0]);
    let lat0_nulls = t0.null_mask(plan.lat[0]);
    let window = plan.radius + DECL_MARGIN_DEG;

    let mut b = Bindings::new(vec![(n0, t0, 0), (n1, t1, 0)]);
    let mut matched: Vec<u32> = Vec::new();
    for &r0 in &candidates[0] {
        let i0 = r0 as usize;
        if lon0_nulls[i0] || lat0_nulls[i0] {
            continue;
        }
        let (lo, la) = (lon0.get(i0), lat0.get(i0));
        if !lo.is_finite() || !la.is_finite() {
            continue;
        }
        let v0 = LonLat::from_degrees(lo, la).to_vector();
        let d0 = la.clamp(-90.0, 90.0);
        let from = build.decl.partition_point(|d| *d < d0 - window);
        let to = build.decl.partition_point(|d| *d <= d0 + window);

        matched.clear();
        'pair: for i in from..to {
            let dx = v0.x() - build.xs[i];
            let dy = v0.y() - build.ys[i];
            let dz = v0.z() - build.zs[i];
            let sep = chord2_to_angle(dx * dx + dy * dy + dz * dz).degrees();
            let pass = if plan.strict {
                sep < plan.radius
            } else {
                sep <= plan.radius
            };
            if !pass {
                continue;
            }
            let i1 = build.rows[i] as usize;
            for (n0m, d0c, n1m, d1c, op) in &residuals {
                if n0m[i0] || n1m[i1] {
                    continue 'pair; // NULL comparison is UNKNOWN: drop
                }
                let ord = d0c[i0].cmp(&d1c[i1]);
                let pass = match op {
                    BinaryOp::Eq => ord.is_eq(),
                    BinaryOp::NotEq => ord.is_ne(),
                    BinaryOp::Lt => ord.is_lt(),
                    BinaryOp::LtEq => ord.is_le(),
                    BinaryOp::Gt => ord.is_gt(),
                    BinaryOp::GtEq => ord.is_ge(),
                    _ => unreachable!("plan filters operators"),
                };
                if !pass {
                    continue 'pair;
                }
            }
            matched.push(build.rows[i]);
        }
        // The interpreter visits build rows in candidate (ascending row)
        // order; restore it so row output order is identical.
        matched.sort_unstable();
        b.set_row(0, i0);
        for &r1 in &matched {
            b.set_row(1, r1 as usize);
            sink.consume(&b)?;
            if sink.emitted_at_least(quick_limit) {
                return Ok(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::exec::{execute_with_mode, ExecMode, ExecPath};
    use crate::schema::{ColumnDef, Schema};
    use crate::value::Value;
    use qserv_sqlparse::parse_select;

    fn sky_table(rows: &[(i64, f64, f64)]) -> Table {
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("ra", ColumnType::Float),
            ColumnDef::new("decl", ColumnType::Float),
        ]));
        for &(id, ra, decl) in rows {
            t.push_row(vec![
                Value::Int(id),
                if ra.is_nan() {
                    Value::Null
                } else {
                    Value::Float(ra)
                },
                Value::Float(decl),
            ])
            .expect("schema matches");
        }
        t
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "P",
            sky_table(&[
                (1, 10.0, 0.0),
                (2, 10.02, 0.01),
                (3, 200.0, 45.0),
                (4, f64::NAN, 0.0), // NULL ra
            ]),
        );
        db.create_table(
            "Q",
            sky_table(&[(11, 10.01, 0.0), (12, 200.01, 45.0), (13, 350.0, -30.0)]),
        );
        db
    }

    fn both_paths(sql: &str) -> (crate::exec::ResultTable, crate::exec::ResultTable) {
        let stmt = parse_select(sql).expect("parses");
        let d = db();
        let (vec_r, path) = execute_with_mode(&d, &stmt, ExecMode::Vectorized).expect("vectorized");
        assert_eq!(path, ExecPath::Vectorized);
        let (int_r, path) = execute_with_mode(&d, &stmt, ExecMode::Interpreted).expect("interp");
        assert_eq!(path, ExecPath::Interpreted);
        (vec_r, int_r)
    }

    #[test]
    fn distance_join_matches_interpreter_exactly() {
        let (v, i) = both_paths(
            "SELECT a.id, b.id, qserv_angSep(a.ra, a.decl, b.ra, b.decl) FROM P a, Q b \
             WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.05",
        );
        assert_eq!(v, i);
        assert_eq!(v.num_rows(), 3); // (1,11), (2,11), (3,12)
    }

    #[test]
    fn self_join_with_residual_matches_interpreter() {
        let (v, i) = both_paths(
            "SELECT count(*) FROM P o1, P o2 \
             WHERE qserv_angSep(o1.ra, o1.decl, o2.ra, o2.decl) < 0.05 AND o1.id != o2.id",
        );
        assert_eq!(v, i);
        assert_eq!(v.scalar(), Some(&Value::Int(2))); // (1,2) both orders
    }

    #[test]
    fn argument_orientation_is_symmetric() {
        // Second argument pair names binding a: still plans and agrees.
        let (v, i) = both_paths(
            "SELECT a.id, b.id FROM P a, Q b \
             WHERE qserv_angSep(b.ra, b.decl, a.ra, a.decl) <= 0.05 \
             ORDER BY a.id, b.id",
        );
        assert_eq!(v, i);
    }

    #[test]
    fn literal_on_left_flips() {
        let (v, i) = both_paths(
            "SELECT count(*) FROM P a, Q b \
             WHERE 0.05 > qserv_angSep(a.ra, a.decl, b.ra, b.decl)",
        );
        assert_eq!(v, i);
    }

    #[test]
    fn unsupported_shapes_refuse_to_plan() {
        let d = db();
        for sql in [
            // Lower distance bound: no declination pruning possible.
            "SELECT count(*) FROM P a, Q b WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) > 0.05",
            // No distance cut at all.
            "SELECT count(*) FROM P a, Q b WHERE a.id != b.id",
            // Non-integer residual comparison.
            "SELECT count(*) FROM P a, Q b \
             WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.05 AND a.ra < b.ra",
        ] {
            let stmt = parse_select(sql).expect("parses");
            let e = execute_with_mode(&d, &stmt, ExecMode::Vectorized);
            assert!(
                matches!(e, Err(ExecError::Unsupported(_))),
                "{sql} should refuse the vectorized path"
            );
        }
    }
}
