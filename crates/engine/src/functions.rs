//! Scalar UDFs installed on every worker engine.
//!
//! The paper's workers run with user-defined functions installed on their
//! MySQL instances (§5.3: `qserv_areaspec_box` is rewritten to
//! `qserv_ptInSphericalBox(ra_PS, decl_PS, ...) = 1` which "is rewritten to
//! operate using a user-defined function installed on worker database
//! instances"). This module is that UDF library:
//!
//! * `fluxToAbMag(flux)` / `abMagToFlux(mag)` — the photometric conversions
//!   used by every filter query in the evaluation (§6.2).
//! * `qserv_angSep(ra1, decl1, ra2, decl2)` — great-circle distance in
//!   degrees (the near-neighbour predicate).
//! * `qserv_ptInSphericalBox(ra, decl, lon1, lat1, lon2, lat2)` — 1/0
//!   containment test against a spherical box.
//! * Standard numeric helpers (`ABS`, `SQRT`, `FLOOR`, `CEIL`, `POW`,
//!   `LOG10`, `LN`, `LEAST`, `GREATEST`).

use crate::value::Value;
use qserv_sphgeom::region::Region;
use qserv_sphgeom::{angular_separation_deg, LonLat, SphericalBox};
use std::fmt;

/// Error from a scalar function invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionError {
    /// Function name as invoked.
    pub name: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for FunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.message)
    }
}

impl std::error::Error for FunctionError {}

/// The AB-magnitude zero point used by our synthetic catalog: fluxes are
/// stored in nanojansky, for which `m_AB = 31.4 - 2.5·log10(f_nJy)` (the
/// modern LSST convention).
pub const AB_ZEROPOINT_NJY: f64 = 31.4;

/// `fluxToAbMag`: converts a flux in nJy to AB magnitude. NULL (and
/// non-positive flux, which has no magnitude) yields NULL.
pub fn flux_to_ab_mag(flux: f64) -> Option<f64> {
    if flux > 0.0 && flux.is_finite() {
        Some(AB_ZEROPOINT_NJY - 2.5 * flux.log10())
    } else {
        None
    }
}

/// `abMagToFlux`: inverse of [`flux_to_ab_mag`].
pub fn ab_mag_to_flux(mag: f64) -> f64 {
    10f64.powf((AB_ZEROPOINT_NJY - mag) / 2.5)
}

/// True when `name` is a scalar function this registry can evaluate.
/// Matching is case-insensitive, as in MySQL.
pub fn is_known(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "fluxtoabmag"
            | "abmagtoflux"
            | "qserv_angsep"
            | "scisql_angsep"
            | "qserv_ptinsphericalbox"
            | "scisql_s2ptinbox"
            | "abs"
            | "sqrt"
            | "floor"
            | "ceil"
            | "pow"
            | "power"
            | "log10"
            | "ln"
            | "least"
            | "greatest"
    )
}

/// Evaluates scalar function `name` on `args`.
///
/// NULL inputs yield NULL (MySQL UDF convention). Unknown functions and
/// wrong arities are errors — the analyzer should have rejected them, so
/// reaching here is a dispatch bug worth surfacing.
pub fn call(name: &str, args: &[Value]) -> Result<Value, FunctionError> {
    let lname = name.to_ascii_lowercase();
    let err = |message: String| FunctionError {
        name: name.to_string(),
        message,
    };
    let arity = |n: usize| -> Result<(), FunctionError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(format!("expected {n} arguments, got {}", args.len())))
        }
    };
    // NULL propagation: any NULL argument makes the result NULL.
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    // All supported functions are numeric; coerce every argument once.
    let nums: Result<Vec<f64>, FunctionError> = args
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| err(format!("non-numeric argument {v}")))
        })
        .collect();
    let nums = nums?;

    let out = match lname.as_str() {
        "fluxtoabmag" => {
            arity(1)?;
            return Ok(match flux_to_ab_mag(nums[0]) {
                Some(m) => Value::Float(m),
                None => Value::Null,
            });
        }
        "abmagtoflux" => {
            arity(1)?;
            ab_mag_to_flux(nums[0])
        }
        "qserv_angsep" | "scisql_angsep" => {
            arity(4)?;
            angular_separation_deg(nums[0], nums[1], nums[2], nums[3])
        }
        "qserv_ptinsphericalbox" | "scisql_s2ptinbox" => {
            arity(6)?;
            let b = SphericalBox::from_degrees(nums[2], nums[3], nums[4], nums[5]);
            let inside = b.contains(&LonLat::from_degrees(nums[0], nums[1]));
            return Ok(Value::Int(inside as i64));
        }
        "abs" => {
            arity(1)?;
            // Preserve integer-ness of ABS.
            if let Value::Int(v) = args[0] {
                return Ok(Value::Int(v.saturating_abs()));
            }
            nums[0].abs()
        }
        "sqrt" => {
            arity(1)?;
            if nums[0] < 0.0 {
                return Ok(Value::Null);
            }
            nums[0].sqrt()
        }
        "floor" => {
            arity(1)?;
            return Ok(Value::Int(nums[0].floor() as i64));
        }
        "ceil" => {
            arity(1)?;
            return Ok(Value::Int(nums[0].ceil() as i64));
        }
        "pow" | "power" => {
            arity(2)?;
            nums[0].powf(nums[1])
        }
        "log10" => {
            arity(1)?;
            if nums[0] <= 0.0 {
                return Ok(Value::Null);
            }
            nums[0].log10()
        }
        "ln" => {
            arity(1)?;
            if nums[0] <= 0.0 {
                return Ok(Value::Null);
            }
            nums[0].ln()
        }
        "least" => {
            if args.is_empty() {
                return Err(err("LEAST needs at least one argument".into()));
            }
            nums.iter().cloned().fold(f64::INFINITY, f64::min)
        }
        "greatest" => {
            if args.is_empty() {
                return Err(err("GREATEST needs at least one argument".into()));
            }
            nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        }
        _ => return Err(err("unknown function".into())),
    };
    Ok(Value::Float(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_mag_round_trip() {
        for f in [1.0, 100.0, 3631e9 * 1e-9] {
            let m = flux_to_ab_mag(f).unwrap();
            let back = ab_mag_to_flux(m);
            assert!((back - f).abs() / f < 1e-12);
        }
    }

    #[test]
    fn flux_to_ab_mag_rejects_nonpositive() {
        assert!(flux_to_ab_mag(0.0).is_none());
        assert!(flux_to_ab_mag(-1.0).is_none());
        assert_eq!(
            call("fluxToAbMag", &[Value::Float(-1.0)]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn brighter_flux_means_smaller_magnitude() {
        let faint = flux_to_ab_mag(10.0).unwrap();
        let bright = flux_to_ab_mag(1000.0).unwrap();
        assert!(bright < faint);
        assert!((faint - bright - 5.0).abs() < 1e-12); // 100x flux = 5 mag
    }

    #[test]
    fn angsep_matches_sphgeom() {
        let v = call(
            "qserv_angSep",
            &[
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(90.0),
                Value::Float(0.0),
            ],
        )
        .unwrap();
        assert!((v.as_f64().unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn pt_in_spherical_box() {
        let inside = call(
            "qserv_ptInSphericalBox",
            &[
                Value::Float(5.0),
                Value::Float(5.0),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(10.0),
                Value::Float(10.0),
            ],
        )
        .unwrap();
        assert_eq!(inside, Value::Int(1));
        let outside = call(
            "qserv_ptInSphericalBox",
            &[
                Value::Float(15.0),
                Value::Float(5.0),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(10.0),
                Value::Float(10.0),
            ],
        )
        .unwrap();
        assert_eq!(outside, Value::Int(0));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            call(
                "qserv_angSep",
                &[
                    Value::Null,
                    Value::Float(0.0),
                    Value::Float(0.0),
                    Value::Float(0.0)
                ]
            )
            .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn arity_checked() {
        assert!(call("qserv_angSep", &[Value::Float(0.0)]).is_err());
        assert!(call("fluxToAbMag", &[]).is_err());
    }

    #[test]
    fn unknown_function_is_error() {
        assert!(call("nope", &[Value::Int(1)]).is_err());
        assert!(!is_known("nope"));
        assert!(is_known("FluxToAbMag"));
        assert!(is_known("QSERV_ANGSEP"));
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(call("ABS", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(call("FLOOR", &[Value::Float(2.7)]).unwrap(), Value::Int(2));
        assert_eq!(call("CEIL", &[Value::Float(2.2)]).unwrap(), Value::Int(3));
        assert_eq!(call("SQRT", &[Value::Float(-1.0)]).unwrap(), Value::Null);
        assert_eq!(
            call("LEAST", &[Value::Int(3), Value::Float(1.5), Value::Int(2)]).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            call("GREATEST", &[Value::Int(3), Value::Float(1.5)]).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(call("LOG10", &[Value::Float(0.0)]).unwrap(), Value::Null);
        assert_eq!(
            call("POW", &[Value::Float(2.0), Value::Float(10.0)]).unwrap(),
            Value::Float(1024.0)
        );
    }

    #[test]
    fn string_argument_rejected() {
        assert!(call("sqrt", &[Value::Str("x".into())]).is_err());
    }
}
