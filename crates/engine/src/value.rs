//! The dynamic value type with SQL semantics.
//!
//! Comparisons and arithmetic follow MySQL's rules for the types we carry:
//! `NULL` propagates through every operation and never compares equal to
//! anything (three-valued logic), integers and floats compare numerically,
//! and division by zero yields `NULL` (MySQL's behaviour, which the paper's
//! aggregation rewrite `SUM(...)/SUM(...)` relies on for empty results).

use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed SQL value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
}

impl Value {
    /// True when the value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as a float, when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an integer, when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// WHERE-clause truthiness: NULL and numeric zero are false, everything
    /// else (including non-empty strings) is true. Mirrors MySQL, where a
    /// predicate evaluates to 1/0/NULL.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable, otherwise the ordering. Numeric types compare across
    /// Int/Float.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality as a three-valued predicate: `None` for NULL operands.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Addition with NULL propagation; Int+Int stays Int (wrapping like
    /// MySQL's BIGINT would error — we saturate instead to stay total).
    pub fn add(&self, other: &Value) -> Value {
        Value::arith(self, other, |a, b| a.saturating_add(b), |a, b| a + b)
    }

    /// Subtraction with NULL propagation.
    pub fn sub(&self, other: &Value) -> Value {
        Value::arith(self, other, |a, b| a.saturating_sub(b), |a, b| a - b)
    }

    /// Multiplication with NULL propagation.
    pub fn mul(&self, other: &Value) -> Value {
        Value::arith(self, other, |a, b| a.saturating_mul(b), |a, b| a * b)
    }

    /// Division: always float (MySQL `/`), NULL on division by zero.
    pub fn div(&self, other: &Value) -> Value {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
            _ => Value::Null,
        }
    }

    /// Modulo: NULL on zero divisor; integer when both sides are integers.
    pub fn rem(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a % b)
                }
            }
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a % b)
                    }
                }
                _ => Value::Null,
            },
        }
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Value {
        match self {
            Value::Int(v) => Value::Int(v.saturating_neg()),
            Value::Float(v) => Value::Float(-v),
            _ => Value::Null,
        }
    }

    fn arith(
        a: &Value,
        b: &Value,
        int_op: impl Fn(i64, i64) -> i64,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Value {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Value::Int(int_op(*x, *y)),
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(float_op(x, y)),
                _ => Value::Null,
            },
        }
    }

    /// A total ordering for sorting result rows: NULLs first, then
    /// numerics, then strings. (Used by ORDER BY; SQL leaves NULL placement
    /// implementation-defined and MySQL sorts NULLs first ascending.)
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let (x, y) = (
                    a.as_f64().expect("rank 1 is numeric"),
                    b.as_f64().expect("rank 1 is numeric"),
                );
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// A hashable group-by key for this value. Floats are keyed by bit
    /// pattern (with -0.0 folded onto 0.0 so equal values group together).
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Int(v) => GroupKey::Int(*v),
            Value::Float(v) => {
                let f = if *v == 0.0 { 0.0 } else { *v };
                GroupKey::Float(f.to_bits())
            }
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }
}

/// A hashable, equatable key derived from a [`Value`] for GROUP BY.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// NULL key (SQL groups NULLs together).
    Null,
    /// Integer key.
    Int(i64),
    /// Float key, by bit pattern.
    Float(u64),
    /// String key.
    Str(String),
}

impl fmt::Display for Value {
    /// SQL-literal rendering: the exact form used in dumped INSERT
    /// statements, so `Display` and [`crate::dump`] always agree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    // `{}` on f64 prints the shortest string that
                    // round-trips, so no precision is lost in transfer.
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn null_propagates() {
        assert!(Value::Null.add(&Value::Int(1)).is_null());
        assert!(Value::Int(1).mul(&Value::Null).is_null());
        assert!(Value::Null.sql_cmp(&Value::Int(1)).is_none());
        assert!(Value::Null.sql_eq(&Value::Null).is_none());
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Float(2.0).sql_eq(&Value::Int(2)), Some(true));
    }

    #[test]
    fn string_comparison() {
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        // String vs number: incomparable in our subset.
        assert!(Value::Str("1".into()).sql_cmp(&Value::Int(1)).is_none());
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).mul(&Value::Int(3)), Value::Int(6));
        assert_eq!(Value::Int(2).sub(&Value::Int(3)), Value::Int(-1));
    }

    #[test]
    fn division_is_float_and_null_on_zero() {
        assert_eq!(Value::Int(5).div(&Value::Int(2)), Value::Float(2.5));
        assert!(Value::Int(5).div(&Value::Int(0)).is_null());
        assert!(Value::Float(5.0).div(&Value::Float(0.0)).is_null());
    }

    #[test]
    fn modulo() {
        assert_eq!(Value::Int(7).rem(&Value::Int(3)), Value::Int(1));
        assert!(Value::Int(7).rem(&Value::Int(0)).is_null());
        assert_eq!(Value::Float(7.5).rem(&Value::Int(2)), Value::Float(1.5));
    }

    #[test]
    fn saturating_int_overflow() {
        assert_eq!(
            Value::Int(i64::MAX).add(&Value::Int(1)),
            Value::Int(i64::MAX)
        );
        assert_eq!(Value::Int(i64::MIN).neg(), Value::Int(i64::MAX));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert!(Value::Int(1).is_truthy());
        assert!(Value::Float(-0.5).is_truthy());
        assert!(!Value::Str("".into()).is_truthy());
        assert!(Value::Str("x".into()).is_truthy());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("o'k".into()).to_string(), "'o''k'");
    }

    #[test]
    fn group_keys_fold_negative_zero() {
        assert_eq!(
            Value::Float(0.0).group_key(),
            Value::Float(-0.0).group_key()
        );
        assert_ne!(Value::Int(0).group_key(), Value::Float(0.0).group_key());
    }

    #[test]
    fn total_cmp_orders_nulls_first() {
        let mut vs = [
            Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(1.5),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Float(1.5));
        assert_eq!(vs[2], Value::Int(3));
        assert_eq!(vs[3], Value::Str("a".into()));
    }

    proptest! {
        #[test]
        fn add_commutes(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            prop_assert_eq!(Value::Int(a).add(&Value::Int(b)), Value::Int(b).add(&Value::Int(a)));
        }

        #[test]
        fn cmp_antisymmetric(a in any::<f64>(), b in any::<f64>()) {
            prop_assume!(a.is_finite() && b.is_finite());
            let x = Value::Float(a);
            let y = Value::Float(b);
            let fwd = x.sql_cmp(&y);
            let rev = y.sql_cmp(&x);
            prop_assert_eq!(fwd.map(Ordering::reverse), rev);
        }

        #[test]
        fn total_cmp_is_total(a in any::<i64>(), b in any::<f64>()) {
            prop_assume!(!b.is_nan());
            // Never panics, always yields an ordering consistent both ways.
            let x = Value::Int(a);
            let y = Value::Float(b);
            prop_assert_eq!(x.total_cmp(&y), y.total_cmp(&x).reverse());
        }
    }
}
