//! Expression evaluation over row bindings.
//!
//! A [`Bindings`] maps FROM-list binding names (table names or aliases) to
//! a current row in a table; [`eval`] computes an expression against it
//! with SQL three-valued logic. Aggregates never reach this layer — the
//! executor unwraps them and evaluates only their argument expressions
//! here.

use crate::functions;
use crate::table::Table;
use crate::value::Value;
use qserv_sqlparse::ast::{BinaryOp, Expr, Literal, UnaryOp};
use std::fmt;

/// Errors from expression evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Column not found in any binding.
    UnknownColumn(String),
    /// Unqualified column name matches more than one binding.
    AmbiguousColumn(String),
    /// Qualifier does not name a bound table.
    UnknownBinding(String),
    /// A scalar function failed.
    Function(String),
    /// `*` used outside COUNT(*)/projection position.
    MisplacedStar,
    /// An aggregate call reached scalar evaluation.
    MisplacedAggregate(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            EvalError::AmbiguousColumn(c) => write!(f, "ambiguous column {c}"),
            EvalError::UnknownBinding(b) => write!(f, "unknown table or alias {b}"),
            EvalError::Function(m) => write!(f, "function error: {m}"),
            EvalError::MisplacedStar => write!(f, "'*' is only valid in COUNT(*) or SELECT *"),
            EvalError::MisplacedAggregate(a) => {
                write!(f, "aggregate {a} not valid in this context")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// True when `name` is one of the aggregate functions the executor
/// implements (paper §5.3 rewrites exactly these for distributed
/// execution).
pub fn is_aggregate(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "count" | "sum" | "avg" | "min" | "max"
    )
}

/// The current row of each FROM-list binding.
pub struct Bindings<'a> {
    entries: Vec<(&'a str, &'a Table, usize)>,
}

impl<'a> Bindings<'a> {
    /// Creates bindings over `(name, table, row)` triples. Join executors
    /// update rows via [`Bindings::set_row`].
    pub fn new(entries: Vec<(&'a str, &'a Table, usize)>) -> Bindings<'a> {
        Bindings { entries }
    }

    /// Single-table convenience.
    pub fn single(name: &'a str, table: &'a Table, row: usize) -> Bindings<'a> {
        Bindings {
            entries: vec![(name, table, row)],
        }
    }

    /// Moves binding `i` to a different row.
    pub fn set_row(&mut self, i: usize, row: usize) {
        self.entries[i].2 = row;
    }

    /// Resolves a column reference to a value.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value, EvalError> {
        match qualifier {
            Some(q) => {
                let (_, table, row) = self
                    .entries
                    .iter()
                    .find(|(b, _, _)| *b == q)
                    .ok_or_else(|| EvalError::UnknownBinding(q.to_string()))?;
                table
                    .get_by_name(*row, name)
                    .ok_or_else(|| EvalError::UnknownColumn(format!("{q}.{name}")))
            }
            None => {
                let mut found: Option<Value> = None;
                for (_, table, row) in &self.entries {
                    if let Some(v) = table.get_by_name(*row, name) {
                        if found.is_some() {
                            return Err(EvalError::AmbiguousColumn(name.to_string()));
                        }
                        found = Some(v);
                    }
                }
                found.ok_or_else(|| EvalError::UnknownColumn(name.to_string()))
            }
        }
    }
}

/// Kleene three-valued logic encoded as `Value`: 1, 0 or NULL.
pub(crate) fn tv(b: Option<bool>) -> Value {
    match b {
        Some(true) => Value::Int(1),
        Some(false) => Value::Int(0),
        None => Value::Null,
    }
}

/// The three-valued truth of a value: NULL → unknown.
pub(crate) fn truth(v: &Value) -> Option<bool> {
    if v.is_null() {
        None
    } else {
        Some(v.is_truthy())
    }
}

/// Evaluates `expr` against `bindings`.
pub fn eval(expr: &Expr, bindings: &Bindings<'_>) -> Result<Value, EvalError> {
    match expr {
        Expr::Literal(l) => Ok(match l {
            Literal::Int(v) => Value::Int(*v),
            Literal::Float(v) => Value::Float(*v),
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Null => Value::Null,
        }),
        Expr::Column {
            qualifier, name, ..
        } => bindings.resolve(qualifier.as_deref(), name),
        Expr::Star => Err(EvalError::MisplacedStar),
        Expr::Unary { op, expr } => {
            let v = eval(expr, bindings)?;
            Ok(match op {
                UnaryOp::Neg => v.neg(),
                UnaryOp::Not => tv(truth(&v).map(|b| !b)),
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            match op {
                // Kleene AND/OR can short-circuit on a determining side.
                BinaryOp::And => {
                    let l = truth(&eval(lhs, bindings)?);
                    if l == Some(false) {
                        return Ok(Value::Int(0));
                    }
                    let r = truth(&eval(rhs, bindings)?);
                    Ok(tv(match (l, r) {
                        (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    }))
                }
                BinaryOp::Or => {
                    let l = truth(&eval(lhs, bindings)?);
                    if l == Some(true) {
                        return Ok(Value::Int(1));
                    }
                    let r = truth(&eval(rhs, bindings)?);
                    Ok(tv(match (l, r) {
                        (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    }))
                }
                _ => {
                    let l = eval(lhs, bindings)?;
                    let r = eval(rhs, bindings)?;
                    Ok(match op {
                        BinaryOp::Add => l.add(&r),
                        BinaryOp::Sub => l.sub(&r),
                        BinaryOp::Mul => l.mul(&r),
                        BinaryOp::Div => l.div(&r),
                        BinaryOp::Mod => l.rem(&r),
                        BinaryOp::Eq => tv(l.sql_eq(&r)),
                        BinaryOp::NotEq => tv(l.sql_eq(&r).map(|b| !b)),
                        BinaryOp::Lt => tv(l.sql_cmp(&r).map(|o| o.is_lt())),
                        BinaryOp::LtEq => tv(l.sql_cmp(&r).map(|o| o.is_le())),
                        BinaryOp::Gt => tv(l.sql_cmp(&r).map(|o| o.is_gt())),
                        BinaryOp::GtEq => tv(l.sql_cmp(&r).map(|o| o.is_ge())),
                        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
                    })
                }
            }
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval(expr, bindings)?;
            let lo = eval(low, bindings)?;
            let hi = eval(high, bindings)?;
            let inside = match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => Some(a.is_ge() && b.is_le()),
                _ => None,
            };
            Ok(tv(if *negated { inside.map(|b| !b) } else { inside }))
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval(expr, bindings)?;
            let mut saw_null = false;
            let mut found = false;
            for item in list {
                let it = eval(item, bindings)?;
                match v.sql_eq(&it) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            let r = if found {
                Some(true)
            } else if saw_null || v.is_null() {
                None
            } else {
                Some(false)
            };
            Ok(tv(if *negated { r.map(|b| !b) } else { r }))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, bindings)?;
            Ok(tv(Some(v.is_null() != *negated)))
        }
        Expr::Function { name, args } => {
            if is_aggregate(name) {
                return Err(EvalError::MisplacedAggregate(name.clone()));
            }
            let vals: Result<Vec<Value>, EvalError> =
                args.iter().map(|a| eval(a, bindings)).collect();
            functions::call(name, &vals?).map_err(|e| EvalError::Function(e.to_string()))
        }
    }
}

/// Evaluates a WHERE predicate: the row passes only when the result is
/// definitely true (NULL filters the row out, per SQL).
pub fn eval_predicate(expr: &Expr, bindings: &Bindings<'_>) -> Result<bool, EvalError> {
    Ok(truth(&eval(expr, bindings)?) == Some(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, Schema};
    use qserv_sqlparse::parse_select;

    fn table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra_PS", ColumnType::Float),
            ColumnDef::new("zFlux_PS", ColumnType::Float),
        ]));
        t.push_row(vec![Value::Int(7), Value::Float(10.0), Value::Float(100.0)])
            .unwrap();
        t.push_row(vec![Value::Int(8), Value::Float(20.0), Value::Null])
            .unwrap();
        t
    }

    /// Parses `SELECT <expr> FROM T` and returns the expression.
    fn expr(s: &str) -> Expr {
        parse_select(&format!("SELECT {s} FROM T"))
            .unwrap()
            .projections
            .remove(0)
            .expr
    }

    fn eval_row(s: &str, row: usize) -> Result<Value, EvalError> {
        let t = table();
        let b = Bindings::single("T", &t, row);
        eval(&expr(s), &b)
    }

    #[test]
    fn column_resolution() {
        assert_eq!(eval_row("objectId", 0).unwrap(), Value::Int(7));
        assert_eq!(eval_row("T.ra_PS", 1).unwrap(), Value::Float(20.0));
        assert!(matches!(
            eval_row("nope", 0),
            Err(EvalError::UnknownColumn(_))
        ));
        assert!(matches!(
            eval_row("U.ra_PS", 0),
            Err(EvalError::UnknownBinding(_))
        ));
    }

    #[test]
    fn ambiguous_column_in_self_join() {
        let t = table();
        let b = Bindings::new(vec![("o1", &t, 0), ("o2", &t, 1)]);
        assert!(matches!(
            eval(&expr("objectId"), &b),
            Err(EvalError::AmbiguousColumn(_))
        ));
        assert_eq!(eval(&expr("o2.objectId"), &b).unwrap(), Value::Int(8));
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval_row("1 + 2 * 3", 0).unwrap(), Value::Int(7));
        assert_eq!(eval_row("ra_PS / 4", 0).unwrap(), Value::Float(2.5));
        assert_eq!(eval_row("objectId = 7", 0).unwrap(), Value::Int(1));
        assert_eq!(eval_row("objectId != 7", 0).unwrap(), Value::Int(0));
        assert_eq!(eval_row("ra_PS >= 10", 0).unwrap(), Value::Int(1));
    }

    #[test]
    fn null_comparisons_are_null() {
        assert_eq!(eval_row("zFlux_PS > 0", 1).unwrap(), Value::Null);
        assert_eq!(eval_row("zFlux_PS = NULL", 0).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_and_or() {
        // NULL AND false = false; NULL AND true = NULL.
        assert_eq!(
            eval_row("zFlux_PS > 0 AND 1 = 2", 1).unwrap(),
            Value::Int(0)
        );
        assert_eq!(eval_row("zFlux_PS > 0 AND 1 = 1", 1).unwrap(), Value::Null);
        // NULL OR true = true; NULL OR false = NULL.
        assert_eq!(eval_row("zFlux_PS > 0 OR 1 = 1", 1).unwrap(), Value::Int(1));
        assert_eq!(eval_row("zFlux_PS > 0 OR 1 = 2", 1).unwrap(), Value::Null);
        // NOT NULL = NULL.
        assert_eq!(eval_row("NOT zFlux_PS > 0", 1).unwrap(), Value::Null);
    }

    #[test]
    fn between_and_in() {
        assert_eq!(
            eval_row("ra_PS BETWEEN 5 AND 15", 0).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_row("ra_PS NOT BETWEEN 5 AND 15", 0).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval_row("zFlux_PS BETWEEN 0 AND 1", 1).unwrap(),
            Value::Null
        );
        assert_eq!(eval_row("objectId IN (1, 7, 9)", 0).unwrap(), Value::Int(1));
        assert_eq!(eval_row("objectId IN (1, 2)", 0).unwrap(), Value::Int(0));
        // x IN (..., NULL) with no match is NULL, not false.
        assert_eq!(eval_row("objectId IN (1, NULL)", 0).unwrap(), Value::Null);
        assert_eq!(
            eval_row("objectId NOT IN (1, 2)", 0).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn is_null() {
        assert_eq!(eval_row("zFlux_PS IS NULL", 1).unwrap(), Value::Int(1));
        assert_eq!(eval_row("zFlux_PS IS NOT NULL", 1).unwrap(), Value::Int(0));
        assert_eq!(eval_row("zFlux_PS IS NULL", 0).unwrap(), Value::Int(0));
    }

    #[test]
    fn scalar_functions_dispatch() {
        let m = eval_row("fluxToAbMag(zFlux_PS)", 0).unwrap();
        assert!((m.as_f64().unwrap() - (31.4 - 2.5 * 2.0)).abs() < 1e-12);
        // NULL flux -> NULL magnitude.
        assert_eq!(eval_row("fluxToAbMag(zFlux_PS)", 1).unwrap(), Value::Null);
    }

    #[test]
    fn aggregates_rejected_here() {
        assert!(matches!(
            eval_row("SUM(ra_PS)", 0),
            Err(EvalError::MisplacedAggregate(_))
        ));
    }

    #[test]
    fn star_rejected_here() {
        let t = table();
        let b = Bindings::single("T", &t, 0);
        assert!(matches!(
            eval(&Expr::Star, &b),
            Err(EvalError::MisplacedStar)
        ));
    }

    #[test]
    fn predicate_semantics_null_is_false() {
        let t = table();
        let b = Bindings::single("T", &t, 1);
        assert!(!eval_predicate(&expr("zFlux_PS > 0"), &b).unwrap());
        assert!(eval_predicate(&expr("objectId = 8"), &b).unwrap());
    }

    #[test]
    fn unary_negation() {
        assert_eq!(eval_row("-objectId", 0).unwrap(), Value::Int(-7));
        assert_eq!(eval_row("-(ra_PS)", 0).unwrap(), Value::Float(-10.0));
        assert!(eval_row("-zFlux_PS", 1).unwrap().is_null());
    }
}
