//! A named collection of tables — one `Database` per worker MySQL instance
//! in the original system.
//!
//! Chunk tables are named `Object_CC` and subchunk tables `Object_CC_SS`
//! (paper §5.2). Subchunk tables are *generated on demand* from chunk
//! tables for spatial-join queries and may be dropped afterwards (§5.4
//! "Chunk Query Representation"); [`Database::create_table`] /
//! [`Database::drop_table`] support that lifecycle.

use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named table catalog.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Registers `table` under `name`, replacing any previous table of that
    /// name (matching `CREATE OR REPLACE` semantics, which is what subchunk
    /// regeneration wants).
    pub fn create_table(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), Arc::new(table));
    }

    /// Registers an already-shared table.
    pub fn create_table_shared(&mut self, name: &str, table: Arc<Table>) {
        self.tables.insert(name.to_string(), table);
    }

    /// Removes a table; true when it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// True when `name` exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total estimated footprint of all tables in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.footprint_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, Schema};
    use crate::value::Value;

    fn tiny() -> Table {
        let mut t = Table::new(Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]));
        t.push_row(vec![Value::Int(1)]).unwrap();
        t
    }

    #[test]
    fn create_lookup_drop() {
        let mut db = Database::new();
        assert!(!db.has_table("Object_123"));
        db.create_table("Object_123", tiny());
        assert!(db.has_table("Object_123"));
        assert_eq!(db.table("Object_123").unwrap().num_rows(), 1);
        assert!(db.drop_table("Object_123"));
        assert!(!db.drop_table("Object_123"));
    }

    #[test]
    fn create_replaces() {
        let mut db = Database::new();
        db.create_table("T", tiny());
        let mut bigger = tiny();
        bigger.push_row(vec![Value::Int(2)]).unwrap();
        db.create_table("T", bigger);
        assert_eq!(db.table("T").unwrap().num_rows(), 2);
    }

    #[test]
    fn names_sorted_and_footprint() {
        let mut db = Database::new();
        db.create_table("b", tiny());
        db.create_table("a", tiny());
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert_eq!(db.footprint_bytes(), 16);
    }
}
