//! A named collection of tables — one `Database` per worker MySQL instance
//! in the original system.
//!
//! Chunk tables are named `Object_CC` and subchunk tables `Object_CC_SS`
//! (paper §5.2). Subchunk tables are *generated on demand* from chunk
//! tables for spatial-join queries and may be dropped afterwards (§5.4
//! "Chunk Query Representation"); [`Database::create_table`] /
//! [`Database::drop_table`] support that lifecycle.
//!
//! A table may alternatively be *attached* from a persistent chunk file
//! ([`Database::attach_stored`]): only the file footer and an empty
//! shape table are held in memory, scans stream pages off disk with
//! zone-map elision, and full materialization (for the interpreter,
//! joins and subchunk generation) goes through a shared LRU
//! [`Residency`] budget — the worker's lazy chunk residency.

use crate::storage::{Residency, StoredChunk};
use crate::table::Table;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A named table catalog.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
    stored: BTreeMap<String, Arc<StoredChunk>>,
    residency: Arc<Residency>,
    prune_pages: bool,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database {
            tables: BTreeMap::new(),
            stored: BTreeMap::new(),
            residency: Arc::new(Residency::default()),
            prune_pages: true,
        }
    }

    /// Registers `table` under `name`, replacing any previous table of that
    /// name (matching `CREATE OR REPLACE` semantics, which is what subchunk
    /// regeneration wants).
    pub fn create_table(&mut self, name: &str, table: Table) {
        self.stored.remove(name);
        self.tables.insert(name.to_string(), Arc::new(table));
    }

    /// Registers an already-shared table.
    pub fn create_table_shared(&mut self, name: &str, table: Arc<Table>) {
        self.stored.remove(name);
        self.tables.insert(name.to_string(), table);
    }

    /// Attaches a persistent chunk file as table `name`; only its footer
    /// is read here. Replaces any previous table of that name.
    pub fn attach_stored(&mut self, name: &str, path: &Path) -> io::Result<()> {
        let chunk = StoredChunk::open(path)?;
        self.tables.remove(name);
        self.stored.insert(name.to_string(), Arc::new(chunk));
        Ok(())
    }

    /// Removes a table; true when it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some() | self.stored.remove(name).is_some()
    }

    /// Detaches a stored chunk table without touching in-memory tables;
    /// true when `name` was stored. The backing `.qchunk` file is left on
    /// disk (other replicas may still attach it); any resident pages are
    /// released with the [`StoredChunk`] handle.
    pub fn detach_stored(&mut self, name: &str) -> bool {
        self.stored.remove(name).is_some()
    }

    /// The on-disk path behind a stored table, `None` for in-memory or
    /// unknown names. Rebalancing ships these bytes between workers.
    pub fn stored_path(&self, name: &str) -> Option<std::path::PathBuf> {
        self.stored.get(name).map(|c| c.file().path().to_path_buf())
    }

    /// Looks up an in-memory table (`None` for stored-only tables; see
    /// [`Database::stored`]).
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Looks up a stored (on-disk) table.
    pub fn stored(&self, name: &str) -> Option<&Arc<StoredChunk>> {
        self.stored.get(name)
    }

    /// True when `name` exists, in memory or on disk.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name) || self.stored.contains_key(name)
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .tables
            .keys()
            .chain(self.stored.keys())
            .map(|s| s.as_str())
            .collect();
        names.sort_unstable();
        names
    }

    /// The residency cache shared by every clone of this database.
    pub fn residency(&self) -> &Arc<Residency> {
        &self.residency
    }

    /// Replaces the residency cache (e.g. with a differently-budgeted
    /// one shared across databases).
    pub fn set_residency(&mut self, residency: Arc<Residency>) {
        self.residency = residency;
    }

    /// Whether cold scans elide pages via zone maps (on by default; the
    /// bench turns it off to measure the win).
    pub fn page_pruning(&self) -> bool {
        self.prune_pages
    }

    /// Enables or disables zone-map page elision on cold scans.
    pub fn set_page_pruning(&mut self, on: bool) {
        self.prune_pages = on;
    }

    /// Materializes table `name` through the residency cache when it is
    /// stored; in-memory tables return their `Arc` directly.
    pub fn materialize(&self, name: &str) -> io::Result<Option<Arc<Table>>> {
        if let Some(t) = self.tables.get(name) {
            return Ok(Some(t.clone()));
        }
        match self.stored.get(name) {
            Some(chunk) => chunk.resident(&self.residency).map(Some),
            None => Ok(None),
        }
    }

    /// Total estimated footprint of all in-memory tables in bytes
    /// (stored chunks count only while resident, via [`Residency`]).
    pub fn footprint_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.footprint_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, Schema};
    use crate::value::Value;

    fn tiny() -> Table {
        let mut t = Table::new(Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]));
        t.push_row(vec![Value::Int(1)]).unwrap();
        t
    }

    #[test]
    fn create_lookup_drop() {
        let mut db = Database::new();
        assert!(!db.has_table("Object_123"));
        db.create_table("Object_123", tiny());
        assert!(db.has_table("Object_123"));
        assert_eq!(db.table("Object_123").unwrap().num_rows(), 1);
        assert!(db.drop_table("Object_123"));
        assert!(!db.drop_table("Object_123"));
    }

    #[test]
    fn create_replaces() {
        let mut db = Database::new();
        db.create_table("T", tiny());
        let mut bigger = tiny();
        bigger.push_row(vec![Value::Int(2)]).unwrap();
        db.create_table("T", bigger);
        assert_eq!(db.table("T").unwrap().num_rows(), 2);
    }

    #[test]
    fn names_sorted_and_footprint() {
        let mut db = Database::new();
        db.create_table("b", tiny());
        db.create_table("a", tiny());
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert_eq!(db.footprint_bytes(), 16);
    }
}
