//! Columnar table storage with an optional integer primary index.
//!
//! Tables are append-only (Qserv is a read-optimized catalog store;
//! "Support for updates has not been implemented", paper §5). Storage is
//! column-major: one dense vector per column plus a null mask, which gives
//! full-scan queries the sequential access pattern the paper's design
//! assumes (§4.3 "Shared scanning" — scans, not seeks, are the norm).
//!
//! A table may carry one index on one integer column — in Qserv that is
//! always `objectId` (paper §5.5: "Chunk tables on workers' MySQL instances
//! are also indexed by objectId").

use crate::schema::{ColumnType, Schema};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors from table construction and row insertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// Row arity does not match the schema.
    WrongArity {
        /// Columns expected.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value does not fit its column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Description of the offending value.
        value: String,
    },
    /// The requested index column does not exist or is not an integer.
    BadIndexColumn(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::WrongArity { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            TableError::TypeMismatch { column, value } => {
                write!(f, "value {value} does not fit column {column}")
            }
            TableError::BadIndexColumn(c) => {
                write!(f, "cannot index column {c}: missing or not integer")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// One column's data.
#[derive(Clone, Debug)]
pub(crate) enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
}

/// A borrowed view of one column's dense storage. Null slots hold the
/// column default (0 / 0.0 / ""); callers must consult
/// [`Table::null_mask`] before trusting a slot.
#[derive(Clone, Copy, Debug)]
pub enum ColumnSlice<'a> {
    /// Integer column.
    Int(&'a [i64]),
    /// Float column.
    Float(&'a [f64]),
    /// String column.
    Str(&'a [String]),
}

impl ColumnData {
    fn new(ty: ColumnType) -> ColumnData {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
        }
    }

    fn push_default(&mut self) {
        match self {
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Str(v) => v.push(String::new()),
        }
    }
}

/// A columnar table.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
    nulls: Vec<Vec<bool>>,
    rows: usize,
    /// `(column index, value → row ids)` for the indexed column.
    index: Option<(usize, BTreeMap<i64, Vec<u32>>)>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new(c.ty))
            .collect();
        let nulls = schema.columns().iter().map(|_| Vec::new()).collect();
        Table {
            schema,
            columns,
            nulls,
            rows: 0,
            index: None,
        }
    }

    /// Assembles a table directly from dense column vectors — the chunk
    /// decoder's constructor ([`crate::storage`]). Null slots must already
    /// hold the column defaults (0 / 0.0 / ""), exactly as [`Table::push_row`]
    /// leaves them, so a decode round-trips bit-identically.
    ///
    /// # Panics
    /// Panics when column counts or lengths disagree with the schema.
    pub(crate) fn from_dense(
        schema: Schema,
        columns: Vec<ColumnData>,
        nulls: Vec<Vec<bool>>,
        rows: usize,
    ) -> Table {
        assert_eq!(columns.len(), schema.len(), "column count mismatch");
        assert_eq!(nulls.len(), schema.len(), "null-mask count mismatch");
        for (i, c) in columns.iter().enumerate() {
            let len = match c {
                ColumnData::Int(v) => v.len(),
                ColumnData::Float(v) => v.len(),
                ColumnData::Str(v) => v.len(),
            };
            assert_eq!(len, rows, "column {i} length mismatch");
            assert_eq!(nulls[i].len(), rows, "null mask {i} length mismatch");
        }
        Table {
            schema,
            columns,
            nulls,
            rows,
            index: None,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Estimated on-disk footprint in bytes: schema row width × rows, the
    /// accounting the paper's Table 1 uses plus exact string lengths.
    pub fn footprint_bytes(&self) -> u64 {
        let mut fixed = 0u64;
        let mut var = 0u64;
        for (i, c) in self.schema.columns().iter().enumerate() {
            match c.ty {
                ColumnType::Str => {
                    if let ColumnData::Str(v) = &self.columns[i] {
                        var += v.iter().map(|s| s.len() as u64).sum::<u64>();
                    }
                }
                _ => fixed += c.ty.fixed_width() as u64,
            }
        }
        fixed * self.rows as u64 + var
    }

    /// Appends a row. Integer values widen to float columns; anything else
    /// mismatched is an error.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), TableError> {
        if row.len() != self.schema.len() {
            return Err(TableError::WrongArity {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        // Validate before mutating so a failed push leaves no partial row.
        for (i, v) in row.iter().enumerate() {
            let def = &self.schema.columns()[i];
            if !def.ty.admits(v) {
                return Err(TableError::TypeMismatch {
                    column: def.name.clone(),
                    value: v.to_string(),
                });
            }
        }
        let row_id = self.rows as u32;
        for (i, v) in row.into_iter().enumerate() {
            match v {
                Value::Null => {
                    self.columns[i].push_default();
                    self.nulls[i].push(true);
                }
                Value::Int(x) => {
                    match &mut self.columns[i] {
                        ColumnData::Int(col) => col.push(x),
                        ColumnData::Float(col) => col.push(x as f64),
                        ColumnData::Str(_) => unreachable!("validated above"),
                    }
                    self.nulls[i].push(false);
                    if let Some((idx_col, map)) = &mut self.index {
                        if *idx_col == i {
                            map.entry(x).or_default().push(row_id);
                        }
                    }
                }
                Value::Float(x) => {
                    match &mut self.columns[i] {
                        ColumnData::Float(col) => col.push(x),
                        _ => unreachable!("validated above"),
                    }
                    self.nulls[i].push(false);
                }
                Value::Str(s) => {
                    match &mut self.columns[i] {
                        ColumnData::Str(col) => col.push(s),
                        _ => unreachable!("validated above"),
                    }
                    self.nulls[i].push(false);
                }
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Reads one cell.
    ///
    /// # Panics
    /// Panics when `row` or `col` is out of bounds (internal invariant;
    /// executor row ids always come from this table).
    pub fn get(&self, row: usize, col: usize) -> Value {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        if self.nulls[col][row] {
            return Value::Null;
        }
        match &self.columns[col] {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
        }
    }

    /// Borrows column `col`'s dense storage for vectorized kernels.
    ///
    /// # Panics
    /// Panics when `col` is out of bounds.
    pub fn column_slice(&self, col: usize) -> ColumnSlice<'_> {
        match &self.columns[col] {
            ColumnData::Int(v) => ColumnSlice::Int(v),
            ColumnData::Float(v) => ColumnSlice::Float(v),
            ColumnData::Str(v) => ColumnSlice::Str(v),
        }
    }

    /// Borrows column `col`'s null mask (`true` = NULL).
    ///
    /// # Panics
    /// Panics when `col` is out of bounds.
    pub fn null_mask(&self, col: usize) -> &[bool] {
        &self.nulls[col]
    }

    /// Reads one cell by column name; `None` for an unknown column.
    pub fn get_by_name(&self, row: usize, name: &str) -> Option<Value> {
        self.schema.index_of(name).map(|c| self.get(row, c))
    }

    /// Materializes one full row.
    pub fn row(&self, row: usize) -> Vec<Value> {
        (0..self.schema.len()).map(|c| self.get(row, c)).collect()
    }

    /// Builds (or rebuilds) the index on integer column `name`. In Qserv
    /// this is invoked for `objectId` on every chunk table.
    pub fn build_index(&mut self, name: &str) -> Result<(), TableError> {
        let col = self
            .schema
            .index_of(name)
            .ok_or_else(|| TableError::BadIndexColumn(name.to_string()))?;
        let data = match &self.columns[col] {
            ColumnData::Int(v) => v,
            _ => return Err(TableError::BadIndexColumn(name.to_string())),
        };
        let mut map: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (row, (&v, &is_null)) in data.iter().zip(&self.nulls[col]).enumerate() {
            if !is_null {
                map.entry(v).or_default().push(row as u32);
            }
        }
        self.index = Some((col, map));
        Ok(())
    }

    /// The name of the indexed column, when an index exists.
    pub fn indexed_column(&self) -> Option<&str> {
        self.index
            .as_ref()
            .map(|(c, _)| self.schema.columns()[*c].name.as_str())
    }

    /// Row ids whose indexed column equals `key` (empty when no index or no
    /// match). The executor consults [`Table::indexed_column`] first.
    pub fn index_lookup(&self, key: i64) -> &[u32] {
        match &self.index {
            Some((_, map)) => map.get(&key).map(|v| v.as_slice()).unwrap_or(&[]),
            None => &[],
        }
    }

    /// An `Arc`'d empty clone of this table's shape (schema + index
    /// definition, no rows) — used when deriving subchunk tables.
    pub fn empty_like(&self) -> Table {
        let mut t = Table::new(self.schema.clone());
        if let Some((c, _)) = &self.index {
            t.index = Some((*c, BTreeMap::new()));
        }
        t
    }

    /// Filters rows into a new table of the same shape.
    pub fn filter_rows(&self, keep: impl Fn(usize) -> bool) -> Table {
        let mut out = self.empty_like();
        for r in 0..self.rows {
            if keep(r) {
                out.push_row(self.row(r)).expect("same schema always fits");
            }
        }
        out
    }

    /// Wraps into `Arc` for sharing with executors.
    pub fn into_shared(self) -> Arc<Table> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn obj_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("objectId", ColumnType::Int),
            ColumnDef::new("ra_PS", ColumnType::Float),
            ColumnDef::new("name", ColumnType::Str),
        ])
    }

    fn sample() -> Table {
        let mut t = Table::new(obj_schema());
        t.push_row(vec![
            Value::Int(1),
            Value::Float(10.5),
            Value::Str("a".into()),
        ])
        .unwrap();
        t.push_row(vec![Value::Int(2), Value::Null, Value::Str("b".into())])
            .unwrap();
        t.push_row(vec![
            Value::Int(1),
            Value::Float(11.0),
            Value::Str("c".into()),
        ])
        .unwrap();
        t
    }

    #[test]
    fn push_and_get() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.get(0, 0), Value::Int(1));
        assert_eq!(t.get(1, 1), Value::Null);
        assert_eq!(t.get(2, 2), Value::Str("c".into()));
        assert_eq!(t.get_by_name(0, "ra_PS"), Some(Value::Float(10.5)));
        assert_eq!(t.get_by_name(0, "missing"), None);
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = Table::new(obj_schema());
        t.push_row(vec![Value::Int(1), Value::Int(7), Value::Str("".into())])
            .unwrap();
        assert_eq!(t.get(0, 1), Value::Float(7.0));
    }

    #[test]
    fn arity_and_type_checked() {
        let mut t = Table::new(obj_schema());
        assert!(matches!(
            t.push_row(vec![Value::Int(1)]),
            Err(TableError::WrongArity { .. })
        ));
        assert!(matches!(
            t.push_row(vec![
                Value::Str("x".into()),
                Value::Float(0.0),
                Value::Str("".into())
            ]),
            Err(TableError::TypeMismatch { .. })
        ));
        // Failed pushes leave the table unchanged.
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn index_lookup_finds_all_rows() {
        let mut t = sample();
        t.build_index("objectId").unwrap();
        assert_eq!(t.indexed_column(), Some("objectId"));
        assert_eq!(t.index_lookup(1), &[0, 2]);
        assert_eq!(t.index_lookup(2), &[1]);
        assert!(t.index_lookup(99).is_empty());
    }

    #[test]
    fn index_maintained_on_push() {
        let mut t = sample();
        t.build_index("objectId").unwrap();
        t.push_row(vec![Value::Int(2), Value::Null, Value::Str("d".into())])
            .unwrap();
        assert_eq!(t.index_lookup(2), &[1, 3]);
    }

    #[test]
    fn index_skips_nulls() {
        let mut t = Table::new(obj_schema());
        t.push_row(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        t.build_index("objectId").unwrap();
        assert!(t.index_lookup(0).is_empty());
    }

    #[test]
    fn bad_index_column_rejected() {
        let mut t = sample();
        assert!(t.build_index("ra_PS").is_err());
        assert!(t.build_index("nope").is_err());
    }

    #[test]
    fn footprint_accounting() {
        let t = sample();
        // 2 fixed 8-byte columns x 3 rows + 3 single-char strings.
        assert_eq!(t.footprint_bytes(), 16 * 3 + 3);
    }

    #[test]
    fn filter_rows_keeps_shape() {
        let mut t = sample();
        t.build_index("objectId").unwrap();
        let f = t.filter_rows(|r| r != 1);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.get(1, 2), Value::Str("c".into()));
        // Index definition carried over and rebuilt incrementally.
        assert_eq!(f.index_lookup(1), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(99, 0);
    }
}
