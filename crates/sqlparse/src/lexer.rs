//! SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets for error reporting.
//! Keywords are recognized case-insensitively but identifiers preserve
//! their original spelling (LSST column names like `ra_PS` are
//! case-sensitive in practice). Backtick-quoted identifiers are supported
//! because Qserv's aggregate rewriting produces names like
//! `` `SUM(uFlux_SG)` `` (paper §5.3 example).

use std::fmt;

/// A lexical error with its byte offset in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// The kind of a token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or keyword (`Object`, `SELECT`, `ra_PS`).
    Ident(String),
    /// Backtick-quoted identifier (contents, unquoted).
    QuotedIdent(String),
    /// Numeric literal (kept as text; parsed on demand).
    Number(String),
    /// Single-quoted string literal (contents, unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl TokenKind {
    /// True when this is the keyword `kw` (case-insensitive). Only unquoted
    /// identifiers can be keywords.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// A token plus its source location.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and text.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Tokenizes `input`, skipping whitespace and `--` line comments.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment (used for the SUBCHUNKS header, paper §5.4).
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: i,
                });
                i += 1;
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: i,
                });
                i += 1;
            }
            b'/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: i,
                });
                i += 1;
            }
            b'%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    offset: i,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: i,
                });
                i += 1;
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "unexpected '!' (did you mean '!=' ?)".into(),
                    });
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        offset: i,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'.' => {
                // Could be a qualified-name dot or the start of `.5`.
                if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    let (num, next) = lex_number(bytes, i);
                    tokens.push(Token {
                        kind: TokenKind::Number(num),
                        offset: i,
                    });
                    i = next;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let (num, next) = lex_number(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Number(num),
                    offset: i,
                });
                i = next;
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        // '' is an escaped quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            b'`' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated quoted identifier".into(),
                        });
                    }
                    if bytes[i] == b'`' {
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(s),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let word = std::str::from_utf8(&bytes[start..i])
                    .expect("ASCII slice is valid UTF-8")
                    .to_string();
                tokens.push(Token {
                    kind: TokenKind::Ident(word),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {:?}", other as char),
                });
            }
        }
    }
    Ok(tokens)
}

/// Lexes a numeric literal starting at `start`: digits, optional fraction,
/// optional exponent. Returns the text and the index after it.
fn lex_number(bytes: &[u8], start: usize) -> (String, usize) {
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    (
        std::str::from_utf8(&bytes[start..i])
            .expect("ASCII slice is valid UTF-8")
            .to_string(),
        i,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let ks = kinds("SELECT * FROM Object WHERE objectId = 42;");
        assert_eq!(ks.len(), 9);
        assert!(ks[0].is_kw("select"));
        assert_eq!(ks[1], TokenKind::Star);
        assert!(ks[2].is_kw("FROM"));
        assert_eq!(ks[3], TokenKind::Ident("Object".into()));
        assert_eq!(ks[6], TokenKind::Eq);
        assert_eq!(ks[7], TokenKind::Number("42".into()));
        assert_eq!(ks[8], TokenKind::Semicolon);
    }

    #[test]
    fn numbers_with_fraction_and_exponent() {
        assert_eq!(kinds("21.5"), vec![TokenKind::Number("21.5".into())]);
        assert_eq!(kinds(".04"), vec![TokenKind::Number(".04".into())]);
        assert_eq!(kinds("1e9"), vec![TokenKind::Number("1e9".into())]);
        assert_eq!(kinds("2.5E-3"), vec![TokenKind::Number("2.5E-3".into())]);
    }

    #[test]
    fn negative_number_is_minus_then_number() {
        let ks = kinds("-5");
        assert_eq!(ks, vec![TokenKind::Minus, TokenKind::Number("5".into())]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(kinds("<"), vec![TokenKind::Lt]);
        assert_eq!(kinds("<="), vec![TokenKind::LtEq]);
        assert_eq!(kinds(">"), vec![TokenKind::Gt]);
        assert_eq!(kinds(">="), vec![TokenKind::GtEq]);
        assert_eq!(kinds("!="), vec![TokenKind::NotEq]);
        assert_eq!(kinds("<>"), vec![TokenKind::NotEq]);
    }

    #[test]
    fn qualified_names_and_dots() {
        let ks = kinds("o1.ra_PS");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("o1".into()),
                TokenKind::Dot,
                TokenKind::Ident("ra_PS".into()),
            ]
        );
    }

    #[test]
    fn backtick_quoted_identifier() {
        let ks = kinds("SUM(`COUNT(uFlux_SG)`)");
        assert_eq!(ks[2], TokenKind::QuotedIdent("COUNT(uFlux_SG)".into()));
    }

    #[test]
    fn string_literals_with_escape() {
        assert_eq!(kinds("'abc'"), vec![TokenKind::Str("abc".into())]);
        assert_eq!(kinds("'a''b'"), vec![TokenKind::Str("a'b".into())]);
    }

    #[test]
    fn line_comments_skipped() {
        let ks = kinds("-- SUBCHUNKS: 1, 2\nSELECT 1");
        assert!(ks[0].is_kw("select"));
        assert_eq!(ks.len(), 2);
    }

    #[test]
    fn minus_not_comment() {
        let ks = kinds("a - b");
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1], TokenKind::Minus);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
        assert!(tokenize("`oops").is_err());
    }

    #[test]
    fn bad_character_errors_with_offset() {
        let err = tokenize("SELECT #").unwrap_err();
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn bang_without_eq_errors() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(kinds("select")[0].is_kw("SELECT"));
        assert!(kinds("SeLeCt")[0].is_kw("select"));
        assert!(!TokenKind::QuotedIdent("select".into()).is_kw("select"));
    }
}
