//! Recursive-descent parser for the Qserv SQL subset.
//!
//! Precedence climbing over the token stream from [`crate::lexer`],
//! producing the AST of [`crate::ast`]. Matches the grammar the original
//! system accepted in the paper's evaluation: single SELECT statements, no
//! subqueries (§5.3).

use crate::ast::{
    BinaryOp, Expr, Literal, OrderItem, Projection, SelectStatement, TableRef, UnaryOp,
};
use crate::lexer::{tokenize, Token, TokenKind};
use std::fmt;

/// A parse error with a byte offset (when attributable) and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token, or the input length at EOF.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Words that terminate an expression/alias position and therefore can
/// never be implicit aliases.
const RESERVED: &[&str] = &[
    "from", "where", "group", "order", "limit", "as", "and", "or", "not", "between", "in", "is",
    "null", "by", "desc", "asc", "select", "join", "on", "inner", "cross", "left", "right", "full",
    "outer",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

/// Parses a single SELECT statement (optionally `;`-terminated).
pub fn parse_select(sql: &str) -> Result<SelectStatement, ParseError> {
    let tokens = tokenize(sql).map_err(|e| ParseError {
        offset: e.offset,
        message: e.message,
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: sql.len(),
    };
    let stmt = p.select()?;
    // Allow a trailing semicolon, then require EOF.
    p.eat(&TokenKind::Semicolon);
    if let Some(t) = p.peek() {
        return Err(ParseError {
            offset: t.offset,
            message: format!("unexpected trailing token {:?}", t.kind),
        });
    }
    Ok(stmt)
}

/// Splits the `EXPLAIN` verb off a statement, returning the inner SQL.
/// The verb is case-insensitive and must be followed by whitespace, so
/// ordinary SQL (which never starts with EXPLAIN) passes through as
/// `None`. `EXPLAIN` is a planner verb, not part of the SELECT grammar:
/// callers strip it here and plan the inner statement without executing.
pub fn strip_explain(sql: &str) -> Option<&str> {
    let sql = sql.trim_start();
    sql.get(..7)
        .filter(|verb| verb.eq_ignore_ascii_case("EXPLAIN"))?;
    let tail = &sql[7..];
    if tail.starts_with(char::is_whitespace) {
        Some(tail.trim_start())
    } else {
        None
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.peek().map(|t| &t.kind)
    }

    fn peek2_kind(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.peek().map(|t| t.offset).unwrap_or(self.input_len)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.offset(),
            message: message.into(),
        })
    }

    /// Consumes the next token if it equals `kind`.
    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it is keyword `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek_kind(), Some(k) if k.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    /// An identifier token (quoted or not); errors otherwise.
    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek_kind() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(TokenKind::QuotedIdent(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => self.err(format!("expected {what}")),
        }
    }

    fn select(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_kw("select")?;
        let mut projections = vec![self.projection()?];
        while self.eat(&TokenKind::Comma) {
            projections.push(self.projection()?);
        }
        // FROM list: comma joins plus explicit `[INNER|CROSS] JOIN ... [ON p]`.
        // Explicit joins are desugared immediately — the joined table lands in
        // the comma FROM list and ON predicates are ANDed into WHERE — so the
        // analyzer sees one canonical shape (the paper's §5.3 grammar only
        // has comma joins; ON is sugar the frontend accepts).
        let mut from = Vec::new();
        let mut join_on: Vec<Expr> = Vec::new();
        if self.eat_kw("from") {
            from.push(self.table_ref()?);
            loop {
                if self.eat(&TokenKind::Comma) {
                    from.push(self.table_ref()?);
                } else if self.eat_kw("cross") {
                    self.expect_kw("join")?;
                    from.push(self.table_ref()?);
                } else if self.eat_kw("inner") {
                    self.expect_kw("join")?;
                    from.push(self.table_ref()?);
                    self.expect_kw("on")?;
                    join_on.push(self.expr()?);
                } else if self.eat_kw("join") {
                    from.push(self.table_ref()?);
                    self.expect_kw("on")?;
                    join_on.push(self.expr()?);
                } else if matches!(self.peek_kind(),
                    Some(k) if k.is_kw("left") || k.is_kw("right")
                        || k.is_kw("full") || k.is_kw("outer"))
                {
                    return self.err("outer joins are not supported");
                } else {
                    break;
                }
            }
        }
        let explicit_where = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        // Fold ON conjuncts and the explicit WHERE into one left-associative
        // AND chain (the printer re-parenthesizes as needed, so this is a
        // fixed point of to_sql regardless of the original spelling).
        let where_clause = join_on
            .into_iter()
            .chain(explicit_where)
            .reduce(|l, r| Expr::binary(l, BinaryOp::And, r));
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Some(Token {
                    kind: TokenKind::Number(n),
                    offset,
                }) => Some(n.parse::<u64>().map_err(|_| ParseError {
                    offset,
                    message: format!("LIMIT must be a non-negative integer, got {n}"),
                })?),
                _ => return self.err("expected integer after LIMIT"),
            }
        } else {
            None
        };
        Ok(SelectStatement {
            projections,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        // Bare `*` projection (not followed by an operator — `SELECT *` vs
        // an expression can't be confused because `*` can't start an
        // expression).
        if self.peek_kind() == Some(&TokenKind::Star) {
            self.pos += 1;
            return Ok(Projection {
                expr: Expr::Star,
                alias: None,
            });
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident("alias after AS")?)
        } else {
            match self.peek_kind() {
                Some(TokenKind::Ident(w)) if !is_reserved(w) => {
                    let w = w.clone();
                    self.pos += 1;
                    Some(w)
                }
                _ => None,
            }
        };
        Ok(Projection { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let first = self.expect_ident("table name")?;
        let (database, table) = if self.eat(&TokenKind::Dot) {
            (Some(first), self.expect_ident("table name after '.'")?)
        } else {
            (None, first)
        };
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident("alias after AS")?)
        } else {
            match self.peek_kind() {
                Some(TokenKind::Ident(w)) if !is_reserved(w) => {
                    let w = w.clone();
                    self.pos += 1;
                    Some(w)
                }
                _ => None,
            }
        };
        Ok(TableRef {
            database,
            table,
            alias,
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(lhs, BinaryOp::Or, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(lhs, BinaryOp::And, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.predicate()
    }

    /// Comparison / BETWEEN / IN / IS NULL — one shared, left-associative
    /// level (MySQL's behaviour): `a >= b < c` is `(a >= b) < c`, and a
    /// comparison result may feed a postfix predicate
    /// (`a = b IS NULL` is `(a = b) IS NULL`). Iterating here keeps the
    /// grammar a fixed point of the AST printer, which never parenthesizes
    /// a same-level left operand.
    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            // [NOT] BETWEEN / IN
            let negated = matches!(self.peek_kind(), Some(k) if k.is_kw("not"))
                && matches!(self.peek2_kind(), Some(k) if k.is_kw("between") || k.is_kw("in"));
            if negated {
                self.pos += 1; // consume NOT
            }
            if self.eat_kw("between") {
                let low = self.additive()?;
                self.expect_kw("and")?;
                let high = self.additive()?;
                lhs = Expr::Between {
                    expr: Box::new(lhs),
                    negated,
                    low: Box::new(low),
                    high: Box::new(high),
                };
                continue;
            }
            if self.eat_kw("in") {
                self.expect(&TokenKind::LParen, "'(' after IN")?;
                let mut list = vec![self.expr()?];
                while self.eat(&TokenKind::Comma) {
                    list.push(self.expr()?);
                }
                self.expect(&TokenKind::RParen, "')' closing IN list")?;
                lhs = Expr::InList {
                    expr: Box::new(lhs),
                    negated,
                    list,
                };
                continue;
            }
            if negated {
                return self.err("expected BETWEEN or IN after NOT");
            }
            if self.eat_kw("is") {
                let negated = self.eat_kw("not");
                self.expect_kw("null")?;
                lhs = Expr::IsNull {
                    expr: Box::new(lhs),
                    negated,
                };
                continue;
            }
            let op = match self.peek_kind() {
                Some(TokenKind::Eq) => Some(BinaryOp::Eq),
                Some(TokenKind::NotEq) => Some(BinaryOp::NotEq),
                Some(TokenKind::Lt) => Some(BinaryOp::Lt),
                Some(TokenKind::LtEq) => Some(BinaryOp::LtEq),
                Some(TokenKind::Gt) => Some(BinaryOp::Gt),
                Some(TokenKind::GtEq) => Some(BinaryOp::GtEq),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += 1;
                let rhs = self.additive()?;
                lhs = Expr::binary(lhs, op, rhs);
                continue;
            }
            return Ok(lhs);
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(lhs, op, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                Some(TokenKind::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::binary(lhs, op, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            // Fold a negated literal directly, so `-5` is a literal (the
            // common case in qserv_areaspec_box(-5,-5,5,-5)).
            if let Some(TokenKind::Number(_)) = self.peek_kind() {
                if let Expr::Literal(lit) = self.primary()? {
                    return Ok(Expr::Literal(match lit {
                        Literal::Int(v) => Literal::Int(-v),
                        Literal::Float(v) => Literal::Float(-v),
                        other => other,
                    }));
                }
                unreachable!("number token parses to a literal");
            }
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let tok = match self.advance() {
            Some(t) => t,
            None => return self.err("unexpected end of input"),
        };
        match tok.kind {
            TokenKind::Number(text) => {
                if !text.contains('.') && !text.contains(['e', 'E']) {
                    match text.parse::<i64>() {
                        Ok(v) => Ok(Expr::Literal(Literal::Int(v))),
                        Err(_) => Ok(Expr::Literal(Literal::Float(text.parse().map_err(
                            |_| ParseError {
                                offset: tok.offset,
                                message: format!("bad number {text}"),
                            },
                        )?))),
                    }
                } else {
                    Ok(Expr::Literal(Literal::Float(text.parse().map_err(
                        |_| ParseError {
                            offset: tok.offset,
                            message: format!("bad number {text}"),
                        },
                    )?)))
                }
            }
            TokenKind::Str(s) => Ok(Expr::Literal(Literal::Str(s))),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Literal::Null));
                }
                // Function call?
                if self.peek_kind() == Some(&TokenKind::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek_kind() != Some(&TokenKind::RParen) {
                        loop {
                            // COUNT(*) — a lone star argument.
                            if self.peek_kind() == Some(&TokenKind::Star)
                                && matches!(
                                    self.peek2_kind(),
                                    Some(&TokenKind::RParen) | Some(&TokenKind::Comma)
                                )
                            {
                                self.pos += 1;
                                args.push(Expr::Star);
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')' closing argument list")?;
                    return Ok(Expr::Function { name, args });
                }
                // Qualified column?
                if self.peek_kind() == Some(&TokenKind::Dot) {
                    self.pos += 1;
                    let col = self.expect_ident("column name after '.'")?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                        quoted: false,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                    quoted: false,
                })
            }
            TokenKind::QuotedIdent(name) => Ok(Expr::Column {
                qualifier: None,
                name,
                quoted: true,
            }),
            other => Err(ParseError {
                offset: tok.offset,
                message: format!("unexpected token {other:?} in expression"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> String {
        parse_select(sql).unwrap().to_sql()
    }

    #[test]
    fn explain_verb_strips() {
        assert_eq!(strip_explain("EXPLAIN SELECT 1"), Some("SELECT 1"));
        assert_eq!(strip_explain("explain  SELECT 1"), Some("SELECT 1"));
        assert_eq!(strip_explain("  Explain\tSELECT 1"), Some("SELECT 1"));
        assert_eq!(strip_explain("EXPLAINED x"), None);
        assert_eq!(strip_explain("EXPLAIN"), None);
        assert_eq!(strip_explain("SELECT 1"), None);
    }

    #[test]
    fn lv1_object_retrieval() {
        let s = parse_select("SELECT * FROM Object WHERE objectId = 12345").unwrap();
        assert_eq!(s.projections.len(), 1);
        assert_eq!(s.projections[0].expr, Expr::Star);
        assert_eq!(s.from[0].table, "Object");
        assert!(matches!(
            s.where_clause,
            Some(Expr::Binary {
                op: BinaryOp::Eq,
                ..
            })
        ));
    }

    #[test]
    fn lv2_time_series() {
        let s = parse_select(
            "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), ra, decl \
             FROM Source WHERE objectId = 42;",
        )
        .unwrap();
        assert_eq!(s.projections.len(), 5);
        assert!(
            matches!(&s.projections[1].expr, Expr::Function { name, .. } if name == "fluxToAbMag")
        );
    }

    #[test]
    fn lv3_spatial_filter_with_between() {
        let s = parse_select(
            "SELECT COUNT(*) FROM Object \
             WHERE ra_PS BETWEEN 1 AND 2 \
             AND decl_PS BETWEEN 3 AND 4 \
             AND fluxToAbMag(zFlux_PS) BETWEEN 21 AND 21.5 \
             AND fluxToAbMag(gFlux_PS)-fluxToAbMag(rFlux_PS) BETWEEN 0.3 AND 0.4",
        )
        .unwrap();
        // The WHERE is a left-deep AND chain of 4 BETWEENs.
        let mut betweens = 0;
        s.where_clause.as_ref().unwrap().visit(&mut |e| {
            if matches!(e, Expr::Between { .. }) {
                betweens += 1;
            }
        });
        assert_eq!(betweens, 4);
    }

    #[test]
    fn hv3_group_by_with_alias() {
        let s = parse_select(
            "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object GROUP BY chunkId",
        )
        .unwrap();
        assert_eq!(s.projections[0].alias.as_deref(), Some("n"));
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.projections[1].output_name(), "AVG(ra_PS)");
    }

    #[test]
    fn shv1_self_join() {
        let s = parse_select(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_areaspec_box(-5,-5,5,-5) \
             AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding_name(), "o1");
        assert_eq!(s.from[1].binding_name(), "o2");
        // Negative literals folded.
        let mut found_box = false;
        s.where_clause.as_ref().unwrap().visit(&mut |e| {
            if let Expr::Function { name, args } = e {
                if name == "qserv_areaspec_box" {
                    found_box = true;
                    assert_eq!(args[0], Expr::Literal(Literal::Int(-5)));
                }
            }
        });
        assert!(found_box);
    }

    #[test]
    fn shv2_join_between_tables() {
        let s = parse_select(
            "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS \
             FROM Object o, Source s \
             WHERE qserv_areaspec_box(224.1, -7.5, 237.1, 5.5) \
             AND o.objectId = s.objectId \
             AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0045",
        )
        .unwrap();
        assert_eq!(s.from[1].alias.as_deref(), Some("s"));
        assert!(matches!(
            &s.projections[0].expr,
            Expr::Column { qualifier: Some(q), name, .. } if q == "o" && name == "objectId"
        ));
    }

    #[test]
    fn avg_aggregation_example_from_5_3() {
        let s = parse_select(
            "SELECT AVG(uFlux_SG) FROM Object \
             WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 10.0) AND uRadius_PS > 0.04;",
        )
        .unwrap();
        assert_eq!(s.projections[0].output_name(), "AVG(uFlux_SG)");
    }

    #[test]
    fn explicit_join_on_desugars_to_comma_from_plus_where() {
        let a = parse_select(
            "SELECT o.objectId, s.sourceId FROM Object o JOIN Source s ON o.objectId = s.objectId \
             WHERE s.flux > 3",
        )
        .unwrap();
        let b = parse_select(
            "SELECT o.objectId, s.sourceId FROM Object o, Source s \
             WHERE o.objectId = s.objectId AND s.flux > 3",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn inner_join_is_plain_join() {
        let a = parse_select("SELECT * FROM A INNER JOIN B ON A.x = B.x").unwrap();
        let b = parse_select("SELECT * FROM A JOIN B ON A.x = B.x").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.from.len(), 2);
    }

    #[test]
    fn cross_join_has_no_on() {
        let s = parse_select("SELECT count(*) FROM A CROSS JOIN B").unwrap();
        assert_eq!(s.from.len(), 2);
        assert!(s.where_clause.is_none());
        // ON after CROSS JOIN is a syntax error.
        assert!(parse_select("SELECT * FROM A CROSS JOIN B ON A.x = B.x").is_err());
    }

    #[test]
    fn chained_joins_fold_on_conjuncts_left_to_right() {
        let a =
            parse_select("SELECT * FROM A JOIN B ON A.x = B.x JOIN C ON B.y = C.y WHERE C.z = 1")
                .unwrap();
        let b = parse_select("SELECT * FROM A, B, C WHERE A.x = B.x AND B.y = C.y AND C.z = 1")
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn join_on_roundtrips_through_printer() {
        let s = parse_select(
            "SELECT o.objectId FROM Object o JOIN Source s \
             ON o.objectId = s.objectId AND s.flux > 3",
        )
        .unwrap();
        let once = s.to_sql();
        assert_eq!(parse_select(&once).unwrap(), s);
    }

    #[test]
    fn outer_joins_rejected_with_message() {
        for q in [
            "SELECT * FROM A LEFT JOIN B ON A.x = B.x",
            "SELECT * FROM A RIGHT JOIN B ON A.x = B.x",
            "SELECT * FROM A FULL OUTER JOIN B ON A.x = B.x",
            "SELECT * FROM A LEFT OUTER JOIN B ON A.x = B.x",
        ] {
            let e = parse_select(q).unwrap_err();
            assert!(e.message.contains("outer joins"), "{q}: {e}");
        }
    }

    #[test]
    fn join_requires_on() {
        assert!(parse_select("SELECT * FROM A JOIN B").is_err());
        assert!(parse_select("SELECT * FROM A INNER JOIN B WHERE A.x = 1").is_err());
    }

    #[test]
    fn database_qualified_table() {
        let s = parse_select("SELECT x FROM LSST.Object_1234").unwrap();
        assert_eq!(s.from[0].database.as_deref(), Some("LSST"));
        assert_eq!(s.from[0].table, "Object_1234");
    }

    #[test]
    fn order_by_and_limit() {
        let s = parse_select("SELECT a, b FROM T ORDER BY a DESC, b LIMIT 100").unwrap();
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(100));
    }

    #[test]
    fn in_list_and_is_null_and_not() {
        let s =
            parse_select("SELECT a FROM T WHERE a IN (1, 2, 3) AND b IS NOT NULL AND NOT c = 1")
                .unwrap();
        let w = s.where_clause.unwrap();
        let sql = w.to_sql();
        assert!(sql.contains("IN (1, 2, 3)"));
        assert!(sql.contains("IS NOT NULL"));
        assert!(sql.contains("NOT "));
    }

    #[test]
    fn not_between_and_not_in() {
        let s =
            parse_select("SELECT a FROM T WHERE a NOT BETWEEN 1 AND 2 AND b NOT IN (3)").unwrap();
        let sql = s.where_clause.unwrap().to_sql();
        assert!(sql.contains("NOT BETWEEN"));
        assert!(sql.contains("NOT IN"));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT a + b * c - d / e FROM T").unwrap();
        assert_eq!(s.projections[0].expr.to_sql(), "a + b * c - d / e");
    }

    #[test]
    fn parenthesized_expression() {
        let s = parse_select("SELECT (a + b) * c FROM T").unwrap();
        assert_eq!(s.projections[0].expr.to_sql(), "(a + b) * c");
    }

    #[test]
    fn quoted_ident_aggregation_merge_query() {
        // The frontend's merge query uses backticked physical column names
        // (paper §5.3): SUM(`SUM(uFlux_SG)`) / SUM(`COUNT(uFlux_SG)`).
        let s =
            parse_select("SELECT SUM(`SUM(uFlux_SG)`) / SUM(`COUNT(uFlux_SG)`) FROM result_table")
                .unwrap();
        let sql = s.projections[0].expr.to_sql();
        assert_eq!(sql, "SUM(`SUM(uFlux_SG)`) / SUM(`COUNT(uFlux_SG)`)");
    }

    #[test]
    fn implicit_alias_without_as() {
        let s = parse_select("SELECT a x FROM T y").unwrap();
        assert_eq!(s.projections[0].alias.as_deref(), Some("x"));
        assert_eq!(s.from[0].alias.as_deref(), Some("y"));
    }

    #[test]
    fn missing_from_is_allowed() {
        // `SELECT 1` — useful for engine testing.
        let s = parse_select("SELECT 1 + 1").unwrap();
        assert!(s.from.is_empty());
    }

    #[test]
    fn errors_reported() {
        assert!(parse_select("").is_err());
        assert!(parse_select("SELECT").is_err());
        assert!(parse_select("SELECT a FROM").is_err());
        assert!(parse_select("SELECT a FROM T WHERE").is_err());
        assert!(parse_select("SELECT a FROM T LIMIT x").is_err());
        assert!(parse_select("SELECT a FROM T extra garbage ,").is_err());
        assert!(parse_select("SELECT a FROM T WHERE a NOT 5").is_err());
        assert!(parse_select("INSERT INTO T VALUES (1)").is_err());
    }

    #[test]
    fn trailing_semicolon_ok_but_two_statements_rejected() {
        assert!(parse_select("SELECT a FROM T;").is_ok());
        assert!(parse_select("SELECT a FROM T; SELECT b FROM U").is_err());
    }

    #[test]
    fn count_star_in_middle_of_args_rejected_gracefully() {
        // `f(*, 1)` parses star argument then comma — accept as Star arg
        // list (MySQL would reject; we accept COUNT-like usage only).
        let s = parse_select("SELECT COUNT(*) FROM T").unwrap();
        assert_eq!(s.projections[0].expr, Expr::func("COUNT", vec![Expr::Star]));
    }

    #[test]
    fn roundtrip_paper_queries() {
        // parse → print → parse must be a fixed point (print is canonical).
        for q in [
            "SELECT * FROM Object WHERE objectId = 12345",
            "SELECT COUNT(*) FROM Object",
            "SELECT objectId, ra_PS, decl_PS FROM Object WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 4",
            "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object GROUP BY chunkId",
            "SELECT count(*) FROM Object AS o1, Object AS o2 WHERE qserv_areaspec_box(-5, -5, 5, -5) AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1",
        ] {
            let once = roundtrip(q);
            let twice = roundtrip(&once);
            assert_eq!(once, twice, "printing must be canonical for {q}");
        }
    }

    #[test]
    fn deep_nesting_parses() {
        let mut q = String::from("SELECT ");
        for _ in 0..50 {
            q.push('(');
        }
        q.push('1');
        for _ in 0..50 {
            q.push(')');
        }
        q.push_str(" FROM T");
        assert!(parse_select(&q).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    //! Printer/parser round-trip on *generated* ASTs: for any expression
    //! the AST printer can emit, parsing the text must reproduce the AST
    //! exactly. The frontend's whole rewriting pipeline leans on this
    //! (chunk queries are printed ASTs that workers re-parse).

    use crate::ast::{BinaryOp, Expr, Literal, Projection, SelectStatement, TableRef};
    use crate::parser::parse_select;
    use proptest::prelude::*;

    fn ident() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_]{0,10}".prop_filter("not reserved", |s| {
            !super::is_reserved(s) && !s.eq_ignore_ascii_case("count")
        })
    }

    fn literal() -> impl Strategy<Value = Literal> {
        prop_oneof![
            any::<i32>().prop_map(|v| Literal::Int(v as i64)),
            // Finite floats; printing uses shortest-round-trip form.
            (-1.0e12f64..1.0e12).prop_map(Literal::Float),
            "[a-z '\\\\]{0,8}".prop_map(Literal::Str),
            Just(Literal::Null),
        ]
    }

    fn expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            literal().prop_map(Expr::Literal),
            ident().prop_map(|n| Expr::col(&n)),
            (ident(), ident()).prop_map(|(q, n)| Expr::qcol(&q, &n)),
        ];
        leaf.prop_recursive(4, 48, 4, |inner| {
            prop_oneof![
                (
                    inner.clone(),
                    prop_oneof![
                        Just(BinaryOp::Add),
                        Just(BinaryOp::Sub),
                        Just(BinaryOp::Mul),
                        Just(BinaryOp::Div),
                        Just(BinaryOp::Eq),
                        Just(BinaryOp::Lt),
                        Just(BinaryOp::GtEq),
                        Just(BinaryOp::And),
                        Just(BinaryOp::Or),
                    ],
                    inner.clone()
                )
                    .prop_map(|(l, op, r)| Expr::binary(l, op, r)),
                (ident(), proptest::collection::vec(inner.clone(), 0..3))
                    .prop_map(|(n, args)| Expr::func(&n, args)),
                (inner.clone(), any::<bool>(), inner.clone(), inner.clone()).prop_map(
                    |(e, neg, lo, hi)| Expr::Between {
                        expr: Box::new(e),
                        negated: neg,
                        low: Box::new(lo),
                        high: Box::new(hi),
                    }
                ),
                (
                    inner.clone(),
                    any::<bool>(),
                    proptest::collection::vec(inner.clone(), 1..3)
                )
                    .prop_map(|(e, neg, list)| Expr::InList {
                        expr: Box::new(e),
                        negated: neg,
                        list,
                    }),
                (inner, any::<bool>()).prop_map(|(e, neg)| Expr::IsNull {
                    expr: Box::new(e),
                    negated: neg,
                }),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn printed_statements_reparse_to_same_ast(
            proj in expr(),
            wher in expr(),
            table in ident(),
            limit in proptest::option::of(0u64..1000),
        ) {
            let stmt = SelectStatement {
                projections: vec![Projection { expr: proj, alias: None }],
                from: vec![TableRef::named(&table)],
                where_clause: Some(wher),
                group_by: vec![],
                order_by: vec![],
                limit,
            };
            let sql = stmt.to_sql();
            let reparsed = parse_select(&sql)
                .unwrap_or_else(|e| panic!("printed SQL failed to parse: {e}\n{sql}"));
            prop_assert_eq!(reparsed, stmt, "{}", sql);
        }
    }
}
