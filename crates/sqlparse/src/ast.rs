//! Abstract syntax tree for the Qserv SQL subset, with SQL printing.
//!
//! The printer matters as much as the parser here: Qserv's frontend
//! *rewrites* user queries into per-chunk physical queries (paper §5.3), so
//! every node must render back to valid SQL. `parse(print(ast)) == ast`
//! round-tripping is property-tested in the parser module.

use std::fmt;

/// A literal value.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// SQL NULL.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep a decimal point so it re-lexes as a float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// Binary operators, loosest-binding last.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// Binding strength; higher binds tighter. Used by the printer to emit
    /// minimal parentheses and by the parser for precedence climbing.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Add | BinaryOp::Sub => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }

    /// The SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified (`o1.ra_PS`). `quoted`
    /// marks backtick-quoted names such as `` `SUM(uFlux_SG)` `` which must
    /// be re-printed quoted.
    Column {
        /// Table or alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
        /// True when the name requires backtick quoting.
        quoted: bool,
    },
    /// A literal.
    Literal(Literal),
    /// `lhs op rhs`.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `-expr` or `NOT expr`.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A function call, including aggregates and the `qserv_*`
    /// pseudo-functions. `COUNT(*)` is a call whose single argument is
    /// [`Expr::Star`].
    Function {
        /// Function name, original spelling preserved.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `*` — valid as a projection or as the argument of `COUNT`.
    Star,
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `NOT IN`.
        negated: bool,
        /// Candidate list.
        list: Vec<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for an unqualified column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
            quoted: false,
        }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
            quoted: false,
        }
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Convenience constructor for a float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(lhs: Expr, op: BinaryOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a function call.
    pub fn func(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Function {
            name: name.to_string(),
            args,
        }
    }

    /// ANDs two expressions.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(lhs, BinaryOp::And, rhs)
    }

    /// Renders the expression as SQL, with minimal parentheses.
    pub fn to_sql(&self) -> String {
        let mut s = String::new();
        self.write_sql(&mut s, 0);
        s
    }

    fn write_sql(&self, out: &mut String, parent_prec: u8) {
        match self {
            Expr::Column {
                qualifier,
                name,
                quoted,
            } => {
                if let Some(q) = qualifier {
                    out.push_str(q);
                    out.push('.');
                }
                if *quoted {
                    out.push('`');
                    out.push_str(name);
                    out.push('`');
                } else {
                    out.push_str(name);
                }
            }
            Expr::Literal(l) => out.push_str(&l.to_string()),
            Expr::Binary { op, lhs, rhs } => {
                let prec = op.precedence();
                let need_paren = prec < parent_prec;
                if need_paren {
                    out.push('(');
                }
                lhs.write_sql(out, prec);
                out.push(' ');
                out.push_str(op.sql());
                out.push(' ');
                // Right side: require strictly higher precedence so that
                // left-associative chains print without parens but
                // a - (b - c) keeps them.
                rhs.write_sql(out, prec + 1);
                if need_paren {
                    out.push(')');
                }
            }
            Expr::Unary { op, expr } => {
                match op {
                    UnaryOp::Neg => out.push('-'),
                    UnaryOp::Not => out.push_str("NOT "),
                }
                expr.write_sql(out, 7);
            }
            Expr::Function { name, args } => {
                out.push_str(name);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.write_sql(out, 0);
                }
                out.push(')');
            }
            Expr::Star => out.push('*'),
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                let need_paren = 3 < parent_prec;
                if need_paren {
                    out.push('(');
                }
                expr.write_sql(out, 4);
                if *negated {
                    out.push_str(" NOT");
                }
                out.push_str(" BETWEEN ");
                // Bounds re-parse as `additive`, so anything at comparison
                // precedence or looser needs parentheses.
                low.write_sql(out, 5);
                out.push_str(" AND ");
                high.write_sql(out, 5);
                if need_paren {
                    out.push(')');
                }
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                let need_paren = 3 < parent_prec;
                if need_paren {
                    out.push('(');
                }
                expr.write_sql(out, 4);
                if *negated {
                    out.push_str(" NOT");
                }
                out.push_str(" IN (");
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    e.write_sql(out, 0);
                }
                out.push(')');
                if need_paren {
                    out.push(')');
                }
            }
            Expr::IsNull { expr, negated } => {
                let need_paren = 3 < parent_prec;
                if need_paren {
                    out.push('(');
                }
                expr.write_sql(out, 4);
                out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
                if need_paren {
                    out.push(')');
                }
            }
        }
    }

    /// Visits this expression and all descendants, depth-first.
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::Column { .. } | Expr::Literal(_) | Expr::Star => {}
        }
    }

    /// Rewrites the expression bottom-up: `f` is applied to each node after
    /// its children have been rewritten, and may replace the node.
    pub fn rewrite(self, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
        let recursed = match self {
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op,
                lhs: Box::new(lhs.rewrite(f)),
                rhs: Box::new(rhs.rewrite(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(expr.rewrite(f)),
            },
            Expr::Function { name, args } => Expr::Function {
                name,
                args: args.into_iter().map(|a| a.rewrite(f)).collect(),
            },
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => Expr::Between {
                expr: Box::new(expr.rewrite(f)),
                negated,
                low: Box::new(low.rewrite(f)),
                high: Box::new(high.rewrite(f)),
            },
            Expr::InList {
                expr,
                negated,
                list,
            } => Expr::InList {
                expr: Box::new(expr.rewrite(f)),
                negated,
                list: list.into_iter().map(|e| e.rewrite(f)).collect(),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.rewrite(f)),
                negated,
            },
            leaf => leaf,
        };
        f(recursed)
    }
}

/// One projected item: an expression with an optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct Projection {
    /// The projected expression ([`Expr::Star`] for `SELECT *`).
    pub expr: Expr,
    /// `AS alias`, when present.
    pub alias: Option<String>,
}

impl Projection {
    /// Renders as SQL. Aliases that are not plain identifiers (Qserv's
    /// aggregate rewriting aliases columns as `` `SUM(uFlux_SG)` ``) are
    /// backtick-quoted so the output re-parses.
    pub fn to_sql(&self) -> String {
        match &self.alias {
            Some(a) => {
                let plain = !a.is_empty()
                    && a.chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                    && a.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if plain {
                    format!("{} AS {}", self.expr.to_sql(), a)
                } else {
                    format!("{} AS `{}`", self.expr.to_sql(), a)
                }
            }
            None => self.expr.to_sql(),
        }
    }

    /// The output column name: the alias when present, otherwise the
    /// expression's SQL text (MySQL's convention, which the aggregate
    /// rewriting in paper §5.3 relies on: `` `SUM(uFlux_SG)` ``).
    pub fn output_name(&self) -> String {
        match &self.alias {
            Some(a) => a.clone(),
            None => self.expr.to_sql(),
        }
    }
}

/// A table reference in the FROM list.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Database qualifier (`LSST.Object` → `LSST`), when present.
    pub database: Option<String>,
    /// Table name.
    pub table: String,
    /// Alias (`Object o1` → `o1`), when present.
    pub alias: Option<String>,
}

impl TableRef {
    /// Creates an unqualified, unaliased reference.
    pub fn named(table: &str) -> TableRef {
        TableRef {
            database: None,
            table: table.to_string(),
            alias: None,
        }
    }

    /// The name other parts of the query use to refer to this table: the
    /// alias when present, otherwise the bare table name.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }

    /// Renders as SQL.
    pub fn to_sql(&self) -> String {
        let mut s = String::new();
        if let Some(db) = &self.database {
            s.push_str(db);
            s.push('.');
        }
        s.push_str(&self.table);
        if let Some(a) = &self.alias {
            s.push_str(" AS ");
            s.push_str(a);
        }
        s
    }
}

/// One ORDER BY item.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// True for `DESC`.
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStatement {
    /// Projected items.
    pub projections: Vec<Projection>,
    /// FROM list (comma joins; Qserv's near-neighbour queries use
    /// `FROM Object o1, Object o2`).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

impl SelectStatement {
    /// Renders the statement as SQL (no trailing semicolon).
    pub fn to_sql(&self) -> String {
        let mut s = String::from("SELECT ");
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&p.to_sql());
        }
        if !self.from.is_empty() {
            s.push_str(" FROM ");
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&t.to_sql());
            }
        }
        if let Some(w) = &self.where_clause {
            s.push_str(" WHERE ");
            s.push_str(&w.to_sql());
        }
        if !self.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&g.to_sql());
            }
        }
        if !self.order_by.is_empty() {
            s.push_str(" ORDER BY ");
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&o.expr.to_sql());
                if o.desc {
                    s.push_str(" DESC");
                }
            }
        }
        if let Some(l) = self.limit {
            s.push_str(&format!(" LIMIT {l}"));
        }
        s
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Int(42).to_string(), "42");
        assert_eq!(Literal::Float(1.5).to_string(), "1.5");
        assert_eq!(Literal::Float(2.0).to_string(), "2.0");
        assert_eq!(Literal::Str("a'b".into()).to_string(), "'a''b'");
        assert_eq!(Literal::Null.to_string(), "NULL");
    }

    #[test]
    fn expr_printing_minimal_parens() {
        // a + b * c needs no parens.
        let e = Expr::binary(
            Expr::col("a"),
            BinaryOp::Add,
            Expr::binary(Expr::col("b"), BinaryOp::Mul, Expr::col("c")),
        );
        assert_eq!(e.to_sql(), "a + b * c");
        // (a + b) * c needs them.
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Add, Expr::col("b")),
            BinaryOp::Mul,
            Expr::col("c"),
        );
        assert_eq!(e.to_sql(), "(a + b) * c");
    }

    #[test]
    fn right_associated_subtraction_keeps_parens() {
        let e = Expr::binary(
            Expr::col("a"),
            BinaryOp::Sub,
            Expr::binary(Expr::col("b"), BinaryOp::Sub, Expr::col("c")),
        );
        assert_eq!(e.to_sql(), "a - (b - c)");
    }

    #[test]
    fn or_inside_and_parenthesized() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Or, Expr::col("b")),
            BinaryOp::And,
            Expr::col("c"),
        );
        assert_eq!(e.to_sql(), "(a OR b) AND c");
    }

    #[test]
    fn function_and_star() {
        let e = Expr::func("COUNT", vec![Expr::Star]);
        assert_eq!(e.to_sql(), "COUNT(*)");
        let e = Expr::func(
            "qserv_angSep",
            vec![Expr::qcol("o1", "ra_PS"), Expr::float(0.5)],
        );
        assert_eq!(e.to_sql(), "qserv_angSep(o1.ra_PS, 0.5)");
    }

    #[test]
    fn quoted_column_round_trips() {
        let e = Expr::Column {
            qualifier: None,
            name: "SUM(uFlux_SG)".into(),
            quoted: true,
        };
        assert_eq!(e.to_sql(), "`SUM(uFlux_SG)`");
    }

    #[test]
    fn between_and_in_and_isnull() {
        let b = Expr::Between {
            expr: Box::new(Expr::col("x")),
            negated: false,
            low: Box::new(Expr::int(1)),
            high: Box::new(Expr::int(2)),
        };
        assert_eq!(b.to_sql(), "x BETWEEN 1 AND 2");
        let i = Expr::InList {
            expr: Box::new(Expr::col("x")),
            negated: true,
            list: vec![Expr::int(1), Expr::int(2)],
        };
        assert_eq!(i.to_sql(), "x NOT IN (1, 2)");
        let n = Expr::IsNull {
            expr: Box::new(Expr::col("x")),
            negated: true,
        };
        assert_eq!(n.to_sql(), "x IS NOT NULL");
    }

    #[test]
    fn select_statement_prints() {
        let s = SelectStatement {
            projections: vec![Projection {
                expr: Expr::func("AVG", vec![Expr::col("uFlux_SG")]),
                alias: None,
            }],
            from: vec![TableRef::named("Object")],
            where_clause: Some(Expr::binary(
                Expr::col("uRadius_PS"),
                BinaryOp::Gt,
                Expr::float(0.04),
            )),
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        assert_eq!(
            s.to_sql(),
            "SELECT AVG(uFlux_SG) FROM Object WHERE uRadius_PS > 0.04"
        );
    }

    #[test]
    fn select_with_everything() {
        let s = SelectStatement {
            projections: vec![
                Projection {
                    expr: Expr::func("count", vec![Expr::Star]),
                    alias: Some("n".into()),
                },
                Projection {
                    expr: Expr::col("chunkId"),
                    alias: None,
                },
            ],
            from: vec![TableRef {
                database: Some("LSST".into()),
                table: "Object".into(),
                alias: Some("o".into()),
            }],
            where_clause: None,
            group_by: vec![Expr::col("chunkId")],
            order_by: vec![OrderItem {
                expr: Expr::col("n"),
                desc: true,
            }],
            limit: Some(10),
        };
        assert_eq!(
            s.to_sql(),
            "SELECT count(*) AS n, chunkId FROM LSST.Object AS o GROUP BY chunkId ORDER BY n DESC LIMIT 10"
        );
    }

    #[test]
    fn projection_output_name() {
        let p = Projection {
            expr: Expr::func("SUM", vec![Expr::col("x")]),
            alias: None,
        };
        assert_eq!(p.output_name(), "SUM(x)");
        let p = Projection {
            expr: Expr::col("x"),
            alias: Some("y".into()),
        };
        assert_eq!(p.output_name(), "y");
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::binary(
            Expr::func("f", vec![Expr::col("a"), Expr::col("b")]),
            BinaryOp::Add,
            Expr::int(1),
        );
        let mut cols = vec![];
        e.visit(&mut |n| {
            if let Expr::Column { name, .. } = n {
                cols.push(name.clone());
            }
        });
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn rewrite_replaces_bottom_up() {
        let e = Expr::binary(Expr::col("a"), BinaryOp::Add, Expr::col("a"));
        let rewritten = e.rewrite(&mut |n| match n {
            Expr::Column { name, .. } if name == "a" => Expr::int(7),
            other => other,
        });
        assert_eq!(rewritten.to_sql(), "7 + 7");
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef {
            database: None,
            table: "Object".into(),
            alias: Some("o1".into()),
        };
        assert_eq!(t.binding_name(), "o1");
        assert_eq!(TableRef::named("Source").binding_name(), "Source");
    }
}
