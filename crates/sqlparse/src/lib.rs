//! SQL parsing for the Qserv reproduction.
//!
//! The original Qserv extended Lubos Vnuk's SqlSQL2 ANTLR grammar to detect
//! the query characteristics needed to generate chunk queries (paper §5.3):
//! spatial restrictions, index opportunities, table references, aliases and
//! joins, and aggregations. This crate implements the equivalent from
//! scratch: a hand-written lexer ([`lexer`]), an AST ([`ast`]) that can
//! round-trip back to SQL text ([`ast::Expr::to_sql`] and
//! [`ast::SelectStatement::to_sql`]), and a recursive-descent parser
//! ([`parser`]).
//!
//! The supported subset is the one Qserv supports in the paper: single
//! `SELECT` statements (no subqueries, §5.3 "Qserv does not currently
//! support SQL subqueries") with projections (including aggregates and
//! expression arithmetic), comma joins with aliases, `WHERE` with
//! `AND`/`OR`/`NOT`, comparisons, `BETWEEN`, `IN`, `IS [NOT] NULL`,
//! function calls (including the `qserv_areaspec_box` and `qserv_angSep`
//! pseudo-functions), `GROUP BY`, `ORDER BY`, and `LIMIT`.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{BinaryOp, Expr, Literal, OrderItem, Projection, SelectStatement, TableRef, UnaryOp};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse_select, strip_explain, ParseError};
