//! The event-driven cluster simulator.
//!
//! Three resources are modeled, mirroring §6/§7.1 of the paper:
//!
//! 1. **The master (frontend)** — a serial server. Each query pays a fixed
//!    frontend latency, then one dispatch operation *per chunk* (query
//!    generation + path write), then, as results stream back, one serial
//!    merge operation per chunk result (network transfer + mysqldump
//!    reload).
//! 2. **Worker nodes** — each has a FIFO task queue feeding
//!    `slots_per_node` execution slots (no cost-based scheduling, which is
//!    what starves short queries behind scans in Figure 14). A running
//!    task first performs its disk I/O — *processor-shared* with every
//!    other task doing I/O on the same node, with contention-degraded
//!    aggregate bandwidth — then its fixed work (seeks, cache reads, CPU).
//! 3. **The disk** per node — max-min shared among active I/O phases.
//!
//! All times are virtual seconds; execution is deterministic.

use crate::config::SimConfig;
use qserv_obs::VirtualClock;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// The per-chunk physical query a worker executes.
#[derive(Clone, Debug, Default)]
pub struct ChunkTask {
    /// Worker node the chunk lives on.
    pub node: usize,
    /// Bytes read from disk (uncached portion of the scan).
    pub disk_bytes: u64,
    /// Bytes served from the OS page cache.
    pub cached_bytes: u64,
    /// Random seeks performed (index lookups, subchunk table opens).
    pub seeks: u32,
    /// Pure compute after I/O (join pair evaluation etc.), seconds.
    pub cpu_s: f64,
    /// Result size shipped to the master (mysqldump text), bytes.
    pub result_bytes: u64,
    /// Whether the task belongs to an interactive (latency-sensitive)
    /// query. Only [`crate::config::SchedulerPolicy::InteractiveFirst`]
    /// looks at this; FIFO nodes treat every task alike.
    pub interactive: bool,
}

/// One user query: a set of chunk tasks submitted at a point in time.
#[derive(Clone, Debug)]
pub struct QueryJob {
    /// Label carried into the report.
    pub label: String,
    /// Submission time, virtual seconds.
    pub submit_s: f64,
    /// Per-chunk tasks.
    pub tasks: Vec<ChunkTask>,
}

/// Per-query outcome.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Label from the job.
    pub label: String,
    /// Submission time.
    pub submit_s: f64,
    /// When the query's first chunk task reached a worker queue (the end
    /// of frontend + first dispatch; `submit_s + frontend` for zero-task
    /// queries). Together with `completion_s` this gives the Gantt bars of
    /// the paper's Figure 14.
    pub first_task_s: f64,
    /// When the last chunk result finished merging (query completion).
    pub completion_s: f64,
    /// `completion_s - submit_s`: the latency a client measures.
    pub elapsed_s: f64,
    /// Number of chunk tasks.
    pub tasks: usize,
    /// Total bytes scanned from disk across tasks.
    pub disk_bytes: u64,
    /// Task re-executions forced by injected transient failures
    /// ([`crate::config::FaultConfig`]); 0 on a fault-free cluster.
    pub retries: usize,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Event {
    /// A query finished its frontend phase and joins the dispatch
    /// rotation.
    QueryReady { query: usize },
    /// The master's dispatch resource is free for the next chunk op.
    DispatchFree,
    /// A dispatched chunk query reaches its node's queue.
    TaskArrive { task: usize },
    /// Re-evaluate a node's active set (stale unless version matches).
    NodeWake { node: usize, version: u64 },
    /// The master finished merging a task's result.
    MergeDone { task: usize },
}

/// Heap entry ordered by (time, seq) ascending.
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct TaskState {
    spec: ChunkTask,
    query: usize,
    /// Completed executions (fault retries re-run the task).
    executions: u32,
}

/// Deterministic failure verdict for execution `attempt` of `task`.
fn fault_draw(seed: u64, task: usize, attempt: u32) -> f64 {
    let mut z = seed
        ^ (task as u64).wrapping_mul(0xA24BAED4963EE407)
        ^ (attempt as u64).wrapping_mul(0xD6E8FEB86659FD93);
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

struct ActiveTask {
    task: usize,
    /// Remaining disk bytes in the I/O phase (`0.0` once in fixed phase).
    remaining_io: f64,
    /// Absolute end time of the fixed phase, set when I/O completes.
    fixed_end: Option<f64>,
}

struct NodeState {
    queue: VecDeque<usize>,
    active: Vec<ActiveTask>,
    last_update: f64,
    version: u64,
}

struct QueryState {
    label: String,
    submit_s: f64,
    remaining: usize,
    first_task_s: Option<f64>,
    completion_s: f64,
    tasks: usize,
    disk_bytes: u64,
}

/// The simulator. Submit jobs, then [`Simulator::run`].
pub struct Simulator {
    config: SimConfig,
    jobs: Vec<QueryJob>,
    clock: Option<Arc<VirtualClock>>,
}

impl Simulator {
    /// Creates a simulator over `config`.
    pub fn new(config: SimConfig) -> Simulator {
        Simulator {
            config,
            jobs: Vec::new(),
            clock: None,
        }
    }

    /// Binds a shared [`VirtualClock`] that the event loop drives: as each
    /// event fires, the clock is advanced to the event's virtual time
    /// (never backwards). Everything else holding the same `Arc` — a
    /// fault plan, a trace, an assertion in a test — observes simulation
    /// time through the ordinary [`qserv_obs::Clock`] interface.
    pub fn bind_clock(&mut self, clock: Arc<VirtualClock>) {
        self.clock = Some(clock);
    }

    /// Adds a query job.
    ///
    /// # Panics
    /// Panics when a task references a node outside the cluster.
    pub fn submit(&mut self, job: QueryJob) {
        for t in &job.tasks {
            assert!(
                t.node < self.config.nodes,
                "task node {} out of range ({} nodes)",
                t.node,
                self.config.nodes
            );
        }
        self.jobs.push(job);
    }

    /// Runs to completion, returning one report per job in submission
    /// order.
    pub fn run(mut self) -> Vec<QueryReport> {
        let cfg = self.config.clone();
        let mut tasks: Vec<TaskState> = Vec::new();
        let mut queries: Vec<QueryState> = Vec::new();

        // Sort jobs by submit time (stable: submission order breaks ties).
        self.jobs.sort_by(|a, b| a.submit_s.total_cmp(&b.submit_s));

        let mut heap: BinaryHeap<Scheduled> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut push =
            |heap: &mut BinaryHeap<Scheduled>, seq: &mut u64, time: f64, event: Event| {
                *seq += 1;
                heap.push(Scheduled {
                    time,
                    seq: *seq,
                    event,
                });
            };

        // The master's two serial resources. Dispatch serves *queries*
        // round-robin, one chunk op at a time: each query's dispatcher
        // submits its next op as soon as the previous completes, so
        // concurrent queries interleave at the master instead of one
        // monopolizing it (each of Figure 14's two HV2s sees ~2× its solo
        // time, not 1×/3×).
        let mut merge_free_at: f64 = 0.0;
        let mut dispatch_busy = false;
        let mut rotation: VecDeque<usize> = VecDeque::new();
        let mut pending: Vec<VecDeque<usize>> = Vec::new();

        for job in &self.jobs {
            let qid = queries.len();
            let ready = job.submit_s + cfg.frontend_base_s;
            let disk_total: u64 = job.tasks.iter().map(|t| t.disk_bytes).sum();
            queries.push(QueryState {
                label: job.label.clone(),
                submit_s: job.submit_s,
                remaining: job.tasks.len(),
                first_task_s: None,
                completion_s: ready, // zero-task queries complete at frontend exit
                tasks: job.tasks.len(),
                disk_bytes: disk_total,
            });
            let mut q_pending = VecDeque::with_capacity(job.tasks.len());
            for t in &job.tasks {
                let tid = tasks.len();
                tasks.push(TaskState {
                    spec: t.clone(),
                    query: qid,
                    executions: 0,
                });
                q_pending.push_back(tid);
            }
            pending.push(q_pending);
            if !pending[qid].is_empty() {
                push(&mut heap, &mut seq, ready, Event::QueryReady { query: qid });
            }
        }

        let mut nodes: Vec<NodeState> = (0..cfg.nodes)
            .map(|_| NodeState {
                queue: VecDeque::new(),
                active: Vec::new(),
                last_update: 0.0,
                version: 0,
            })
            .collect();

        // Completion tolerances. IO_EPS is in *bytes*: a residual below
        // half a byte is floating-point dust, not work — without it, a
        // task can be left with ~1e-9 bytes whose projected completion is
        // `now + 1e-16`, which does not advance an f64 clock near t≈10 s
        // and livelocks the event loop. EPS compares absolute times.
        const EPS: f64 = 1e-9;
        // Residual-I/O completion threshold, in bytes.
        const IO_EPS: f64 = 0.5;

        // Serves the next dispatch op when the resource is idle: pop the
        // front query, ship one chunk op, and rotate the query to the
        // back if it has more.
        macro_rules! pump_dispatch {
            ($now:expr) => {
                if !dispatch_busy {
                    if let Some(q) = rotation.pop_front() {
                        let tid = pending[q]
                            .pop_front()
                            .expect("queries in rotation have work");
                        dispatch_busy = true;
                        let done = $now + cfg.dispatch_s_per_chunk;
                        push(&mut heap, &mut seq, done, Event::TaskArrive { task: tid });
                        push(&mut heap, &mut seq, done, Event::DispatchFree);
                        if !pending[q].is_empty() {
                            rotation.push_back(q);
                        }
                    }
                }
            };
        }

        while let Some(Scheduled {
            time: now, event, ..
        }) = heap.pop()
        {
            if let Some(clock) = &self.clock {
                // Virtual seconds → the shared observability timeline.
                clock.advance_to(Duration::from_secs_f64(now.max(0.0)));
            }
            match event {
                Event::QueryReady { query } => {
                    rotation.push_back(query);
                    pump_dispatch!(now);
                }
                Event::DispatchFree => {
                    dispatch_busy = false;
                    pump_dispatch!(now);
                }
                Event::TaskArrive { task } => {
                    let q = &mut queries[tasks[task].query];
                    if q.first_task_s.is_none() {
                        q.first_task_s = Some(now);
                    }
                    let node_id = tasks[task].spec.node;
                    nodes[node_id].queue.push_back(task);
                    service_node(
                        &cfg,
                        &mut nodes[node_id],
                        node_id,
                        &mut tasks,
                        now,
                        &mut heap,
                        &mut seq,
                        &mut merge_free_at,
                        &mut push,
                    );
                }
                Event::NodeWake { node, version } => {
                    if nodes[node].version != version {
                        continue; // stale wake-up
                    }
                    service_node(
                        &cfg,
                        &mut nodes[node],
                        node,
                        &mut tasks,
                        now,
                        &mut heap,
                        &mut seq,
                        &mut merge_free_at,
                        &mut push,
                    );
                }
                Event::MergeDone { task } => {
                    let q = &mut queries[tasks[task].query];
                    q.remaining -= 1;
                    if q.completion_s < now {
                        q.completion_s = now;
                    }
                }
            }
        }

        debug_assert!(queries.iter().all(|q| q.remaining == 0));
        let mut retries_per_query = vec![0usize; queries.len()];
        for t in &tasks {
            retries_per_query[t.query] += t.executions.saturating_sub(1) as usize;
        }
        return queries
            .into_iter()
            .zip(retries_per_query)
            .map(|(q, retries)| QueryReport {
                label: q.label,
                submit_s: q.submit_s,
                first_task_s: q.first_task_s.unwrap_or(q.submit_s + cfg.frontend_base_s),
                completion_s: q.completion_s,
                elapsed_s: q.completion_s - q.submit_s,
                tasks: q.tasks,
                disk_bytes: q.disk_bytes,
                retries,
            })
            .collect();

        // Helper: advance a node's active tasks to `now`, retire finished
        // work, admit queued tasks, and schedule the next wake.
        #[allow(clippy::too_many_arguments)]
        fn service_node(
            cfg: &SimConfig,
            node: &mut NodeState,
            node_id: usize,
            tasks: &mut [TaskState],
            now: f64,
            heap: &mut BinaryHeap<Scheduled>,
            seq: &mut u64,
            merge_free_at: &mut f64,
            push: &mut impl FnMut(&mut BinaryHeap<Scheduled>, &mut u64, f64, Event),
        ) {
            // 1. Advance I/O by the elapsed interval at the old sharing rate.
            let k = node.active.iter().filter(|a| a.fixed_end.is_none()).count();
            if k > 0 {
                let per_task = cfg.disk_aggregate_bw(k) / k as f64;
                let dt = (now - node.last_update).max(0.0);
                for a in node.active.iter_mut().filter(|a| a.fixed_end.is_none()) {
                    a.remaining_io -= per_task * dt;
                }
            }
            node.last_update = now;

            // 2. Transition finished I/O phases into fixed phases.
            for a in node.active.iter_mut() {
                if a.fixed_end.is_none() && a.remaining_io <= IO_EPS {
                    a.remaining_io = 0.0;
                    let spec = &tasks[a.task].spec;
                    let fixed = spec.seeks as f64 * cfg.disk_seek_s
                        + spec.cached_bytes as f64 / cfg.cache_bw
                        + spec.cpu_s;
                    a.fixed_end = Some(now + fixed);
                }
            }

            // 3. Retire tasks whose fixed phase is done → master merge.
            let mut retired = Vec::new();
            node.active.retain(|a| match a.fixed_end {
                Some(end) if end <= now + EPS => {
                    retired.push(a.task);
                    false
                }
                _ => true,
            });
            for tid in retired {
                let execution = {
                    let t = &mut tasks[tid];
                    t.executions += 1;
                    t.executions
                };
                // Seeded transient failure: the execution's work is lost
                // and the task re-enters the queue after the retry delay.
                // Past `max_retries` re-executions a healthy replica
                // serves it (the model bounds latency, not success).
                if let Some(f) = &cfg.faults {
                    if f.task_failure_prob > 0.0
                        && execution <= f.max_retries
                        && fault_draw(f.seed, tid, execution) < f.task_failure_prob
                    {
                        push(
                            heap,
                            seq,
                            now + f.retry_delay_s.max(0.0),
                            Event::TaskArrive { task: tid },
                        );
                        continue;
                    }
                }
                let spec = &tasks[tid].spec;
                let service = cfg.merge_s_per_chunk
                    + spec.result_bytes as f64 / cfg.net_bw
                    + spec.result_bytes as f64 / cfg.merge_bw;
                let start = merge_free_at.max(now);
                *merge_free_at = start + service;
                push(heap, seq, *merge_free_at, Event::MergeDone { task: tid });
            }

            // 4. Admit queued tasks into free slots, per the scheduling
            //    policy. FIFO (the paper's testbed) pops arrival order —
            //    Figure 14's starvation. InteractiveFirst admits queued
            //    interactive tasks ahead of scans and keeps
            //    `reserved_slots` closed to scans entirely, so a node
            //    saturated with queued scans still turns interactive
            //    work around in one task time.
            while node.active.len() < cfg.slots_per_node {
                let picked = match cfg.scheduler {
                    crate::config::SchedulerPolicy::Fifo => node.queue.pop_front(),
                    crate::config::SchedulerPolicy::InteractiveFirst { reserved_slots } => {
                        if let Some(pos) =
                            node.queue.iter().position(|&t| tasks[t].spec.interactive)
                        {
                            node.queue.remove(pos)
                        } else {
                            let scans_active = node
                                .active
                                .iter()
                                .filter(|a| !tasks[a.task].spec.interactive)
                                .count();
                            let scan_cap = cfg.slots_per_node.saturating_sub(reserved_slots);
                            if scans_active < scan_cap {
                                node.queue.pop_front()
                            } else {
                                None
                            }
                        }
                    }
                };
                let Some(tid) = picked else {
                    break;
                };
                let spec = &tasks[tid].spec;
                if spec.disk_bytes == 0 {
                    let fixed = spec.seeks as f64 * cfg.disk_seek_s
                        + spec.cached_bytes as f64 / cfg.cache_bw
                        + spec.cpu_s;
                    node.active.push(ActiveTask {
                        task: tid,
                        remaining_io: 0.0,
                        fixed_end: Some(now + fixed),
                    });
                } else {
                    node.active.push(ActiveTask {
                        task: tid,
                        remaining_io: spec.disk_bytes as f64,
                        fixed_end: None,
                    });
                }
            }

            // 5. Schedule the next wake at the earliest projected
            //    completion among active phases.
            node.version += 1;
            let k = node.active.iter().filter(|a| a.fixed_end.is_none()).count();
            let mut next: Option<f64> = None;
            if k > 0 {
                let per_task = cfg.disk_aggregate_bw(k) / k as f64;
                for a in node.active.iter().filter(|a| a.fixed_end.is_none()) {
                    let t = now + a.remaining_io / per_task;
                    next = Some(next.map_or(t, |n: f64| n.min(t)));
                }
            }
            for a in node.active.iter() {
                if let Some(end) = a.fixed_end {
                    next = Some(next.map_or(end, |n: f64| n.min(end)));
                }
            }
            if let Some(t) = next {
                push(
                    heap,
                    seq,
                    t.max(now),
                    Event::NodeWake {
                        node: node_id,
                        version: node.version,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SimConfig {
        SimConfig {
            nodes: 2,
            slots_per_node: 2,
            disk_bw: 100.0, // 100 bytes/s for easy arithmetic
            disk_contention_alpha: 1.0,
            disk_seek_s: 0.01,
            cache_bw: 10_000.0,
            dispatch_s_per_chunk: 0.1,
            merge_s_per_chunk: 0.05,
            merge_bw: 1_000.0,
            net_bw: 1_000.0,
            frontend_base_s: 1.0,
            faults: None,
            scheduler: crate::config::SchedulerPolicy::Fifo,
        }
    }

    fn job(label: &str, submit: f64, tasks: Vec<ChunkTask>) -> QueryJob {
        QueryJob {
            label: label.to_string(),
            submit_s: submit,
            tasks,
        }
    }

    #[test]
    fn single_task_accounting() {
        let mut sim = Simulator::new(tiny_config());
        sim.submit(job(
            "q",
            0.0,
            vec![ChunkTask {
                node: 0,
                disk_bytes: 100,
                seeks: 2,
                ..Default::default()
            }],
        ));
        let r = &sim.run()[0];
        // frontend 1.0 + dispatch 0.1 + io 1.0 + seeks 0.02 + merge 0.05.
        assert!((r.elapsed_s - 2.17).abs() < 1e-6, "elapsed {}", r.elapsed_s);
        assert_eq!(r.tasks, 1);
        assert_eq!(r.disk_bytes, 100);
    }

    #[test]
    fn zero_task_query_costs_frontend_only() {
        let mut sim = Simulator::new(tiny_config());
        sim.submit(job("empty", 5.0, vec![]));
        let r = &sim.run()[0];
        assert!((r.elapsed_s - 1.0).abs() < 1e-9);
        assert!((r.completion_s - 6.0).abs() < 1e-9);
    }

    #[test]
    fn disk_sharing_slows_concurrent_scans() {
        // Two 100-byte scans on one node, 2 slots: aggregate bandwidth
        // under k=2 is 100/(1+1) = 50 B/s, 25 B/s each → IO takes 4 s,
        // vs 1 s for a lone scan.
        let mk = |n| {
            let mut tasks = Vec::new();
            for _ in 0..n {
                tasks.push(ChunkTask {
                    node: 0,
                    disk_bytes: 100,
                    ..Default::default()
                });
            }
            tasks
        };
        let mut sim1 = Simulator::new(tiny_config());
        sim1.submit(job("one", 0.0, mk(1)));
        let solo = sim1.run()[0].elapsed_s;

        let mut sim2 = Simulator::new(tiny_config());
        sim2.submit(job("two", 0.0, mk(2)));
        let both = sim2.run()[0].elapsed_s;
        // Both scans finish together after ~4s of IO; solo after ~1s.
        assert!(both > solo + 2.5, "contended {both} vs solo {solo}");
    }

    #[test]
    fn fifo_queue_starves_later_tasks() {
        // Fill both slots of node 0 with big scans, then a tiny task: the
        // tiny one must wait for a slot (Figure 14 behaviour).
        let big = ChunkTask {
            node: 0,
            disk_bytes: 1000,
            ..Default::default()
        };
        let tiny = ChunkTask {
            node: 0,
            seeks: 1,
            ..Default::default()
        };
        let mut sim = Simulator::new(tiny_config());
        sim.submit(job("big", 0.0, vec![big.clone(), big]));
        sim.submit(job("tiny", 0.1, vec![tiny.clone()]));
        let rs = sim.run();
        let big_done = rs[0].completion_s;
        let tiny_done = rs[1].completion_s;
        // The tiny task runs only after one big scan releases its slot —
        // both big scans share the disk and finish together, so tiny ends
        // after them despite needing ~10 ms of work.
        assert!(
            tiny_done >= big_done - 0.2,
            "tiny {tiny_done} should be stuck behind big {big_done}"
        );

        // With a free node it would be fast:
        let mut sim2 = Simulator::new(tiny_config());
        sim2.submit(job(
            "tiny2",
            0.1,
            vec![ChunkTask {
                node: 1,
                seeks: 1,
                ..Default::default()
            }],
        ));
        assert!(sim2.run()[0].elapsed_s < 1.5);
    }

    #[test]
    fn interactive_first_unstarves_the_tiny_task() {
        // The same workload as `fifo_queue_starves_later_tasks`, but the
        // tiny task is marked interactive and the node reserves one slot:
        // the tiny task no longer waits for a big scan to finish.
        let big = ChunkTask {
            node: 0,
            disk_bytes: 1000,
            ..Default::default()
        };
        let tiny = ChunkTask {
            node: 0,
            seeks: 1,
            interactive: true,
            ..Default::default()
        };
        let policy = crate::config::SchedulerPolicy::InteractiveFirst { reserved_slots: 1 };
        let mut sim = Simulator::new(tiny_config().with_scheduler(policy));
        sim.submit(job("big", 0.0, vec![big.clone(), big]));
        sim.submit(job("tiny", 0.1, vec![tiny]));
        let rs = sim.run();
        let big_done = rs[0].completion_s;
        let tiny_done = rs[1].completion_s;
        // The reserve keeps a slot scan-free, so the tiny task starts as
        // soon as it reaches the node and finishes in roughly frontend +
        // dispatch + seek time — far ahead of the 10s-of-IO scans.
        assert!(
            tiny_done < 2.0,
            "interactive task {tiny_done} should not queue behind scans"
        );
        assert!(
            big_done > tiny_done + 5.0,
            "scans ({big_done}) should still be running long after tiny ({tiny_done})"
        );
        // The scans are capped to one slot but both still complete.
        assert_eq!(rs[0].tasks, 2);
        assert!(big_done.is_finite() && big_done > 0.0);
    }

    #[test]
    fn interactive_first_is_deterministic() {
        let policy = crate::config::SchedulerPolicy::InteractiveFirst { reserved_slots: 1 };
        let run = || {
            let mut sim = Simulator::new(tiny_config().with_scheduler(policy));
            for q in 0..4 {
                let tasks = (0..6)
                    .map(|i| ChunkTask {
                        node: i % 2,
                        disk_bytes: if q % 2 == 0 { 500 } else { 0 },
                        seeks: 1,
                        interactive: q % 2 == 1,
                        ..Default::default()
                    })
                    .collect();
                sim.submit(job(&format!("q{q}"), q as f64 * 0.25, tasks));
            }
            sim.run()
                .iter()
                .map(|r| (r.label.clone(), r.completion_s))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dispatch_is_serial_across_chunks() {
        // 100 zero-cost tasks: elapsed ≈ frontend + 100 * dispatch + merge
        // chain.
        let tasks: Vec<ChunkTask> = (0..100)
            .map(|i| ChunkTask {
                node: i % 2,
                ..Default::default()
            })
            .collect();
        let mut sim = Simulator::new(tiny_config());
        sim.submit(job("hv1", 0.0, tasks));
        let r = &sim.run()[0];
        // Dispatch serialization: 100 * 0.1 = 10 s; merges overlap
        // dispatch but the last merge lands after the last dispatch.
        assert!(r.elapsed_s >= 11.0, "elapsed {}", r.elapsed_s);
        assert!(r.elapsed_s <= 12.0, "elapsed {}", r.elapsed_s);
    }

    #[test]
    fn merge_is_serial_across_results() {
        // Many large results returned at once: master merge serializes.
        let tasks: Vec<ChunkTask> = (0..4)
            .map(|i| ChunkTask {
                node: i % 2,
                result_bytes: 1000, // 1s net + 1s merge each
                ..Default::default()
            })
            .collect();
        let mut sim = Simulator::new(tiny_config());
        sim.submit(job("merge-bound", 0.0, tasks));
        let r = &sim.run()[0];
        // 4 merges × (0.05 + 1 + 1) ≈ 8.2 s dominate.
        assert!(r.elapsed_s >= 8.0, "elapsed {}", r.elapsed_s);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let build = || {
            let mut sim = Simulator::new(tiny_config());
            for q in 0..5 {
                let tasks: Vec<ChunkTask> = (0..7)
                    .map(|i| ChunkTask {
                        node: (q + i) % 2,
                        disk_bytes: 50 + 10 * i as u64,
                        seeks: i as u32,
                        result_bytes: 5 * i as u64,
                        ..Default::default()
                    })
                    .collect();
                sim.submit(job(&format!("q{q}"), q as f64 * 0.3, tasks));
            }
            sim.run().iter().map(|r| r.completion_s).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn fault_free_runs_report_zero_retries() {
        let mut sim = Simulator::new(tiny_config());
        sim.submit(job(
            "q",
            0.0,
            vec![ChunkTask {
                node: 0,
                disk_bytes: 100,
                ..Default::default()
            }],
        ));
        assert_eq!(sim.run()[0].retries, 0);
    }

    #[test]
    fn injected_failures_retry_and_slow_queries() {
        use crate::config::FaultConfig;
        let tasks = || -> Vec<ChunkTask> {
            (0..32)
                .map(|i| ChunkTask {
                    node: i % 2,
                    disk_bytes: 50,
                    ..Default::default()
                })
                .collect()
        };
        let mut clean = Simulator::new(tiny_config());
        clean.submit(job("q", 0.0, tasks()));
        let clean_r = &clean.run()[0];

        let chaotic_cfg = SimConfig {
            faults: Some(FaultConfig {
                seed: 11,
                task_failure_prob: 0.5,
                retry_delay_s: 0.5,
                max_retries: 4,
            }),
            ..tiny_config()
        };
        let mut chaotic = Simulator::new(chaotic_cfg);
        chaotic.submit(job("q", 0.0, tasks()));
        let chaotic_r = &chaotic.run()[0];
        assert!(
            chaotic_r.retries > 0,
            "50% failure over 32 tasks must retry"
        );
        assert!(
            chaotic_r.elapsed_s > clean_r.elapsed_s,
            "retries cost time: {} vs {}",
            chaotic_r.elapsed_s,
            clean_r.elapsed_s
        );
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        use crate::config::FaultConfig;
        let run_with = |seed: u64| {
            let cfg = SimConfig {
                faults: Some(FaultConfig {
                    seed,
                    task_failure_prob: 0.3,
                    retry_delay_s: 0.25,
                    max_retries: 3,
                }),
                ..tiny_config()
            };
            let mut sim = Simulator::new(cfg);
            for q in 0..3 {
                let tasks: Vec<ChunkTask> = (0..16)
                    .map(|i| ChunkTask {
                        node: i % 2,
                        disk_bytes: 40,
                        ..Default::default()
                    })
                    .collect();
                sim.submit(job(&format!("q{q}"), q as f64 * 0.2, tasks));
            }
            sim.run()
                .iter()
                .map(|r| (r.retries, r.completion_s))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_with(5), run_with(5), "same seed ⇒ same schedule");
        assert_ne!(
            run_with(5),
            run_with(6),
            "different seed ⇒ different schedule"
        );
    }

    #[test]
    fn retries_are_bounded_by_max_retries() {
        use crate::config::FaultConfig;
        // Failure probability 1.0: every execution that may fail does.
        // Each task still completes after exactly max_retries re-runs.
        let cfg = SimConfig {
            faults: Some(FaultConfig {
                seed: 1,
                task_failure_prob: 1.0,
                retry_delay_s: 0.1,
                max_retries: 2,
            }),
            ..tiny_config()
        };
        let mut sim = Simulator::new(cfg);
        sim.submit(job(
            "q",
            0.0,
            vec![ChunkTask {
                node: 0,
                disk_bytes: 10,
                ..Default::default()
            }],
        ));
        let r = &sim.run()[0];
        assert_eq!(r.retries, 2);
    }

    #[test]
    fn bound_virtual_clock_tracks_simulation_time() {
        use qserv_obs::Clock;
        let clock = VirtualClock::shared();
        let mut sim = Simulator::new(tiny_config());
        sim.bind_clock(Arc::clone(&clock));
        sim.submit(job(
            "q",
            0.0,
            vec![ChunkTask {
                node: 0,
                disk_bytes: 100,
                seeks: 2,
                ..Default::default()
            }],
        ));
        let r = &sim.run()[0];
        // The clock ends at the last event's virtual time — the final
        // merge completion — to within f64→Duration rounding.
        let end = clock.now().as_secs_f64();
        assert!(
            (end - r.completion_s).abs() < 1e-6,
            "clock {end} vs completion {}",
            r.completion_s
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_rejected() {
        let mut sim = Simulator::new(tiny_config());
        sim.submit(job(
            "bad",
            0.0,
            vec![ChunkTask {
                node: 99,
                ..Default::default()
            }],
        ));
    }

    #[test]
    fn weak_scaling_is_flat_for_per_node_constant_work() {
        // Same per-node data, more nodes: elapsed stays ~constant apart
        // from dispatch growth — the §6.3 weak-scaling experiment shape.
        let elapsed_at = |nodes: usize| {
            let mut cfg = tiny_config();
            cfg.nodes = nodes;
            // Keep the serial master negligible here: this test isolates
            // the worker-side scan behaviour (HV2's flat curve). The
            // master-overhead growth is tested via dispatch/merge tests
            // above and is exactly the HV1 linear effect of Figure 11.
            cfg.dispatch_s_per_chunk = 0.0001;
            cfg.merge_s_per_chunk = 0.0001;
            let tasks: Vec<ChunkTask> = (0..nodes)
                .map(|n| ChunkTask {
                    node: n,
                    disk_bytes: 200,
                    ..Default::default()
                })
                .collect();
            let mut sim = Simulator::new(cfg);
            sim.submit(job("scan", 0.0, tasks));
            sim.run()[0].elapsed_s
        };
        let e2 = elapsed_at(2);
        let e16 = elapsed_at(16);
        assert!(
            (e16 - e2).abs() / e2 < 0.2,
            "weak scaling should be flat: {e2} vs {e16}"
        );
    }
}
