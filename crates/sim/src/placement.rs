//! Placement-aware scenario composition for the cluster simulator.
//!
//! The live system's `core::placement` subsystem (epoch-versioned
//! chunk→replica maps, repair after node loss, rebalancing) operates at
//! cluster scales the test suite cannot build for real — the paper's
//! testbed is 150 nodes. [`SimPlacement`] mirrors the placement math at
//! simulator scale: the same round-robin replica layout the loader
//! produces, the same fewest-loaded repair target choice, the same
//! epoch discipline. Scenario builders then compose [`Simulator`] runs
//! per epoch phase:
//!
//! * [`weak_scaling`] — the §6.3 experiment shape: node count grows,
//!   per-node data stays fixed, full-scan latency should stay flat.
//! * [`node_loss_scenario`] — a node dies mid-workload. With
//!   *rebalancing on*, repair copies restore the replication factor and
//!   the follow-up scan runs on a balanced map; with *rebalancing off*,
//!   the dead node's chunks pile onto its surviving replica holders and
//!   load concentrates.
//!
//! Determinism matters here the way it does everywhere else in this
//! crate: same inputs ⇒ same plan, same virtual timings, no wall clock.

use crate::config::SimConfig;
use crate::simulator::{ChunkTask, QueryJob, Simulator};
use std::collections::{BTreeMap, BTreeSet};

/// A simulator-scale mirror of the live placement map: chunk→replica
/// assignments over member nodes, versioned by epoch.
#[derive(Clone, Debug)]
pub struct SimPlacement {
    epoch: u64,
    replication: usize,
    map: BTreeMap<usize, Vec<usize>>,
    members: BTreeSet<usize>,
}

/// One repair copy: ship `bytes` of chunk payload from a surviving
/// replica holder to the chosen recipient.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyOp {
    /// Chunk being re-replicated.
    pub chunk: usize,
    /// Surviving holder the payload streams from.
    pub src: usize,
    /// Fewest-loaded member receiving the new replica.
    pub dst: usize,
    /// Payload size.
    pub bytes: u64,
}

/// The deterministic plan a node loss produces.
#[derive(Clone, Debug, Default)]
pub struct RepairPlan {
    /// Epoch of the map after the loss + repair committed.
    pub epoch: u64,
    /// Copies needed to restore the replication factor.
    pub copies: Vec<CopyOp>,
    /// Chunks whose every replica lived on the lost node.
    pub chunks_lost: Vec<usize>,
}

impl SimPlacement {
    /// Round-robin layout over `nodes` members: chunk `c` replica `r`
    /// lands on node `(c + r) % nodes` — the loader's static strategy.
    pub fn round_robin(chunks: usize, nodes: usize, replication: usize) -> SimPlacement {
        assert!(nodes > 0, "a cluster has at least one node");
        let replication = replication.min(nodes);
        let map = (0..chunks)
            .map(|c| (c, (0..replication).map(|r| (c + r) % nodes).collect()))
            .collect();
        SimPlacement {
            epoch: 0,
            replication,
            map,
            members: (0..nodes).collect(),
        }
    }

    /// Current map version.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live members, ascending.
    pub fn members(&self) -> Vec<usize> {
        self.members.iter().copied().collect()
    }

    /// Replica nodes of `chunk`, in placement order.
    pub fn nodes_of(&self, chunk: usize) -> &[usize] {
        self.map.get(&chunk).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The node a scan task for `chunk` runs on: the first replica.
    /// After a loss without repair this falls back to whichever replica
    /// survives — which is exactly how load concentrates.
    pub fn primary(&self, chunk: usize) -> Option<usize> {
        self.nodes_of(chunk).first().copied()
    }

    /// Chunks currently at exactly one replica — one more loss away
    /// from unavailability.
    pub fn factor_one_chunks(&self) -> usize {
        self.map.values().filter(|r| r.len() == 1).count()
    }

    /// Chunks with no replica left at all (unavailable data).
    pub fn lost_chunks(&self) -> usize {
        self.map.values().filter(|r| r.is_empty()).count()
    }

    /// Replica count per member (members at zero included).
    pub fn load(&self) -> BTreeMap<usize, usize> {
        let mut load: BTreeMap<usize, usize> = self.members.iter().map(|&n| (n, 0)).collect();
        for replicas in self.map.values() {
            for &n in replicas {
                *load.entry(n).or_insert(0) += 1;
            }
        }
        load
    }

    /// Removes `node` from membership and its replica lists, committing
    /// one epoch. Returns the chunks that dropped below factor.
    pub fn fail_node(&mut self, node: usize) -> Vec<usize> {
        self.members.remove(&node);
        let mut under = Vec::new();
        for (&chunk, replicas) in self.map.iter_mut() {
            let before = replicas.len();
            replicas.retain(|&n| n != node);
            if replicas.len() < before {
                under.push(chunk);
            }
        }
        self.epoch += 1;
        under
    }

    /// Plans and applies the repair for a lost node: every
    /// under-replicated chunk gains a replica on the fewest-loaded
    /// member not already holding it (ties to the lowest id), streamed
    /// from its first surviving holder. One epoch per loss+repair.
    pub fn fail_and_repair(&mut self, node: usize, chunk_bytes: u64) -> RepairPlan {
        let under = self.fail_node(node);
        let mut plan = RepairPlan::default();
        let mut load = self.load();
        for chunk in under {
            let holders = self.map.get(&chunk).cloned().unwrap_or_default();
            let Some(&src) = holders.first() else {
                plan.chunks_lost.push(chunk);
                continue;
            };
            if holders.len() >= self.replication.min(self.members.len()) {
                continue;
            }
            let Some((&dst, _)) = load
                .iter()
                .filter(|(n, _)| !holders.contains(n))
                .min_by_key(|&(&n, &c)| (c, n))
            else {
                continue;
            };
            self.map.get_mut(&chunk).expect("chunk mapped").push(dst);
            *load.entry(dst).or_insert(0) += 1;
            plan.copies.push(CopyOp {
                chunk,
                src,
                dst,
                bytes: chunk_bytes,
            });
        }
        plan.epoch = self.epoch;
        plan
    }
}

/// Routes one scan task per chunk onto the least-loaded of its
/// replicas (ties to the lowest node id) — the deterministic mirror of
/// the live dispatcher's load-aware replica choice. Chunks that lost
/// all but one replica have no choice, which is exactly how an
/// unrepaired loss concentrates load.
pub fn route_scan(placement: &SimPlacement) -> BTreeMap<usize, usize> {
    let mut assigned: BTreeMap<usize, usize> = BTreeMap::new();
    let mut per_node: BTreeMap<usize, usize> = BTreeMap::new();
    for (&chunk, replicas) in &placement.map {
        let Some(&node) = replicas
            .iter()
            .min_by_key(|&&n| (per_node.get(&n).copied().unwrap_or(0), n))
        else {
            continue;
        };
        *per_node.entry(node).or_insert(0) += 1;
        assigned.insert(chunk, node);
    }
    assigned
}

/// A full-scan query routed by the placement map: one uncached scan
/// task per chunk on the replica [`route_scan`] picked.
pub fn scan_job(
    placement: &SimPlacement,
    label: &str,
    submit_s: f64,
    bytes_per_chunk: u64,
) -> QueryJob {
    QueryJob {
        label: format!("{label}@e{}", placement.epoch()),
        submit_s,
        tasks: route_scan(placement)
            .into_values()
            .map(|node| ChunkTask {
                node,
                disk_bytes: bytes_per_chunk,
                result_bytes: 256,
                ..ChunkTask::default()
            })
            .collect(),
    }
}

/// An index-routed point lookup under the placement map: the secondary
/// index already resolved the keys to their home `chunks`, so only
/// those chunks get a task, and each task reads an index probe's worth
/// of pages (`probe_bytes`) instead of the whole chunk. Compare against
/// [`scan_job`] over the same placement to see the planner's
/// index-vs-scan cost gap in simulator terms.
pub fn lookup_job(
    placement: &SimPlacement,
    label: &str,
    submit_s: f64,
    chunks: &[usize],
    probe_bytes: u64,
) -> QueryJob {
    let mut per_node: BTreeMap<usize, usize> = BTreeMap::new();
    let mut tasks = Vec::new();
    for &chunk in chunks {
        let Some(&node) = placement
            .nodes_of(chunk)
            .iter()
            .min_by_key(|&&n| (per_node.get(&n).copied().unwrap_or(0), n))
        else {
            continue;
        };
        *per_node.entry(node).or_insert(0) += 1;
        tasks.push(ChunkTask {
            node,
            disk_bytes: probe_bytes,
            result_bytes: 256,
            ..ChunkTask::default()
        });
    }
    QueryJob {
        label: format!("{label}@e{}", placement.epoch()),
        submit_s,
        tasks,
    }
}

/// The repair traffic of a [`RepairPlan`] as a simulator job: each copy
/// reads the payload off the source replica's disk and ships it to the
/// recipient over the fabric (modeled as the task's result bytes).
pub fn repair_job(plan: &RepairPlan, submit_s: f64) -> QueryJob {
    QueryJob {
        label: format!("repair@e{}", plan.epoch),
        submit_s,
        tasks: plan
            .copies
            .iter()
            .map(|c| ChunkTask {
                node: c.src,
                disk_bytes: c.bytes,
                result_bytes: c.bytes,
                ..ChunkTask::default()
            })
            .collect(),
    }
}

/// One weak-scaling measurement point.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Cluster size.
    pub nodes: usize,
    /// Chunks scanned (grows with the cluster: fixed per-node data).
    pub chunks: usize,
    /// Full-scan completion, virtual seconds.
    pub elapsed_s: f64,
}

/// §6.3-shaped weak scaling under placement routing: per-node data
/// fixed, node count grows, one full scan per point.
pub fn weak_scaling(
    base: &SimConfig,
    node_counts: &[usize],
    chunks_per_node: usize,
    bytes_per_chunk: u64,
) -> Vec<ScalePoint> {
    node_counts
        .iter()
        .map(|&nodes| {
            let placement = SimPlacement::round_robin(nodes * chunks_per_node, nodes, 2);
            let mut sim = Simulator::new(base.clone().with_nodes(nodes));
            sim.submit(scan_job(&placement, "scan", 0.0, bytes_per_chunk));
            let reports = sim.run();
            ScalePoint {
                nodes,
                chunks: nodes * chunks_per_node,
                elapsed_s: reports[0].elapsed_s,
            }
        })
        .collect()
}

/// Outcome of the node-loss scenario at one rebalancing setting.
#[derive(Clone, Debug)]
pub struct NodeLossOutcome {
    /// Scan latency before the loss (epoch 0).
    pub before_s: f64,
    /// Scan latency after both losses settled — on the repaired map if
    /// rebalancing was on, on the degraded survivor-fallback map if
    /// off (lost chunks simply have no task, so this under-counts the
    /// degraded case's true cost: the data is gone).
    pub after_s: f64,
    /// Chunks left with exactly one replica (one loss from gone).
    pub factor_one: usize,
    /// Chunks left with *no* replica: unavailable data. Always 0 with
    /// rebalancing on; the second loss makes it non-zero without.
    pub chunks_lost: usize,
    /// Epoch of the final map.
    pub epoch: u64,
    /// Repair copies performed (0 with rebalancing off).
    pub repair_copies: usize,
}

/// Two sequential permanent node losses mid-workload — adjacent nodes,
/// so their replica sets overlap. With `rebalancing = true` each loss
/// is repaired before the next (factor restored, nothing lost); with
/// `false` the survivors serve whatever replicas remain, and the
/// second loss erases every chunk whose only replicas lived on the two
/// dead nodes.
pub fn node_loss_scenario(
    base: &SimConfig,
    nodes: usize,
    chunks_per_node: usize,
    bytes_per_chunk: u64,
    rebalancing: bool,
) -> NodeLossOutcome {
    let chunks = nodes * chunks_per_node;
    let mut placement = SimPlacement::round_robin(chunks, nodes, 2);

    let mut sim = Simulator::new(base.clone().with_nodes(nodes));
    sim.submit(scan_job(&placement, "before", 0.0, bytes_per_chunk));
    let before_s = sim.run()[0].elapsed_s;

    let mut repair_copies = 0;
    for lost in [nodes / 2, nodes / 2 + 1] {
        if rebalancing {
            let plan = placement.fail_and_repair(lost, bytes_per_chunk);
            // The repair traffic itself runs through the simulator: the
            // copies' virtual cost is part of the scenario timeline.
            let mut sim = Simulator::new(base.clone().with_nodes(nodes));
            sim.submit(repair_job(&plan, 0.0));
            sim.run();
            repair_copies += plan.copies.len();
        } else {
            placement.fail_node(lost);
        }
    }

    let mut sim = Simulator::new(base.clone().with_nodes(nodes));
    sim.submit(scan_job(&placement, "after", 0.0, bytes_per_chunk));
    let after_s = sim.run()[0].elapsed_s;

    NodeLossOutcome {
        before_s,
        after_s,
        factor_one: placement.factor_one_chunks(),
        chunks_lost: placement.lost_chunks(),
        epoch: placement.epoch(),
        repair_copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_layout_matches_the_loader() {
        let p = SimPlacement::round_robin(12, 4, 2);
        assert_eq!(p.nodes_of(0), &[0, 1]);
        assert_eq!(p.nodes_of(3), &[3, 0]);
        assert_eq!(p.epoch(), 0);
        let load = p.load();
        // 12 chunks × 2 replicas over 4 nodes: every node carries 6.
        assert!(load.values().all(|&c| c == 6), "{load:?}");
    }

    #[test]
    fn fail_and_repair_restores_factor_and_balances() {
        let mut p = SimPlacement::round_robin(12, 4, 2);
        let plan = p.fail_and_repair(1, 1 << 20);
        assert_eq!(plan.epoch, 1);
        assert!(plan.chunks_lost.is_empty());
        // Node 1 held 6 replicas; each needs exactly one copy.
        assert_eq!(plan.copies.len(), 6);
        for chunk in 0..12 {
            assert_eq!(p.nodes_of(chunk).len(), 2, "chunk {chunk} back at factor");
            assert!(!p.nodes_of(chunk).contains(&1));
        }
        let load = p.load();
        let (hi, lo) = (*load.values().max().unwrap(), *load.values().min().unwrap());
        assert!(hi - lo <= 1, "repair targets spread evenly: {load:?}");
    }

    #[test]
    fn factor_one_loss_reports_lost_chunks() {
        let mut p = SimPlacement::round_robin(6, 3, 1);
        let plan = p.fail_and_repair(0, 1024);
        assert_eq!(plan.chunks_lost, vec![0, 3]);
        assert!(plan.copies.is_empty());
    }

    #[test]
    fn rebalancing_off_loses_data_on_the_second_loss() {
        let base = SimConfig::paper_cluster();
        let degraded = node_loss_scenario(&base, 10, 4, 64 << 20, false);
        let repaired = node_loss_scenario(&base, 10, 4, 64 << 20, true);
        assert!(degraded.repair_copies == 0 && repaired.repair_copies > 0);
        // Repaired: every chunk back at factor 2, nothing lost, and the
        // post-loss scan stays close to the pre-loss baseline.
        assert_eq!(repaired.chunks_lost, 0);
        assert_eq!(repaired.factor_one, 0);
        assert_eq!(repaired.epoch, 2);
        assert!(repaired.after_s < repaired.before_s * 1.5);
        // Degraded: the adjacent second loss erased the chunks whose
        // replicas lived only on the two dead nodes, and the survivors
        // sit one loss away from losing more.
        assert!(degraded.chunks_lost > 0, "overlap chunks must be gone");
        assert!(degraded.factor_one > 0);
    }

    #[test]
    fn weak_scaling_stays_flat_under_placement_routing() {
        let base = SimConfig::paper_cluster();
        let points = weak_scaling(&base, &[30, 90, 150], 8, 64 << 20);
        let first = points[0].elapsed_s;
        for p in &points {
            assert!(
                (p.elapsed_s / first) < 1.6,
                "{}-node scan {}s drifted off {}s",
                p.nodes,
                p.elapsed_s,
                first
            );
        }
    }

    #[test]
    fn index_lookup_outruns_the_scan() {
        let base = SimConfig::paper_cluster();
        let placement = SimPlacement::round_robin(120, 10, 2);

        let mut sim = Simulator::new(base.clone().with_nodes(10));
        sim.submit(scan_job(&placement, "scan", 0.0, 64 << 20));
        sim.submit(lookup_job(
            &placement,
            "lookup",
            0.0,
            &[3, 47, 91],
            64 << 10,
        ));
        let reports = sim.run();

        let scan = reports
            .iter()
            .find(|r| r.label.starts_with("scan"))
            .expect("scan report");
        let lookup = reports
            .iter()
            .find(|r| r.label.starts_with("lookup"))
            .expect("lookup report");
        assert_eq!(scan.tasks, 120);
        assert_eq!(lookup.tasks, 3);
        // The cost gap the planner's index-vs-scan choice banks on:
        // three index probes finish several times before the 120-chunk
        // scan even while queueing behind it on a shared cluster.
        assert!(
            lookup.elapsed_s * 5.0 < scan.elapsed_s,
            "lookup {}s vs scan {}s",
            lookup.elapsed_s,
            scan.elapsed_s
        );
        assert!(lookup.disk_bytes * 100 < scan.disk_bytes);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let base = SimConfig::paper_cluster();
        let a = node_loss_scenario(&base, 12, 4, 32 << 20, true);
        let b = node_loss_scenario(&base, 12, 4, 32 << 20, true);
        assert_eq!(a.before_s.to_bits(), b.before_s.to_bits());
        assert_eq!(a.after_s.to_bits(), b.after_s.to_bits());
        assert_eq!(a.repair_copies, b.repair_copies);
    }
}
