//! Simulator configuration, calibrated to the paper's testbed.

/// Cluster cost model parameters.
///
/// [`SimConfig::paper_cluster`] reproduces the SC'11 testbed (§6.1.1);
/// every knob is documented with the measurement it is calibrated against.
/// EXPERIMENTS.md records the calibration in one place.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of worker nodes (the paper tests 40, 100, 150).
    pub nodes: usize,
    /// Queries a node executes in parallel (paper: "each node was
    /// configured to execute up to 4 queries in parallel").
    pub slots_per_node: usize,
    /// Sequential disk bandwidth, bytes/s, for a single uncontended stream
    /// (WD RE2 spec sheet: 98 MB/s, §6.2 HV2).
    pub disk_bw: f64,
    /// Disk bandwidth degradation per additional concurrent stream:
    /// aggregate = `disk_bw / (1 + alpha * (k - 1))`. Calibrated so 4-way
    /// contention lands near the paper's 27 MB/s effective scan rate.
    pub disk_contention_alpha: f64,
    /// Average random-seek time, seconds (7200 RPM SATA: ~8.5 ms).
    pub disk_seek_s: f64,
    /// Bandwidth for page-cache hits, bytes/s (memory-speed reads).
    pub cache_bw: f64,
    /// Master work per chunk query dispatched, seconds: query generation,
    /// path write, bookkeeping. Calibrated against HV1: ~9000 chunks in
    /// 20–30 s ⇒ ~2.2 ms/chunk of serial frontend work (§6.2, §7.1).
    pub dispatch_s_per_chunk: f64,
    /// Master work per chunk *result* merged, seconds, on top of byte
    /// costs: transaction overhead of the mysqldump/reload path (§5.4).
    pub merge_s_per_chunk: f64,
    /// Master result-ingest throughput, bytes/s: mysqldump text parse +
    /// reload into the merge table. Well below wire speed (§7.1 calls the
    /// method heavyweight).
    pub merge_bw: f64,
    /// Network bandwidth per link, bytes/s (gigabit Ethernet ≈ 117 MB/s
    /// effective).
    pub net_bw: f64,
    /// Fixed frontend latency per query, seconds: proxy, parse, metadata
    /// and objectId-index lookups. Calibrated against the flat ~4 s floor
    /// of every Low Volume query (Figures 2–4, 8–10).
    pub frontend_base_s: f64,
    /// Optional chaos model: seeded transient task failures with retry
    /// (`None` = the fault-free cluster the paper's figures assume).
    pub faults: Option<FaultConfig>,
    /// How worker nodes grant freed execution slots to queued tasks
    /// (the paper's testbed is [`SchedulerPolicy::Fifo`]; Figure 14's
    /// starvation is a direct consequence).
    pub scheduler: SchedulerPolicy,
}

/// How a worker node's queue feeds its execution slots.
///
/// This is the node-level replay of the frontend's query-service
/// scheduling (`qserv::service`): [`SchedulerPolicy::Fifo`] reproduces
/// the Figure-14 starvation — short interactive tasks queue behind
/// full-scan tasks that fill every slot — and
/// [`SchedulerPolicy::InteractiveFirst`] reproduces the fix, where
/// interactive tasks jump the queue and a slot reserve keeps scans from
/// occupying the whole node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Strict arrival order, all slots open to any task (the paper's
    /// behavior).
    #[default]
    Fifo,
    /// Queued interactive tasks are admitted before queued scans, and
    /// scan tasks may occupy at most `slots_per_node - reserved_slots`
    /// slots — the reserve stays open for interactive arrivals.
    InteractiveFirst {
        /// Slots per node that scan tasks may never fill.
        reserved_slots: usize,
    },
}

/// Seeded transient-failure model for simulated chunk tasks.
///
/// Each completed task execution fails with `task_failure_prob`, decided
/// deterministically from `(seed, task, attempt)`; a failed task is
/// re-enqueued on its node after `retry_delay_s`. After `max_retries`
/// re-executions the next execution is taken as served by a healthy
/// replica and always completes (the simulator models latency impact,
/// not query abort). Retries appear in
/// [`crate::simulator::QueryReport::retries`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Decision seed: same seed ⇒ same failure schedule.
    pub seed: u64,
    /// Probability a task execution fails, in `[0, 1]`.
    pub task_failure_prob: f64,
    /// Delay before a failed task re-enters its node's queue, seconds
    /// (detection + backoff).
    pub retry_delay_s: f64,
    /// Maximum re-executions per task.
    pub max_retries: u32,
}

impl FaultConfig {
    /// A mild chaos profile: 5% transient failure, 0.5 s retry delay,
    /// up to 3 retries.
    pub fn mild(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            task_failure_prob: 0.05,
            retry_delay_s: 0.5,
            max_retries: 3,
        }
    }
}

impl SimConfig {
    /// The paper's 150-node testbed.
    pub fn paper_cluster() -> SimConfig {
        SimConfig {
            nodes: 150,
            slots_per_node: 4,
            disk_bw: 98.0e6,
            disk_contention_alpha: 0.88,
            disk_seek_s: 0.0085,
            cache_bw: 2.0e9,
            dispatch_s_per_chunk: 0.0022,
            merge_s_per_chunk: 0.0003,
            merge_bw: 30.0e6,
            net_bw: 117.0e6,
            frontend_base_s: 3.8,
            faults: None,
            scheduler: SchedulerPolicy::Fifo,
        }
    }

    /// Same cost model with a different node count (the weak-scaling
    /// configurations of §6.3).
    pub fn with_nodes(mut self, nodes: usize) -> SimConfig {
        self.nodes = nodes;
        self
    }

    /// Same cost model with seeded transient task failures.
    pub fn with_faults(mut self, faults: FaultConfig) -> SimConfig {
        self.faults = Some(faults);
        self
    }

    /// Same cost model with a different node-slot scheduling policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> SimConfig {
        self.scheduler = scheduler;
        self
    }

    /// Effective aggregate disk bandwidth with `k` concurrent uncached
    /// streams.
    pub fn disk_aggregate_bw(&self, k: usize) -> f64 {
        if k == 0 {
            return self.disk_bw;
        }
        self.disk_bw / (1.0 + self.disk_contention_alpha * (k as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_testbed() {
        let c = SimConfig::paper_cluster();
        assert_eq!(c.nodes, 150);
        assert_eq!(c.slots_per_node, 4);
        // 4-way contention lands near the paper's 27 MB/s measurement.
        let bw4 = c.disk_aggregate_bw(4);
        assert!(
            (25.0e6..30.0e6).contains(&bw4),
            "4-way aggregate {bw4} should be ~27 MB/s"
        );
        // Single stream keeps most of the spec bandwidth.
        assert!(c.disk_aggregate_bw(1) == c.disk_bw);
    }

    #[test]
    fn contention_monotonically_degrades() {
        let c = SimConfig::paper_cluster();
        let mut prev = f64::INFINITY;
        for k in 1..=8 {
            let bw = c.disk_aggregate_bw(k);
            assert!(bw < prev);
            prev = bw;
        }
    }

    #[test]
    fn with_nodes_preserves_cost_model() {
        let c = SimConfig::paper_cluster().with_nodes(40);
        assert_eq!(c.nodes, 40);
        assert_eq!(c.slots_per_node, 4);
    }
}
