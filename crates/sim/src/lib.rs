//! Deterministic discrete-event simulation of a Qserv cluster.
//!
//! The paper's evaluation ran on 150 physical nodes holding 30 TB
//! (§6.1.1): 2×4-core Xeons, 16 GB RAM and one 500 GB 7200 RPM SATA disk
//! per node, gigabit Ethernet, up to 4 queries executing in parallel per
//! node. Reproducing the *shape* of those results does not require the
//! hardware — it requires the cost structure:
//!
//! * a **serial master** whose per-chunk dispatch work makes trivial
//!   full-sky queries cost ~20–30 s over ~9000 chunks (HV1, Figure 5) and
//!   scale linearly with chunk count (Figure 11);
//! * **per-node disks** whose sequential bandwidth is shared (with seek
//!   penalties) among concurrently scanning tasks — 98 MB/s theoretical,
//!   ~27 MB/s effective under 4-way contention, ~76 MB/s when mostly
//!   cached (Figure 6 and §6.2 HV2 discussion);
//! * **per-node FIFO queues with no notion of query cost**, which is what
//!   makes short queries get "stuck" behind scans in the concurrency test
//!   (§6.4, Figure 14).
//!
//! [`Simulator`] is an event-driven model of exactly those three
//! resources. Workloads are lists of [`QueryJob`]s made of per-chunk
//! [`ChunkTask`]s with byte/seek/CPU costs; the simulator returns per-query
//! completion reports in virtual seconds. Everything is deterministic:
//! no wall clock, no randomness, stable tie-breaking.

pub mod config;
pub mod placement;
pub mod simulator;

pub use config::{FaultConfig, SchedulerPolicy, SimConfig};
pub use placement::{
    node_loss_scenario, weak_scaling, NodeLossOutcome, RepairPlan, ScalePoint, SimPlacement,
};
pub use simulator::{ChunkTask, QueryJob, QueryReport, Simulator};

// The shared virtual timeline ([`Simulator::bind_clock`]): the same clock
// type the live system's fault plans and traces run on, so simulated and
// real components can share one notion of "now".
pub use qserv_obs::{Clock, VirtualClock};
