//! Angular separation — the paper's `qserv_angSep` UDF.
//!
//! Near-neighbour queries (Super High Volume 1/2, paper §6.2) are predicated
//! on the great-circle distance between two catalog positions. The distance
//! is computed with the haversine-like vector formulation
//! `2·asin(‖a − b‖ / 2)`, which is numerically stable for the *small*
//! separations near-neighbour joins care about (where the naive
//! `acos(a·b)` form loses half its digits).

use crate::angle::Angle;
use crate::coords::{LonLat, UnitVector3};

/// Squared chord length between two unit vectors: `‖a − b‖²`.
///
/// Exposed so columnar distance kernels can precompute unit vectors once
/// and evaluate many pairs; combined with [`chord2_to_angle`] the result
/// is bit-identical to [`angular_separation`].
#[inline]
pub fn chord2(a: &UnitVector3, b: &UnitVector3) -> f64 {
    let dx = a.x() - b.x();
    let dy = a.y() - b.y();
    let dz = a.z() - b.z();
    dx * dx + dy * dy + dz * dz
}

/// Converts a squared chord length to the subtended angle,
/// `2·asin(‖a − b‖ / 2)` — the other half of [`angular_separation`]'s
/// arithmetic, kept as one function so every caller rounds identically.
#[inline]
pub fn chord2_to_angle(chord2: f64) -> Angle {
    let chord_half = 0.5 * chord2.sqrt();
    Angle::from_radians(2.0 * chord_half.clamp(0.0, 1.0).asin())
}

/// Great-circle separation between two points.
pub fn angular_separation(a: &LonLat, b: &LonLat) -> Angle {
    chord2_to_angle(chord2(&a.to_vector(), &b.to_vector()))
}

/// Great-circle separation in degrees between two (ra, decl) pairs given in
/// degrees. This is the exact signature of the worker UDF `qserv_angSep(ra1,
/// decl1, ra2, decl2)` from paper §6.2.
pub fn angular_separation_deg(ra1: f64, decl1: f64, ra2: f64, decl2: f64) -> f64 {
    angular_separation(
        &LonLat::from_degrees(ra1, decl1),
        &LonLat::from_degrees(ra2, decl2),
    )
    .degrees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_points_zero() {
        assert_eq!(angular_separation_deg(10.0, 20.0, 10.0, 20.0), 0.0);
    }

    #[test]
    fn antipodal_points_180() {
        let d = angular_separation_deg(0.0, 0.0, 180.0, 0.0);
        assert!((d - 180.0).abs() < 1e-9);
    }

    #[test]
    fn quarter_turn_on_equator() {
        let d = angular_separation_deg(0.0, 0.0, 90.0, 0.0);
        assert!((d - 90.0).abs() < 1e-9);
    }

    #[test]
    fn pole_to_equator() {
        let d = angular_separation_deg(45.0, 90.0, 200.0, 0.0);
        assert!((d - 90.0).abs() < 1e-9);
    }

    #[test]
    fn separation_along_meridian_is_decl_difference() {
        let d = angular_separation_deg(30.0, 10.0, 30.0, 12.5);
        assert!((d - 2.5).abs() < 1e-9);
    }

    #[test]
    fn small_separation_is_accurate() {
        // 1 milli-arcsecond apart along the equator; acos-based formulas
        // typically return garbage here.
        let mas = 1.0 / 3_600_000.0;
        let d = angular_separation_deg(0.0, 0.0, mas, 0.0);
        assert!((d - mas).abs() / mas < 1e-6);
    }

    #[test]
    fn ra_compression_at_high_decl() {
        // At decl=60°, one degree of RA is only cos(60°)=0.5 degrees of arc.
        let d = angular_separation_deg(0.0, 60.0, 1.0, 60.0);
        assert!((d - 0.49998).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn chord2_path_is_bit_identical(ra1 in 0.0f64..360.0, d1 in -90.0f64..90.0,
                                        ra2 in 0.0f64..360.0, d2 in -90.0f64..90.0) {
            // Distance kernels precompute unit vectors and go through
            // chord2/chord2_to_angle; the interpreter calls
            // angular_separation_deg. They must agree to the last bit.
            let a = LonLat::from_degrees(ra1, d1);
            let b = LonLat::from_degrees(ra2, d2);
            let via_chord = chord2_to_angle(chord2(&a.to_vector(), &b.to_vector())).degrees();
            let direct = angular_separation_deg(ra1, d1, ra2, d2);
            prop_assert_eq!(via_chord.to_bits(), direct.to_bits());
        }

        #[test]
        fn symmetric(ra1 in 0.0f64..360.0, d1 in -90.0f64..90.0,
                     ra2 in 0.0f64..360.0, d2 in -90.0f64..90.0) {
            let a = angular_separation_deg(ra1, d1, ra2, d2);
            let b = angular_separation_deg(ra2, d2, ra1, d1);
            prop_assert!((a - b).abs() < 1e-12);
        }

        #[test]
        fn bounded(ra1 in 0.0f64..360.0, d1 in -90.0f64..90.0,
                   ra2 in 0.0f64..360.0, d2 in -90.0f64..90.0) {
            let a = angular_separation_deg(ra1, d1, ra2, d2);
            prop_assert!((0.0..=180.0 + 1e-9).contains(&a));
        }

        #[test]
        fn triangle_inequality(ra1 in 0.0f64..360.0, d1 in -80.0f64..80.0,
                               ra2 in 0.0f64..360.0, d2 in -80.0f64..80.0,
                               ra3 in 0.0f64..360.0, d3 in -80.0f64..80.0) {
            let ab = angular_separation_deg(ra1, d1, ra2, d2);
            let bc = angular_separation_deg(ra2, d2, ra3, d3);
            let ac = angular_separation_deg(ra1, d1, ra3, d3);
            prop_assert!(ac <= ab + bc + 1e-9);
        }
    }
}
