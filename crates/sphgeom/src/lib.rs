//! Spherical geometry primitives for the Qserv reproduction.
//!
//! The LSST catalog records positions of celestial objects as spherical
//! coordinates (right ascension / declination). Any spatial partitioning
//! scheme for such data must therefore work on the sphere (paper §4.4,
//! "Spherical geometry"). This crate provides the geometry substrate used by
//! the partitioner, the query analyzer, and the worker SQL engine's spatial
//! user-defined functions:
//!
//! * [`Angle`] — a strongly-typed angle with degree/radian/arcminute
//!   constructors and normalization helpers.
//! * [`LonLat`] — a point on the unit sphere in longitude/latitude (RA/decl)
//!   form, and [`UnitVector3`], its Cartesian counterpart.
//! * [`SphericalBox`] and [`SphericalCircle`] — the two region kinds Qserv
//!   queries use (`qserv_areaspec_box`, near-neighbour distance cuts), with
//!   containment, intersection, dilation (overlap) and area operations.
//! * [`angular_separation`] — the great-circle distance between two points,
//!   i.e. the paper's `qserv_angSep` UDF.
//! * [`htm`] — the Hierarchical Triangular Mesh indexing scheme discussed as
//!   the alternative partitioning of paper §7.5.

pub mod angle;
pub mod coords;
pub mod dist;
pub mod htm;
pub mod region;

pub use angle::Angle;
pub use coords::{LonLat, UnitVector3};
pub use dist::{angular_separation, angular_separation_deg, chord2, chord2_to_angle};
pub use region::{Region, SphericalBox, SphericalCircle};

/// Machine epsilon-scale tolerance used by geometric predicates in this
/// crate. Angular quantities are held in radians as `f64`, so a tolerance of
/// a few ULP around 1.0 (≈ 1e-12 rad ≈ 0.2 micro-arcsecond) is far below any
/// astrometric precision the catalog carries.
pub const EPSILON: f64 = 1e-12;
