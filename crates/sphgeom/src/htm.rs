//! Hierarchical Triangular Mesh (HTM) indexing.
//!
//! Paper §7.5 discusses replacing the rectangular RA/decl stripe
//! partitioning with a hierarchical scheme such as HTM (Szalay et al.),
//! which produces partitions with far less area variation and maps spherical
//! points to integer ids encoding their partition at every subdivision
//! level. This module implements classic HTM: the sphere is split into 8
//! spherical triangles (4 per hemisphere) which are subdivided recursively,
//! each triangle into 4 children through the edge midpoints.
//!
//! Trixel ids use the standard encoding: root trixels are `8..=15`
//! (`0b1000 + k`), and each subdivision level appends two bits selecting the
//! child, so a level-`L` id occupies `4 + 2L` bits. Ablation C
//! (`figures ablate-htm`) compares HTM partition-area variance with the
//! stripe chunker's.

use crate::coords::{LonLat, UnitVector3};
use crate::region::SphericalBox;

/// Maximum supported subdivision level. Level 20 trixels are ~0.3
/// arcsecond across, far below catalog astrometry; ids still fit in `u64`.
pub const MAX_LEVEL: u8 = 20;

/// The 6 axis vertices from which the 8 root trixels are built.
fn axis(i: usize) -> UnitVector3 {
    let v = [
        (0.0, 0.0, 1.0),  // v0: north pole
        (1.0, 0.0, 0.0),  // v1
        (0.0, 1.0, 0.0),  // v2
        (-1.0, 0.0, 0.0), // v3
        (0.0, -1.0, 0.0), // v4
        (0.0, 0.0, -1.0), // v5: south pole
    ][i];
    UnitVector3::new(v.0, v.1, v.2).expect("axis vertices are non-zero")
}

/// Vertex index triplets for the 8 root trixels, in id order 8..=15:
/// S0,S1,S2,S3,N0,N1,N2,N3 (the ordering used by the original HTM code).
const ROOTS: [[usize; 3]; 8] = [
    [1, 5, 2], // S0 -> id 8
    [2, 5, 3], // S1 -> id 9
    [3, 5, 4], // S2 -> id 10
    [4, 5, 1], // S3 -> id 11
    [1, 0, 4], // N0 -> id 12
    [4, 0, 3], // N1 -> id 13
    [3, 0, 2], // N2 -> id 14
    [2, 0, 1], // N3 -> id 15
];

/// A trixel: a spherical triangle at some HTM level, identified by `id`.
#[derive(Clone, Copy, Debug)]
pub struct Trixel {
    id: u64,
    level: u8,
    v: [UnitVector3; 3],
}

impl Trixel {
    /// The eight level-0 root trixels.
    pub fn roots() -> Vec<Trixel> {
        ROOTS
            .iter()
            .enumerate()
            .map(|(k, idx)| Trixel {
                id: 8 + k as u64,
                level: 0,
                v: [axis(idx[0]), axis(idx[1]), axis(idx[2])],
            })
            .collect()
    }

    /// The trixel's HTM id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trixel's subdivision level (0 for roots).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The trixel's corner vertices.
    pub fn vertices(&self) -> &[UnitVector3; 3] {
        &self.v
    }

    fn midpoint(a: &UnitVector3, b: &UnitVector3) -> UnitVector3 {
        UnitVector3::new(a.x() + b.x(), a.y() + b.y(), a.z() + b.z())
            .expect("trixel edge midpoints are never antipodal")
    }

    /// The four children of this trixel. Child `i` has id `4*id + i`.
    pub fn children(&self) -> [Trixel; 4] {
        let [v0, v1, v2] = self.v;
        let w0 = Self::midpoint(&v1, &v2);
        let w1 = Self::midpoint(&v0, &v2);
        let w2 = Self::midpoint(&v0, &v1);
        let mk = |i: u64, a, b, c| Trixel {
            id: self.id * 4 + i,
            level: self.level + 1,
            v: [a, b, c],
        };
        [
            mk(0, v0, w2, w1),
            mk(1, v1, w0, w2),
            mk(2, v2, w1, w0),
            mk(3, w0, w1, w2),
        ]
    }

    /// True when the unit vector `p` lies inside this trixel. A point on a
    /// shared edge is reported inside the first sibling tested, which keeps
    /// [`htm_id`] deterministic.
    pub fn contains_vec(&self, p: &UnitVector3) -> bool {
        // p is inside iff it is on the non-negative side of all three
        // half-spaces (v_i × v_{i+1}) · p >= 0, with a tolerance so edge
        // points are not lost to rounding.
        const EDGE_EPS: f64 = -1e-12;
        for i in 0..3 {
            let a = &self.v[i];
            let b = &self.v[(i + 1) % 3];
            let (cx, cy, cz) = a.cross_raw(b);
            if cx * p.x() + cy * p.y() + cz * p.z() < EDGE_EPS {
                return false;
            }
        }
        true
    }

    /// Approximate solid angle of the trixel (steradians), via the planar
    /// triangle of its vertices scaled by the spherical excess at this size.
    /// Exact for the uses here (variance statistics); Girard's theorem is
    /// used for accuracy.
    pub fn area_sr(&self) -> f64 {
        // Girard: E = A + B + C - pi, with angles from dihedral formulas.
        let mut angles = [0.0f64; 3];
        for (i, slot) in angles.iter_mut().enumerate() {
            let a = self.v[i];
            let b = self.v[(i + 1) % 3];
            let c = self.v[(i + 2) % 3];
            let ab = a.cross(&b);
            let ac = a.cross(&c);
            match (ab, ac) {
                (Some(n1), Some(n2)) => {
                    *slot = n1.dot(&n2).clamp(-1.0, 1.0).acos();
                }
                _ => return 0.0,
            }
        }
        (angles[0] + angles[1] + angles[2] - std::f64::consts::PI).max(0.0)
    }

    /// A latitude/longitude bounding box of the trixel (conservative).
    ///
    /// Great-circle edges bulge past the vertices' lon/lat extremes —
    /// severely so at high latitude, where an edge's longitude span can
    /// exceed the vertices' by many degrees. The box is therefore built
    /// from `EDGE_SAMPLES` points along every edge, padded by a bound on
    /// the deviation between consecutive samples.
    pub fn bounding_box(&self) -> SphericalBox {
        const EDGE_SAMPLES: usize = 24;
        // A trixel containing a pole covers all longitudes.
        let north = UnitVector3::new(0.0, 0.0, 1.0).expect("unit axis");
        let south = UnitVector3::new(0.0, 0.0, -1.0).expect("unit axis");
        let mut lat_min = 90.0f64;
        let mut lat_max = -90.0f64;
        let mut lons: Vec<f64> = Vec::with_capacity(3 * EDGE_SAMPLES);
        for i in 0..3 {
            let a = &self.v[i];
            let b = &self.v[(i + 1) % 3];
            for k in 0..EDGE_SAMPLES {
                let t = k as f64 / EDGE_SAMPLES as f64;
                let p = UnitVector3::new(
                    a.x() * (1.0 - t) + b.x() * t,
                    a.y() * (1.0 - t) + b.y() * t,
                    a.z() * (1.0 - t) + b.z() * t,
                )
                .expect("edge interpolants are non-zero")
                .to_lonlat();
                lat_min = lat_min.min(p.decl_deg());
                lat_max = lat_max.max(p.decl_deg());
                lons.push(p.ra_deg());
            }
        }
        if self.contains_vec(&north) {
            return SphericalBox::from_degrees(0.0, lat_min - 0.01, 360.0, 90.0);
        }
        if self.contains_vec(&south) {
            return SphericalBox::from_degrees(0.0, -90.0, 360.0, lat_max + 0.01);
        }
        let (lo, hi) = smallest_lon_interval(&lons);
        // Deviation between consecutive edge samples is bounded by the
        // inter-sample arc; in longitude it further scales with 1/cos(lat).
        let edge_deg = 90.0 / (1u64 << self.level) as f64;
        let lat_pad = edge_deg / EDGE_SAMPLES as f64 + 0.01;
        let worst_cos = lat_min
            .abs()
            .max(lat_max.abs())
            .min(89.9)
            .to_radians()
            .cos();
        let lon_pad = lat_pad / worst_cos;
        SphericalBox::from_degrees(
            lo - lon_pad,
            lat_min - lat_pad,
            hi + lon_pad,
            lat_max + lat_pad,
        )
    }
}

/// Finds the smallest circular interval (degrees) covering all longitudes.
fn smallest_lon_interval(lons: &[f64]) -> (f64, f64) {
    debug_assert!(!lons.is_empty());
    let mut s: Vec<f64> = lons.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = s.len();
    // Find the largest gap between consecutive points on the circle; the
    // complement of that gap is the smallest covering interval.
    let mut best_gap = 360.0 - s[n - 1] + s[0];
    let mut start = 0; // interval starts after the gap
    for i in 1..n {
        let gap = s[i] - s[i - 1];
        if gap > best_gap {
            best_gap = gap;
            start = i;
        }
    }
    let lo = s[start];
    let hi = s[(start + n - 1) % n];
    (lo, if hi < lo { hi + 360.0 } else { hi })
}

/// Computes the HTM id of `p` at `level`.
pub fn htm_id(p: &LonLat, level: u8) -> u64 {
    assert!(level <= MAX_LEVEL, "HTM level {level} exceeds MAX_LEVEL");
    let v = p.to_vector();
    let mut cur = Trixel::roots()
        .into_iter()
        .find(|t| t.contains_vec(&v))
        .expect("every point lies in some root trixel");
    for _ in 0..level {
        let children = cur.children();
        cur = *children
            .iter()
            .find(|t| t.contains_vec(&v))
            .expect("every point lies in some child trixel");
    }
    cur.id()
}

/// The subdivision level encoded in an HTM id.
pub fn level_of(id: u64) -> u8 {
    assert!(id >= 8, "invalid HTM id {id}");
    ((63 - id.leading_zeros() as u8) - 3) / 2
}

/// The ancestor of `id` at `level` (which must not exceed `id`'s level).
pub fn ancestor_at(id: u64, level: u8) -> u64 {
    let l = level_of(id);
    assert!(level <= l, "requested ancestor level above id level");
    id >> (2 * (l - level))
}

/// Returns all trixel ids at `level` whose bounding boxes intersect `region`
/// — a conservative cover, mirroring how spatially-restricted queries would
/// select HTM partitions (paper §7.5).
pub fn cover_box(region: &SphericalBox, level: u8) -> Vec<u64> {
    assert!(level <= MAX_LEVEL);
    let mut out = Vec::new();
    let mut stack: Vec<Trixel> = Trixel::roots();
    while let Some(t) = stack.pop() {
        if !region.intersects(&t.bounding_box()) {
            continue;
        }
        if t.level() == level {
            out.push(t.id());
        } else {
            stack.extend(t.children());
        }
    }
    out.sort_unstable();
    out
}

/// Enumerates every trixel at `level` (for statistics; 8·4^level items).
pub fn all_trixels(level: u8) -> Vec<Trixel> {
    assert!(level <= 10, "full enumeration above level 10 is excessive");
    let mut cur = Trixel::roots();
    for _ in 0..level {
        cur = cur.iter().flat_map(|t| t.children()).collect();
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use proptest::prelude::*;

    #[test]
    fn roots_cover_sphere() {
        // Sum of root areas must be 4π.
        let total: f64 = Trixel::roots().iter().map(|t| t.area_sr()).sum();
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn root_ids_are_8_to_15() {
        let ids: Vec<u64> = Trixel::roots().iter().map(|t| t.id()).collect();
        assert_eq!(ids, vec![8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn children_partition_parent_area() {
        for root in Trixel::roots() {
            let child_sum: f64 = root.children().iter().map(|t| t.area_sr()).sum();
            assert!((child_sum - root.area_sr()).abs() < 1e-9);
        }
    }

    #[test]
    fn id_bit_structure() {
        let id = htm_id(&LonLat::from_degrees(10.0, 20.0), 5);
        assert_eq!(level_of(id), 5);
        // Level-5 ids occupy 4 + 10 = 14 bits.
        assert!((8 << 10..16 << 10).contains(&id));
    }

    #[test]
    fn ancestor_is_prefix() {
        let p = LonLat::from_degrees(123.4, -45.6);
        let deep = htm_id(&p, 8);
        for l in 0..=8 {
            assert_eq!(ancestor_at(deep, l), htm_id(&p, l));
        }
    }

    #[test]
    fn north_pole_in_northern_root() {
        let id = htm_id(&LonLat::from_degrees(0.0, 90.0), 0);
        assert!((12..=15).contains(&id), "north pole in N root, got {id}");
        let id = htm_id(&LonLat::from_degrees(0.0, -90.0), 0);
        assert!((8..=11).contains(&id), "south pole in S root, got {id}");
    }

    #[test]
    fn level_area_variance_is_small() {
        // HTM partitions have bounded area variation (about 2:1), unlike
        // RA/decl boxes near poles — the §7.5 motivation.
        let ts = all_trixels(4);
        let areas: Vec<f64> = ts.iter().map(|t| t.area_sr()).collect();
        let max = areas.iter().cloned().fold(0.0, f64::max);
        let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 3.0, "area ratio {}", max / min);
    }

    #[test]
    fn cover_box_finds_containing_trixel() {
        let p = LonLat::from_degrees(33.0, 12.0);
        let b = SphericalBox::from_degrees(32.5, 11.5, 33.5, 12.5);
        for level in 0..=6 {
            let cover = cover_box(&b, level);
            assert!(
                cover.contains(&htm_id(&p, level)),
                "cover at level {level} must include the point's trixel"
            );
        }
    }

    #[test]
    fn cover_full_sky_is_everything() {
        let cover = cover_box(&SphericalBox::full_sky(), 2);
        assert_eq!(cover.len(), 8 * 16);
    }

    #[test]
    #[should_panic(expected = "invalid HTM id")]
    fn level_of_rejects_small_ids() {
        level_of(3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn every_point_has_an_id(ra in 0.0f64..360.0, decl in -90.0f64..90.0) {
            let id = htm_id(&LonLat::from_degrees(ra, decl), 6);
            prop_assert_eq!(level_of(id), 6);
        }

        #[test]
        fn sibling_ids_disjoint_points(ra in 0.0f64..360.0, decl in -89.0f64..89.0,
                                       level in 0u8..8) {
            // A point maps to exactly one id; mapping twice agrees.
            let p = LonLat::from_degrees(ra, decl);
            prop_assert_eq!(htm_id(&p, level), htm_id(&p, level));
        }

        #[test]
        fn trixel_bbox_contains_its_points(ra in 0.0f64..360.0, decl in -89.9f64..89.9,
                                           level in 0u8..7) {
            // The regression class that bit the HTM chunker: points at high
            // |decl| fell outside their trixel's vertex-only bounding box
            // because great-circle edges bulge in longitude there.
            let p = LonLat::from_degrees(ra, decl);
            let v = p.to_vector();
            let mut t = Trixel::roots()
                .into_iter()
                .find(|t| t.contains_vec(&v))
                .expect("point in some root");
            for _ in 0..level {
                t = *t
                    .children()
                    .iter()
                    .find(|c| c.contains_vec(&v))
                    .expect("point in some child");
            }
            prop_assert!(
                t.bounding_box().contains(&p),
                "trixel {} bbox must contain its own point ({ra}, {decl})",
                t.id()
            );
        }

        #[test]
        fn trixel_bbox_contains_vertices(root in 0usize..8, steps in 0u8..4) {
            let mut t = Trixel::roots()[root];
            for s in 0..steps {
                t = t.children()[(s % 4) as usize];
            }
            let bb = t.bounding_box();
            for v in t.vertices() {
                prop_assert!(bb.contains(&v.to_lonlat()));
            }
        }
    }
}
