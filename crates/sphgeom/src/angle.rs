//! Strongly-typed angles.
//!
//! Qserv mixes three angular units: catalog columns are degrees (RA/decl),
//! overlap widths are quoted in arcminutes (the paper uses 1′ = 0.01667°),
//! and trigonometry wants radians. Wrapping the raw `f64` in [`Angle`]
//! prevents the classic unit-confusion bugs at these seams.

use std::cmp::Ordering;
use std::f64::consts::PI;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An angle, stored internally in radians.
///
/// `Angle` is a plain `Copy` newtype over `f64`; all arithmetic is exact
/// `f64` arithmetic with no hidden normalization. Use
/// [`Angle::normalized_positive`] / [`Angle::normalized_signed`] to wrap into
/// `[0, 2π)` or `[-π, π)` explicitly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Angle(f64);

impl Angle {
    /// The zero angle.
    pub const ZERO: Angle = Angle(0.0);
    /// A half turn (π radians, 180°).
    pub const HALF_TURN: Angle = Angle(PI);
    /// A full turn (2π radians, 360°).
    pub const FULL_TURN: Angle = Angle(2.0 * PI);

    /// Creates an angle from radians.
    #[inline]
    pub const fn from_radians(rad: f64) -> Angle {
        Angle(rad)
    }

    /// Creates an angle from degrees.
    #[inline]
    pub fn from_degrees(deg: f64) -> Angle {
        Angle(deg.to_radians())
    }

    /// Creates an angle from arcminutes (1/60 degree). The paper's default
    /// partition overlap is 1 arcminute (§6.1.2).
    #[inline]
    pub fn from_arcmin(amin: f64) -> Angle {
        Angle::from_degrees(amin / 60.0)
    }

    /// Creates an angle from arcseconds (1/3600 degree).
    #[inline]
    pub fn from_arcsec(asec: f64) -> Angle {
        Angle::from_degrees(asec / 3600.0)
    }

    /// The angle in radians.
    #[inline]
    pub const fn radians(self) -> f64 {
        self.0
    }

    /// The angle in degrees.
    #[inline]
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// The angle in arcminutes.
    #[inline]
    pub fn arcmin(self) -> f64 {
        self.degrees() * 60.0
    }

    /// Wraps into `[0, 2π)`. Useful for right ascension.
    pub fn normalized_positive(self) -> Angle {
        let tau = 2.0 * PI;
        let mut r = self.0 % tau;
        if r < 0.0 {
            r += tau;
        }
        // `r` can still equal `tau` after the addition when `self.0` is a
        // tiny negative number; fold that back to zero.
        if r >= tau {
            r = 0.0;
        }
        Angle(r)
    }

    /// Wraps into `[-π, π)`.
    pub fn normalized_signed(self) -> Angle {
        let mut a = self.normalized_positive().0;
        if a >= PI {
            a -= 2.0 * PI;
        }
        Angle(a)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Angle {
        Angle(self.0.abs())
    }

    /// Sine of the angle.
    #[inline]
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine of the angle.
    #[inline]
    pub fn cos(self) -> f64 {
        self.0.cos()
    }

    /// Tangent of the angle.
    #[inline]
    pub fn tan(self) -> f64 {
        self.0.tan()
    }

    /// Clamps to the inclusive range `[lo, hi]`.
    pub fn clamp(self, lo: Angle, hi: Angle) -> Angle {
        Angle(self.0.clamp(lo.0, hi.0))
    }

    /// True when the value is finite (not NaN/±∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The smaller of the two angles.
    pub fn min(self, other: Angle) -> Angle {
        Angle(self.0.min(other.0))
    }

    /// The larger of the two angles.
    pub fn max(self, other: Angle) -> Angle {
        Angle(self.0.max(other.0))
    }
}

impl PartialOrd for Angle {
    fn partial_cmp(&self, other: &Angle) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle(self.0 + rhs.0)
    }
}

impl Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle(self.0 - rhs.0)
    }
}

impl Mul<f64> for Angle {
    type Output = Angle;
    fn mul(self, rhs: f64) -> Angle {
        Angle(self.0 * rhs)
    }
}

impl Div<f64> for Angle {
    type Output = Angle;
    fn div(self, rhs: f64) -> Angle {
        Angle(self.0 / rhs)
    }
}

impl Div for Angle {
    type Output = f64;
    fn div(self, rhs: Angle) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle(-self.0)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}°", self.degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn degree_radian_round_trip() {
        let a = Angle::from_degrees(123.456);
        assert!(close(a.degrees(), 123.456));
        let b = Angle::from_radians(1.0);
        assert!(close(b.radians(), 1.0));
    }

    #[test]
    fn arcmin_matches_paper_overlap() {
        // The paper sets overlap to 0.01667 degrees = 1 arcminute.
        let overlap = Angle::from_arcmin(1.0);
        assert!((overlap.degrees() - 0.0166666).abs() < 1e-4);
    }

    #[test]
    fn arcsec_is_sixtieth_of_arcmin() {
        assert!(close(
            Angle::from_arcsec(60.0).radians(),
            Angle::from_arcmin(1.0).radians()
        ));
    }

    #[test]
    fn normalize_positive_wraps_negative() {
        let a = Angle::from_degrees(-10.0).normalized_positive();
        assert!(close(a.degrees(), 350.0));
    }

    #[test]
    fn normalize_positive_wraps_over_full_turn() {
        let a = Angle::from_degrees(725.0).normalized_positive();
        assert!(close(a.degrees(), 5.0));
    }

    #[test]
    fn normalize_positive_identity_in_range() {
        let a = Angle::from_degrees(200.0).normalized_positive();
        assert!(close(a.degrees(), 200.0));
    }

    #[test]
    fn normalize_positive_tiny_negative_folds_to_zero() {
        let a = Angle::from_radians(-1e-20).normalized_positive();
        assert!(a.radians() >= 0.0 && a.radians() < 2.0 * PI);
    }

    #[test]
    fn normalize_signed_range() {
        assert!(close(
            Angle::from_degrees(270.0).normalized_signed().degrees(),
            -90.0
        ));
        assert!(close(
            Angle::from_degrees(-180.0).normalized_signed().degrees(),
            -180.0
        ));
        assert!(close(
            Angle::from_degrees(180.0).normalized_signed().degrees(),
            -180.0
        ));
    }

    #[test]
    fn arithmetic() {
        let a = Angle::from_degrees(10.0);
        let b = Angle::from_degrees(20.0);
        assert!(close((a + b).degrees(), 30.0));
        assert!(close((b - a).degrees(), 10.0));
        assert!(close((a * 3.0).degrees(), 30.0));
        assert!(close((b / 2.0).degrees(), 10.0));
        assert!(close(b / a, 2.0));
        assert!(close((-a).degrees(), -10.0));
    }

    #[test]
    fn ordering_and_min_max() {
        let a = Angle::from_degrees(1.0);
        let b = Angle::from_degrees(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_shows_degrees() {
        assert_eq!(format!("{}", Angle::from_degrees(90.0)), "90°");
    }
}
