//! Spherical regions: boxes and circles.
//!
//! Qserv spatial restrictions arrive as `qserv_areaspec_box(lon1, lat1, lon2,
//! lat2)` pseudo-function calls (paper §5.3). The query analyzer turns the
//! box into a set of chunk ids; the partitioner dilates chunk bounding boxes
//! by the overlap radius; the near-neighbour rewriter uses circles for
//! distance cuts. All of those operations live here.

use crate::angle::Angle;
use crate::coords::LonLat;
use crate::dist::angular_separation;

/// A region on the unit sphere supporting point containment and
/// conservative intersection tests.
pub trait Region {
    /// True when `p` lies inside (or on the boundary of) the region.
    fn contains(&self, p: &LonLat) -> bool;

    /// True when the region *may* intersect `b`. May return true for
    /// non-intersecting pairs (conservative), but never false for
    /// intersecting ones — the property chunk selection needs so that no
    /// chunk holding relevant rows is skipped.
    fn may_intersect_box(&self, b: &SphericalBox) -> bool;

    /// A bounding box for the region.
    fn bounding_box(&self) -> SphericalBox;
}

/// A longitude/latitude box on the sphere.
///
/// The latitude range is an ordinary closed interval. The longitude range is
/// a closed interval *on the circle*: `lon_min > lon_max` denotes a range
/// that wraps through 0° (e.g. the PT1.1 footprint spans RA 358°–5°,
/// paper §6.1.2). A box whose longitude span is ≥ 360° is a full ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SphericalBox {
    lon_min: Angle,
    lon_max: Angle,
    lat_min: Angle,
    lat_max: Angle,
    /// True when the box covers every longitude.
    full_lon: bool,
}

impl SphericalBox {
    /// Creates a box from degree bounds, in the argument order of
    /// `qserv_areaspec_box(lonMin, latMin, lonMax, latMax)`.
    ///
    /// Longitudes are normalized to `[0, 360)`; `lon_min > lon_max` after
    /// normalization means the box wraps through RA 0. Latitudes are clamped
    /// to `[-90, 90]` and swapped if reversed.
    pub fn from_degrees(lon_min: f64, lat_min: f64, lon_max: f64, lat_max: f64) -> SphericalBox {
        let full_lon = (lon_max - lon_min).abs() >= 360.0;
        let lon_min_a = Angle::from_degrees(lon_min).normalized_positive();
        let lon_max_a = Angle::from_degrees(lon_max).normalized_positive();
        let (lat_lo, lat_hi) = if lat_min <= lat_max {
            (lat_min, lat_max)
        } else {
            (lat_max, lat_min)
        };
        SphericalBox {
            lon_min: lon_min_a,
            lon_max: lon_max_a,
            lat_min: Angle::from_degrees(lat_lo.clamp(-90.0, 90.0)),
            lat_max: Angle::from_degrees(lat_hi.clamp(-90.0, 90.0)),
            full_lon,
        }
    }

    /// The box covering the entire sphere.
    pub fn full_sky() -> SphericalBox {
        SphericalBox::from_degrees(0.0, -90.0, 360.0, 90.0)
    }

    /// Minimum longitude bound (degrees, `[0, 360)`).
    pub fn lon_min_deg(&self) -> f64 {
        self.lon_min.degrees()
    }
    /// Maximum longitude bound (degrees, `[0, 360)`).
    pub fn lon_max_deg(&self) -> f64 {
        self.lon_max.degrees()
    }
    /// Minimum latitude bound (degrees).
    pub fn lat_min_deg(&self) -> f64 {
        self.lat_min.degrees()
    }
    /// Maximum latitude bound (degrees).
    pub fn lat_max_deg(&self) -> f64 {
        self.lat_max.degrees()
    }

    /// True when the box covers all longitudes.
    pub fn is_full_lon(&self) -> bool {
        self.full_lon
    }

    /// True when the longitude interval wraps through zero.
    pub fn wraps(&self) -> bool {
        !self.full_lon && self.lon_min > self.lon_max
    }

    /// Longitude extent in degrees (360 for a full ring).
    pub fn lon_extent_deg(&self) -> f64 {
        if self.full_lon {
            360.0
        } else {
            let d = self.lon_max.degrees() - self.lon_min.degrees();
            if d < 0.0 {
                d + 360.0
            } else {
                d
            }
        }
    }

    /// Latitude extent in degrees.
    pub fn lat_extent_deg(&self) -> f64 {
        self.lat_max.degrees() - self.lat_min.degrees()
    }

    /// True when `lon` (degrees, any real) falls in the box's RA range.
    pub fn contains_lon_deg(&self, lon: f64) -> bool {
        if self.full_lon {
            return true;
        }
        let l = Angle::from_degrees(lon).normalized_positive().degrees();
        let (lo, hi) = (self.lon_min.degrees(), self.lon_max.degrees());
        if self.wraps() {
            l >= lo || l <= hi
        } else {
            l >= lo && l <= hi
        }
    }

    /// True when `lat` (degrees) falls in the box's declination range.
    pub fn contains_lat_deg(&self, lat: f64) -> bool {
        lat >= self.lat_min.degrees() && lat <= self.lat_max.degrees()
    }

    /// Solid angle of the box in steradians:
    /// `Δλ · (sin φ₂ − sin φ₁)`.
    pub fn area_sr(&self) -> f64 {
        let dlon = self.lon_extent_deg().to_radians();
        dlon * (self.lat_max.sin() - self.lat_min.sin())
    }

    /// Solid angle in square degrees.
    pub fn area_deg2(&self) -> f64 {
        self.area_sr() * (180.0 / std::f64::consts::PI).powi(2)
    }

    /// Expands the box by `radius` in every direction, the operation used to
    /// build overlap regions (paper §4.4 "Overlap") and to select chunks for
    /// circle queries. Near the poles the longitude expansion grows with
    /// `1/cos φ` and degenerates to a full ring when a pole is reached —
    /// exactly the conservative behaviour chunk selection requires.
    pub fn dilated(&self, radius: Angle) -> SphericalBox {
        if radius.radians() <= 0.0 {
            return *self;
        }
        let lat_min = (self.lat_min - radius).max(Angle::from_degrees(-90.0));
        let lat_max = (self.lat_max + radius).min(Angle::from_degrees(90.0));
        // Longitude dilation scales with the inverse cosine of the highest
        // |latitude| in the *dilated* box.
        let worst_lat = lat_min.abs().max(lat_max.abs());
        let touches_pole = worst_lat.degrees() >= 90.0 - 1e-9;
        let cos_lat = worst_lat.cos();
        let lon_pad_deg = if touches_pole || cos_lat <= 1e-9 {
            360.0
        } else {
            radius.degrees() / cos_lat
        };
        let full = self.full_lon || self.lon_extent_deg() + 2.0 * lon_pad_deg >= 360.0;
        if full {
            SphericalBox {
                lon_min: Angle::ZERO,
                lon_max: Angle::ZERO,
                lat_min,
                lat_max,
                full_lon: true,
            }
        } else {
            SphericalBox {
                lon_min: (self.lon_min - Angle::from_degrees(lon_pad_deg)).normalized_positive(),
                lon_max: (self.lon_max + Angle::from_degrees(lon_pad_deg)).normalized_positive(),
                lat_min,
                lat_max,
                full_lon: false,
            }
        }
    }

    /// True when the two boxes share at least one point.
    pub fn intersects(&self, o: &SphericalBox) -> bool {
        let lat_ok = self.lat_min.degrees() <= o.lat_max.degrees()
            && o.lat_min.degrees() <= self.lat_max.degrees();
        if !lat_ok {
            return false;
        }
        if self.full_lon || o.full_lon {
            return true;
        }
        // Two circular intervals intersect iff either contains the other's
        // start point.
        self.contains_lon_deg(o.lon_min.degrees()) || o.contains_lon_deg(self.lon_min.degrees())
    }
}

impl Region for SphericalBox {
    fn contains(&self, p: &LonLat) -> bool {
        self.contains_lat_deg(p.decl_deg()) && self.contains_lon_deg(p.ra_deg())
    }

    fn may_intersect_box(&self, b: &SphericalBox) -> bool {
        self.intersects(b)
    }

    fn bounding_box(&self) -> SphericalBox {
        *self
    }
}

/// A spherical cap: every point within `radius` of `center`.
#[derive(Clone, Copy, Debug)]
pub struct SphericalCircle {
    center: LonLat,
    radius: Angle,
}

impl SphericalCircle {
    /// Creates a cap. A negative radius yields an empty region; a radius of
    /// 180° or more covers the sphere.
    pub fn new(center: LonLat, radius: Angle) -> SphericalCircle {
        SphericalCircle { center, radius }
    }

    /// The cap's center.
    pub fn center(&self) -> LonLat {
        self.center
    }

    /// The cap's angular radius.
    pub fn radius(&self) -> Angle {
        self.radius
    }

    /// Solid angle in steradians: `2π(1 − cos r)`.
    pub fn area_sr(&self) -> f64 {
        if self.radius.radians() <= 0.0 {
            0.0
        } else {
            2.0 * std::f64::consts::PI * (1.0 - self.radius.min(Angle::HALF_TURN).cos())
        }
    }
}

impl Region for SphericalCircle {
    fn contains(&self, p: &LonLat) -> bool {
        angular_separation(&self.center, p) <= self.radius
    }

    fn may_intersect_box(&self, b: &SphericalBox) -> bool {
        // Conservative: dilate the box by the radius and test the center.
        b.dilated(self.radius).contains(&self.center)
    }

    fn bounding_box(&self) -> SphericalBox {
        let c = self.center;
        let point = SphericalBox::from_degrees(c.ra_deg(), c.decl_deg(), c.ra_deg(), c.decl_deg());
        point.dilated(self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_box_contains() {
        let b = SphericalBox::from_degrees(10.0, -5.0, 20.0, 5.0);
        assert!(b.contains(&LonLat::from_degrees(15.0, 0.0)));
        assert!(b.contains(&LonLat::from_degrees(10.0, -5.0)));
        assert!(!b.contains(&LonLat::from_degrees(25.0, 0.0)));
        assert!(!b.contains(&LonLat::from_degrees(15.0, 6.0)));
    }

    #[test]
    fn wrapping_box_like_pt11_footprint() {
        // PT1.1 covers RA 358..5, decl -7..7 (paper §6.1.2).
        let b = SphericalBox::from_degrees(358.0, -7.0, 5.0, 7.0);
        assert!(b.wraps());
        assert!(b.contains(&LonLat::from_degrees(359.5, 0.0)));
        assert!(b.contains(&LonLat::from_degrees(2.0, 0.0)));
        assert!(!b.contains(&LonLat::from_degrees(180.0, 0.0)));
        assert!((b.lon_extent_deg() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn full_sky_area() {
        let b = SphericalBox::full_sky();
        assert!(b.is_full_lon());
        assert!((b.area_sr() - 4.0 * std::f64::consts::PI).abs() < 1e-9);
        // Full sky is about 41253 square degrees.
        assert!((b.area_deg2() - 41252.96).abs() < 0.01);
    }

    #[test]
    fn box_area_one_square_degree_at_equator() {
        let b = SphericalBox::from_degrees(0.0, -0.5, 1.0, 0.5);
        assert!((b.area_deg2() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn dilate_grows_all_sides() {
        let b = SphericalBox::from_degrees(10.0, -5.0, 20.0, 5.0);
        let d = b.dilated(Angle::from_degrees(1.0));
        assert!(d.contains(&LonLat::from_degrees(9.5, 0.0)));
        assert!(d.contains(&LonLat::from_degrees(20.5, 0.0)));
        assert!(d.contains(&LonLat::from_degrees(15.0, 5.9)));
        assert!(d.contains(&LonLat::from_degrees(15.0, -5.9)));
        assert!(!d.contains(&LonLat::from_degrees(15.0, 6.5)));
    }

    #[test]
    fn dilate_near_pole_becomes_ring() {
        let b = SphericalBox::from_degrees(100.0, 88.0, 110.0, 89.0);
        let d = b.dilated(Angle::from_degrees(2.0));
        // Dilated box touches the pole, so every longitude is inside.
        assert!(d.is_full_lon());
        assert!(d.contains(&LonLat::from_degrees(280.0, 89.0)));
    }

    #[test]
    fn dilate_zero_is_identity() {
        let b = SphericalBox::from_degrees(10.0, -5.0, 20.0, 5.0);
        assert_eq!(b.dilated(Angle::ZERO), b);
    }

    #[test]
    fn intersects_basic_and_wrap() {
        let a = SphericalBox::from_degrees(10.0, -5.0, 20.0, 5.0);
        let b = SphericalBox::from_degrees(15.0, 0.0, 30.0, 10.0);
        let c = SphericalBox::from_degrees(40.0, 0.0, 50.0, 10.0);
        let w = SphericalBox::from_degrees(355.0, -5.0, 12.0, 5.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(w.intersects(&a));
        assert!(a.intersects(&w));
    }

    #[test]
    fn lat_disjoint_boxes_do_not_intersect() {
        let a = SphericalBox::from_degrees(0.0, 0.0, 360.0, 10.0);
        let b = SphericalBox::from_degrees(0.0, 20.0, 360.0, 30.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn circle_contains() {
        let c = SphericalCircle::new(LonLat::from_degrees(0.0, 0.0), Angle::from_degrees(1.0));
        assert!(c.contains(&LonLat::from_degrees(0.5, 0.5)));
        assert!(!c.contains(&LonLat::from_degrees(1.5, 0.0)));
    }

    #[test]
    fn circle_area() {
        let c = SphericalCircle::new(LonLat::from_degrees(0.0, 0.0), Angle::HALF_TURN);
        assert!((c.area_sr() - 4.0 * std::f64::consts::PI).abs() < 1e-9);
        let empty = SphericalCircle::new(LonLat::from_degrees(0.0, 0.0), Angle::ZERO);
        assert_eq!(empty.area_sr(), 0.0);
    }

    #[test]
    fn circle_bounding_box_contains_circle_points() {
        let c = SphericalCircle::new(LonLat::from_degrees(30.0, 40.0), Angle::from_degrees(2.0));
        let bb = c.bounding_box();
        for k in 0..64 {
            let t = k as f64 / 64.0 * std::f64::consts::TAU;
            // Walk the boundary approximately (planar offset then project).
            let p = LonLat::from_degrees(
                30.0 + 2.0 * t.cos() / 40f64.to_radians().cos(),
                40.0 + 2.0 * t.sin(),
            );
            if c.contains(&p) {
                assert!(bb.contains(&p));
            }
        }
    }

    proptest! {
        #[test]
        fn dilated_box_contains_original_points(
            lon0 in 0.0f64..360.0, lat0 in -80.0f64..70.0,
            dlon in 0.1f64..20.0, dlat in 0.1f64..10.0,
            r in 0.0f64..5.0,
            plon in 0.0f64..1.0, plat in 0.0f64..1.0,
        ) {
            let b = SphericalBox::from_degrees(lon0, lat0, lon0 + dlon, lat0 + dlat);
            let p = LonLat::from_degrees(lon0 + plon * dlon, lat0 + plat * dlat);
            prop_assert!(b.contains(&p));
            prop_assert!(b.dilated(Angle::from_degrees(r)).contains(&p));
        }

        #[test]
        fn intersection_is_symmetric(
            a0 in 0.0f64..360.0, a1 in -90.0f64..80.0, aw in 0.1f64..50.0, ah in 0.1f64..10.0,
            b0 in 0.0f64..360.0, b1 in -90.0f64..80.0, bw in 0.1f64..50.0, bh in 0.1f64..10.0,
        ) {
            let a = SphericalBox::from_degrees(a0, a1, a0 + aw, a1 + ah);
            let b = SphericalBox::from_degrees(b0, b1, b0 + bw, b1 + bh);
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        }

        #[test]
        fn point_in_both_implies_intersects(
            a0 in 0.0f64..360.0, a1 in -90.0f64..80.0, aw in 0.1f64..50.0, ah in 0.1f64..10.0,
            b0 in 0.0f64..360.0, b1 in -90.0f64..80.0, bw in 0.1f64..50.0, bh in 0.1f64..10.0,
            plon in 0.0f64..360.0, plat in -90.0f64..90.0,
        ) {
            let a = SphericalBox::from_degrees(a0, a1, a0 + aw, a1 + ah);
            let b = SphericalBox::from_degrees(b0, b1, b0 + bw, b1 + bh);
            let p = LonLat::from_degrees(plon, plat);
            if a.contains(&p) && b.contains(&p) {
                prop_assert!(a.intersects(&b));
            }
        }

        #[test]
        fn circle_box_test_is_conservative(
            clon in 0.0f64..360.0, clat in -85.0f64..85.0, r in 0.01f64..5.0,
            b0 in 0.0f64..360.0, b1 in -90.0f64..80.0, bw in 1.0f64..60.0, bh in 1.0f64..20.0,
        ) {
            let c = SphericalCircle::new(LonLat::from_degrees(clon, clat), Angle::from_degrees(r));
            let b = SphericalBox::from_degrees(b0, b1, b0 + bw, b1 + bh);
            // If the circle's center is in the box the regions surely
            // intersect, so the conservative test must say yes.
            if b.contains(&c.center()) {
                prop_assert!(c.may_intersect_box(&b));
            }
        }
    }
}
