//! Points on the unit sphere.
//!
//! Catalog positions are (right ascension, declination) pairs — spherical
//! longitude/latitude. Distance computations and HTM indexing are easier on
//! Cartesian unit vectors, so both representations are provided with lossless
//! conversion between them (up to floating-point rounding).

use crate::angle::Angle;

/// A point on the unit sphere in longitude/latitude form.
///
/// In astronomical terms, `lon` is right ascension (α) in `[0°, 360°)` and
/// `lat` is declination (δ) in `[-90°, +90°]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LonLat {
    lon: Angle,
    lat: Angle,
}

impl LonLat {
    /// Creates a point, normalizing longitude to `[0, 2π)` and clamping
    /// latitude to `[-π/2, π/2]`.
    pub fn new(lon: Angle, lat: Angle) -> LonLat {
        LonLat {
            lon: lon.normalized_positive(),
            lat: lat.clamp(-Angle::HALF_TURN / 2.0, Angle::HALF_TURN / 2.0),
        }
    }

    /// Creates a point from degrees: `ra` ∈ ℝ (normalized), `decl` clamped to
    /// `[-90, 90]`.
    pub fn from_degrees(ra: f64, decl: f64) -> LonLat {
        LonLat::new(Angle::from_degrees(ra), Angle::from_degrees(decl))
    }

    /// Longitude (right ascension), in `[0, 2π)`.
    #[inline]
    pub fn lon(&self) -> Angle {
        self.lon
    }

    /// Latitude (declination), in `[-π/2, π/2]`.
    #[inline]
    pub fn lat(&self) -> Angle {
        self.lat
    }

    /// Right ascension in degrees.
    #[inline]
    pub fn ra_deg(&self) -> f64 {
        self.lon.degrees()
    }

    /// Declination in degrees.
    #[inline]
    pub fn decl_deg(&self) -> f64 {
        self.lat.degrees()
    }

    /// Converts to a Cartesian unit vector.
    pub fn to_vector(&self) -> UnitVector3 {
        let (sin_lon, cos_lon) = (self.lon.sin(), self.lon.cos());
        let (sin_lat, cos_lat) = (self.lat.sin(), self.lat.cos());
        UnitVector3 {
            x: cos_lat * cos_lon,
            y: cos_lat * sin_lon,
            z: sin_lat,
        }
    }
}

/// A 3-D unit vector: the Cartesian form of a point on the sphere.
///
/// Constructors normalize, so the invariant `‖v‖ = 1` (to rounding) holds for
/// every value produced by this API.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnitVector3 {
    x: f64,
    y: f64,
    z: f64,
}

impl UnitVector3 {
    /// Builds a unit vector from arbitrary (non-zero, finite) components by
    /// normalizing them. Returns `None` for a zero or non-finite input.
    pub fn new(x: f64, y: f64, z: f64) -> Option<UnitVector3> {
        let n2 = x * x + y * y + z * z;
        if !n2.is_finite() || n2 == 0.0 {
            return None;
        }
        let inv = n2.sqrt().recip();
        Some(UnitVector3 {
            x: x * inv,
            y: y * inv,
            z: z * inv,
        })
    }

    /// The x component.
    #[inline]
    pub fn x(&self) -> f64 {
        self.x
    }
    /// The y component.
    #[inline]
    pub fn y(&self) -> f64 {
        self.y
    }
    /// The z component.
    #[inline]
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, o: &UnitVector3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product (not normalized; zero for parallel inputs).
    pub fn cross_raw(&self, o: &UnitVector3) -> (f64, f64, f64) {
        (
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Normalized cross product, `None` when the inputs are (anti)parallel.
    pub fn cross(&self, o: &UnitVector3) -> Option<UnitVector3> {
        let (x, y, z) = self.cross_raw(o);
        UnitVector3::new(x, y, z)
    }

    /// Converts back to longitude/latitude form.
    pub fn to_lonlat(&self) -> LonLat {
        let lon = f64::atan2(self.y, self.x);
        let lat = self.z.clamp(-1.0, 1.0).asin();
        LonLat::new(Angle::from_radians(lon), Angle::from_radians(lat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn poles_map_to_z_axis() {
        let n = LonLat::from_degrees(0.0, 90.0).to_vector();
        assert!(close(n.z(), 1.0) && close(n.x(), 0.0) && close(n.y(), 0.0));
        let s = LonLat::from_degrees(123.0, -90.0).to_vector();
        assert!(close(s.z(), -1.0));
    }

    #[test]
    fn equator_prime_meridian() {
        let v = LonLat::from_degrees(0.0, 0.0).to_vector();
        assert!(close(v.x(), 1.0) && close(v.y(), 0.0) && close(v.z(), 0.0));
    }

    #[test]
    fn longitude_normalizes() {
        let p = LonLat::from_degrees(-30.0, 10.0);
        assert!(close(p.ra_deg(), 330.0));
    }

    #[test]
    fn latitude_clamps() {
        let p = LonLat::from_degrees(0.0, 95.0);
        assert!(close(p.decl_deg(), 90.0));
        let q = LonLat::from_degrees(0.0, -95.0);
        assert!(close(q.decl_deg(), -90.0));
    }

    #[test]
    fn zero_vector_rejected() {
        assert!(UnitVector3::new(0.0, 0.0, 0.0).is_none());
        assert!(UnitVector3::new(f64::NAN, 1.0, 0.0).is_none());
    }

    #[test]
    fn cross_of_parallel_is_none() {
        let v = UnitVector3::new(1.0, 2.0, 3.0).unwrap();
        assert!(v.cross(&v).is_none());
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = UnitVector3::new(1.0, 0.0, 0.0).unwrap();
        let b = UnitVector3::new(0.0, 1.0, 0.0).unwrap();
        let c = a.cross(&b).unwrap();
        assert!(close(c.z(), 1.0));
        assert!(close(a.dot(&c), 0.0));
    }

    proptest! {
        #[test]
        fn round_trip_lonlat_vector(ra in 0.0f64..360.0, decl in -89.9f64..89.9) {
            let p = LonLat::from_degrees(ra, decl);
            let q = p.to_vector().to_lonlat();
            // Compare via chord distance to avoid the ra wrap at 0/360.
            let d = p.to_vector().dot(&q.to_vector());
            prop_assert!(d > 1.0 - 1e-12);
        }

        #[test]
        fn vectors_are_unit(ra in 0.0f64..360.0, decl in -90.0f64..90.0) {
            let v = LonLat::from_degrees(ra, decl).to_vector();
            let n = v.dot(&v);
            prop_assert!((n - 1.0).abs() < 1e-12);
        }

        #[test]
        fn normalization_makes_unit(x in -10.0f64..10.0, y in -10.0f64..10.0, z in -10.0f64..10.0) {
            prop_assume!(x*x + y*y + z*z > 1e-6);
            let v = UnitVector3::new(x, y, z).unwrap();
            prop_assert!((v.dot(&v) - 1.0).abs() < 1e-12);
        }
    }
}
