//! Deterministic fault injection for the fabric ("chaos fabric").
//!
//! Real Qserv inherits fault tolerance from Xrootd: writes and reads to
//! data servers can fail transiently and clients are expected to retry,
//! possibly against a different replica (paper §5.1.2, §7.3). To test
//! that machinery without a flaky network, every [`crate::XrdCluster`]
//! carries a [`FaultPlan`]: a seeded, per-server, per-operation schedule
//! of injectable faults. Tests arm the plan, run queries, and assert on
//! the plan's counters — exactly which faults fired.
//!
//! Determinism: probabilistic faults are decided by hashing
//! `(plan seed, server, operation, path, attempt#)` — no wall clock, no
//! global RNG — so a given seed produces the same fault pattern for a
//! given workload regardless of thread interleaving, and a *retry* of
//! the same operation (attempt# + 1) draws a fresh decision.

use crate::server::ServerId;
use parking_lot::Mutex;
use qserv_obs::clock::{wall_clock, SharedClock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The file-transaction sub-operations faults attach to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FabricOp {
    /// Opening a path (either direction).
    Open,
    /// Transferring payload toward a server.
    Write,
    /// Transferring payload from a server.
    Read,
    /// Closing a completed transaction.
    Close,
    /// Removing a file.
    Unlink,
}

impl FabricOp {
    const ALL: [FabricOp; 5] = [
        FabricOp::Open,
        FabricOp::Write,
        FabricOp::Read,
        FabricOp::Close,
        FabricOp::Unlink,
    ];

    fn index(self) -> usize {
        match self {
            FabricOp::Open => 0,
            FabricOp::Write => 1,
            FabricOp::Read => 2,
            FabricOp::Close => 3,
            FabricOp::Unlink => 4,
        }
    }
}

impl fmt::Display for FabricOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FabricOp::Open => "open",
            FabricOp::Write => "write",
            FabricOp::Read => "read",
            FabricOp::Close => "close",
            FabricOp::Unlink => "unlink",
        };
        f.write_str(name)
    }
}

/// What an armed rule does when it matches.
#[derive(Debug)]
enum FaultKind {
    /// Fail the next `remaining` matching operations.
    FailNext { remaining: AtomicU64 },
    /// Fail each matching operation with probability `p` (seeded).
    FailWithProbability { p: f64 },
    /// Wait `by` (through the plan's injected clock) before performing
    /// the operation: a real sleep under a wall clock, a pure
    /// virtual-time advance under a [`qserv_obs::VirtualClock`].
    Delay { by: Duration },
    /// Corrupt the payload with probability `p` (seeded).
    CorruptPayload { p: f64 },
}

/// One armed fault: a (server, operation) filter plus an effect.
#[derive(Debug)]
struct FaultRule {
    /// `None` matches every server.
    server: Option<ServerId>,
    /// `None` matches every operation.
    op: Option<FabricOp>,
    kind: FaultKind,
}

impl FaultRule {
    fn matches(&self, server: ServerId, op: FabricOp) -> bool {
        self.server.is_none_or(|s| s == server) && self.op.is_none_or(|o| o == op)
    }
}

/// Counter snapshot: what actually fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations failed by injection (all kinds).
    pub failures_injected: u64,
    /// Delays applied.
    pub delays_injected: u64,
    /// Payloads corrupted.
    pub payloads_corrupted: u64,
    /// Injected failures broken down by operation, indexed like
    /// [`FaultStats::failures_for`].
    pub failures_by_op: [u64; 5],
}

impl FaultStats {
    /// Injected failure count for one operation.
    pub fn failures_for(&self, op: FabricOp) -> u64 {
        self.failures_by_op[op.index()]
    }

    /// Total number of injected events of any kind.
    pub fn total(&self) -> u64 {
        self.failures_injected + self.delays_injected + self.payloads_corrupted
    }
}

/// The per-operation verdict the cluster asks the plan for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct Decision {
    /// Fail this operation with [`crate::XrdError::Injected`].
    pub fail: bool,
    /// Corrupt the payload moving through this operation.
    pub corrupt: bool,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A seeded fault schedule shared by every clone of one cluster.
///
/// A fresh plan has no rules and injects nothing; it costs one relaxed
/// atomic load per fabric sub-operation.
pub struct FaultPlan {
    seed: u64,
    /// The clock delay faults wait through. Defaults to the wall clock;
    /// chaos tests inject a shared virtual clock so injected latency
    /// advances virtual time instead of blocking dispatcher threads.
    clock: Mutex<SharedClock>,
    /// Fast path: number of armed rules (0 ⇒ skip all bookkeeping).
    armed: AtomicU64,
    rules: Mutex<Vec<FaultRule>>,
    /// Attempt numbers per (server, op, path), making probabilistic
    /// decisions deterministic under retry: attempt k of the same
    /// operation always draws the same verdict, attempt k+1 a fresh one.
    attempts: Mutex<HashMap<(ServerId, FabricOp, String), u64>>,
    failures: AtomicU64,
    delays: AtomicU64,
    corruptions: AtomicU64,
    failures_by_op: [AtomicU64; 5],
}

impl FaultPlan {
    /// An empty plan with the given decision seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            clock: Mutex::new(wall_clock()),
            armed: AtomicU64::new(0),
            rules: Mutex::new(Vec::new()),
            attempts: Mutex::new(HashMap::new()),
            failures: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            failures_by_op: Default::default(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the clock delay faults wait through (shared with the
    /// master's dispatch clock when injected via `ClusterBuilder`).
    pub fn set_clock(&self, clock: SharedClock) {
        *self.clock.lock() = clock;
    }

    /// The clock delay faults wait through.
    pub fn clock(&self) -> SharedClock {
        self.clock.lock().clone()
    }

    fn push(&self, rule: FaultRule) {
        self.rules.lock().push(rule);
        self.armed.fetch_add(1, Ordering::SeqCst);
    }

    /// Fails the next `n` operations matching `(server, op)`
    /// (`None` = wildcard).
    pub fn fail_next(&self, server: Option<ServerId>, op: Option<FabricOp>, n: u64) {
        self.push(FaultRule {
            server,
            op,
            kind: FaultKind::FailNext {
                remaining: AtomicU64::new(n),
            },
        });
    }

    /// Fails matching operations with probability `p`, decided
    /// deterministically from the plan seed.
    pub fn fail_with_probability(&self, server: Option<ServerId>, op: Option<FabricOp>, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.push(FaultRule {
            server,
            op,
            kind: FaultKind::FailWithProbability { p },
        });
    }

    /// Delays matching operations by `by` (injected latency).
    pub fn delay(&self, server: Option<ServerId>, op: Option<FabricOp>, by: Duration) {
        self.push(FaultRule {
            server,
            op,
            kind: FaultKind::Delay { by },
        });
    }

    /// Corrupts payloads of matching operations with probability `p`
    /// (seeded). Only meaningful for [`FabricOp::Write`] and
    /// [`FabricOp::Read`].
    pub fn corrupt_payload(&self, server: Option<ServerId>, op: Option<FabricOp>, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.push(FaultRule {
            server,
            op,
            kind: FaultKind::CorruptPayload { p },
        });
    }

    /// Disarms every rule (counters are kept).
    pub fn clear(&self) {
        self.rules.lock().clear();
        self.attempts.lock().clear();
        self.armed.store(0, Ordering::SeqCst);
    }

    /// Counter snapshot of everything that fired so far.
    pub fn stats(&self) -> FaultStats {
        let mut failures_by_op = [0u64; 5];
        for op in FabricOp::ALL {
            failures_by_op[op.index()] = self.failures_by_op[op.index()].load(Ordering::SeqCst);
        }
        FaultStats {
            failures_injected: self.failures.load(Ordering::SeqCst),
            delays_injected: self.delays.load(Ordering::SeqCst),
            payloads_corrupted: self.corruptions.load(Ordering::SeqCst),
            failures_by_op,
        }
    }

    /// Seeded coin flip for attempt `attempt` of `(server, op, path)`,
    /// stream-separated by `salt` so failure and corruption rules on the
    /// same operation draw independent verdicts.
    fn draw(&self, server: ServerId, op: FabricOp, path: &str, attempt: u64, salt: u64) -> f64 {
        let key = self.seed.wrapping_mul(0x9E3779B97F4A7C15)
            ^ fnv1a(path.as_bytes())
            ^ (server as u64).wrapping_mul(0xA24BAED4963EE407)
            ^ (op.index() as u64).wrapping_mul(0x9FB21C651E98DF25)
            ^ attempt.wrapping_mul(0xD6E8FEB86659FD93)
            ^ salt.wrapping_mul(0xC2B2AE3D27D4EB4F);
        (splitmix64(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Evaluates every armed rule for one fabric sub-operation, applying
    /// delays inline and returning whether to fail and/or corrupt.
    pub(crate) fn decide(&self, server: ServerId, op: FabricOp, path: &str) -> Decision {
        if self.armed.load(Ordering::Relaxed) == 0 {
            return Decision::default();
        }
        let attempt = {
            let mut attempts = self.attempts.lock();
            let n = attempts.entry((server, op, path.to_string())).or_insert(0);
            *n += 1;
            *n
        };
        let mut decision = Decision::default();
        let mut delay_total = Duration::ZERO;
        let rules = self.rules.lock();
        for rule in rules.iter().filter(|r| r.matches(server, op)) {
            match &rule.kind {
                FaultKind::FailNext { remaining } => {
                    // Claim one failure slot if any remain.
                    let claimed = remaining
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                        .is_ok();
                    if claimed {
                        decision.fail = true;
                    }
                }
                FaultKind::FailWithProbability { p } => {
                    if self.draw(server, op, path, attempt, 1) < *p {
                        decision.fail = true;
                    }
                }
                FaultKind::Delay { by } => {
                    self.delays.fetch_add(1, Ordering::SeqCst);
                    delay_total += *by;
                }
                FaultKind::CorruptPayload { p } => {
                    if self.draw(server, op, path, attempt, 2) < *p {
                        decision.corrupt = true;
                    }
                }
            }
        }
        drop(rules);
        if !delay_total.is_zero() {
            // Wait outside the rules lock so an injected (wall-clock)
            // latency never serializes other threads' fault decisions.
            let clock = self.clock.lock().clone();
            clock.sleep(delay_total);
        }
        if decision.fail {
            self.failures.fetch_add(1, Ordering::SeqCst);
            self.failures_by_op[op.index()].fetch_add(1, Ordering::SeqCst);
        }
        if decision.corrupt {
            self.corruptions.fetch_add(1, Ordering::SeqCst);
        }
        decision
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rules", &*self.rules.lock())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Flips one bit in every 16th byte — enough to break both query text
/// and result payloads while keeping the length (a real fabric corrupts
/// content, not framing).
pub(crate) fn corrupt(data: &mut [u8]) {
    if data.is_empty() {
        return;
    }
    for i in (0..data.len()).step_by(16) {
        data[i] ^= 0x20;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qserv_obs::Clock;

    #[test]
    fn unarmed_plan_is_inert() {
        let plan = FaultPlan::new(7);
        for op in FabricOp::ALL {
            assert_eq!(plan.decide(0, op, "/q"), Decision::default());
        }
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn fail_next_counts_down() {
        let plan = FaultPlan::new(7);
        plan.fail_next(None, Some(FabricOp::Write), 2);
        assert!(plan.decide(0, FabricOp::Write, "/a").fail);
        assert!(!plan.decide(0, FabricOp::Read, "/a").fail);
        assert!(plan.decide(1, FabricOp::Write, "/b").fail);
        assert!(!plan.decide(2, FabricOp::Write, "/c").fail);
        let stats = plan.stats();
        assert_eq!(stats.failures_injected, 2);
        assert_eq!(stats.failures_for(FabricOp::Write), 2);
        assert_eq!(stats.failures_for(FabricOp::Read), 0);
    }

    #[test]
    fn server_filter_applies() {
        let plan = FaultPlan::new(7);
        plan.fail_next(Some(3), None, 10);
        assert!(!plan.decide(0, FabricOp::Read, "/a").fail);
        assert!(plan.decide(3, FabricOp::Read, "/a").fail);
    }

    #[test]
    fn probability_is_seed_deterministic_and_attempt_sensitive() {
        let a = FaultPlan::new(42);
        let b = FaultPlan::new(42);
        for plan in [&a, &b] {
            plan.fail_with_probability(None, Some(FabricOp::Read), 0.5);
        }
        let seq_a: Vec<bool> = (0..64)
            .map(|i| a.decide(0, FabricOp::Read, &format!("/r/{i}")).fail)
            .collect();
        let seq_b: Vec<bool> = (0..64)
            .map(|i| b.decide(0, FabricOp::Read, &format!("/r/{i}")).fail)
            .collect();
        assert_eq!(seq_a, seq_b, "same seed ⇒ same verdicts");
        assert!(seq_a.iter().any(|&f| f) && seq_a.iter().any(|&f| !f));

        // A retry of the same path is a new attempt with its own verdict;
        // across many paths both outcomes must occur.
        let c = FaultPlan::new(9);
        c.fail_with_probability(None, Some(FabricOp::Read), 0.5);
        let mut changed = false;
        for i in 0..64 {
            let p = format!("/r/{i}");
            let first = c.decide(0, FabricOp::Read, &p).fail;
            let second = c.decide(0, FabricOp::Read, &p).fail;
            changed |= first != second;
        }
        assert!(changed, "retries must draw fresh verdicts");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        for plan in [&a, &b] {
            plan.fail_with_probability(None, None, 0.5);
        }
        let seq_a: Vec<bool> = (0..64)
            .map(|i| a.decide(0, FabricOp::Read, &format!("/r/{i}")).fail)
            .collect();
        let seq_b: Vec<bool> = (0..64)
            .map(|i| b.decide(0, FabricOp::Read, &format!("/r/{i}")).fail)
            .collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn delay_fires_and_counts() {
        let plan = FaultPlan::new(7);
        plan.delay(None, Some(FabricOp::Open), Duration::from_millis(1));
        let t = std::time::Instant::now();
        let d = plan.decide(0, FabricOp::Open, "/a");
        assert!(!d.fail);
        assert!(t.elapsed() >= Duration::from_millis(1));
        assert_eq!(plan.stats().delays_injected, 1);
    }

    #[test]
    fn delay_advances_virtual_clock_without_wall_sleep() {
        let plan = FaultPlan::new(7);
        let vclock = qserv_obs::VirtualClock::shared();
        plan.set_clock(vclock.clone());
        plan.delay(None, Some(FabricOp::Open), Duration::from_secs(30));
        let wall = std::time::Instant::now();
        plan.decide(0, FabricOp::Open, "/a");
        plan.decide(1, FabricOp::Open, "/b");
        assert_eq!(vclock.now(), Duration::from_secs(60));
        assert_eq!(plan.stats().delays_injected, 2);
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "a 60s injected delay must not block the thread"
        );
    }

    #[test]
    fn corruption_flags_and_mutates() {
        let plan = FaultPlan::new(7);
        plan.corrupt_payload(None, Some(FabricOp::Read), 1.0);
        assert!(plan.decide(0, FabricOp::Read, "/a").corrupt);
        assert_eq!(plan.stats().payloads_corrupted, 1);
        let mut data = b"SELECT 1".to_vec();
        let orig = data.clone();
        corrupt(&mut data);
        assert_ne!(data, orig);
        assert_eq!(data.len(), orig.len());
    }

    #[test]
    fn clear_disarms() {
        let plan = FaultPlan::new(7);
        plan.fail_next(None, None, 100);
        assert!(plan.decide(0, FabricOp::Write, "/a").fail);
        plan.clear();
        assert!(!plan.decide(0, FabricOp::Write, "/a").fail);
        // Counters survive clearing.
        assert_eq!(plan.stats().failures_injected, 1);
    }
}
