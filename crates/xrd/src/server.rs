//! Data servers and the ofs-plugin hook.
//!
//! "In Qserv, Xrootd data servers become Qserv workers by plugging custom
//! code into Xrootd as a custom file system ('ofs plugin') implementation"
//! (paper §5.1.2). A [`DataServer`] stores named files and *exports* a set
//! of paths into the cluster namespace; when a client finishes writing an
//! exported file, the server's [`OfsPlugin`] is invoked with the path and
//! payload — that callback is where the Qserv worker executes chunk
//! queries and deposits result files.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identifies one data server in a cluster.
pub type ServerId = usize;

/// The worker-side hook invoked when a client completes a write
/// transaction on an exported path.
pub trait OfsPlugin: Send + Sync {
    /// Called after the written file is closed. `server` grants access to
    /// the server's local store so the plugin can deposit result files
    /// (typically under `/result/<md5>`).
    fn on_file_closed(&self, server: &DataServer, path: &str, data: &[u8]);
}

/// An Xrootd-style data server: a file store plus exported paths and an
/// optional plugin.
pub struct DataServer {
    id: ServerId,
    files: RwLock<HashMap<String, Arc<Vec<u8>>>>,
    exports: RwLock<Vec<String>>,
    plugin: RwLock<Option<Arc<dyn OfsPlugin>>>,
    online: AtomicBool,
}

impl DataServer {
    /// Creates an online server with no files or exports.
    pub fn new(id: ServerId) -> DataServer {
        DataServer {
            id,
            files: RwLock::new(HashMap::new()),
            exports: RwLock::new(Vec::new()),
            plugin: RwLock::new(None),
            online: AtomicBool::new(true),
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Installs the ofs plugin (the Qserv worker logic).
    pub fn install_plugin(&self, plugin: Arc<dyn OfsPlugin>) {
        *self.plugin.write() = Some(plugin);
    }

    /// Adds `path` to the server's exported namespace. Exported paths are
    /// what the redirector advertises; writing to them triggers the
    /// plugin.
    pub fn export(&self, path: &str) {
        let mut e = self.exports.write();
        if !e.iter().any(|p| p == path) {
            e.push(path.to_string());
        }
    }

    /// Removes `path` from the exported namespace, returning whether it
    /// was exported. Rebalancing moves a chunk's export to another
    /// server; the redirector's resolution cache must be invalidated
    /// afterwards, since cached entries do not re-check exports.
    pub fn unexport(&self, path: &str) -> bool {
        let mut e = self.exports.write();
        match e.iter().position(|p| p == path) {
            Some(i) => {
                e.remove(i);
                true
            }
            None => false,
        }
    }

    /// The exported paths (sorted copies).
    pub fn exports(&self) -> Vec<String> {
        let mut e = self.exports.read().clone();
        e.sort();
        e
    }

    /// True when this server currently exports `path`.
    pub fn exports_path(&self, path: &str) -> bool {
        self.exports.read().iter().any(|p| p == path)
    }

    /// Marks the server offline (fault injection) or back online.
    pub fn set_online(&self, online: bool) {
        self.online.store(online, Ordering::SeqCst);
    }

    /// True when the server answers requests.
    pub fn is_online(&self) -> bool {
        self.online.load(Ordering::SeqCst)
    }

    /// Stores a file locally (used by plugins to deposit results, and by
    /// completed client writes).
    pub fn put_file(&self, path: &str, data: Vec<u8>) {
        self.files.write().insert(path.to_string(), Arc::new(data));
    }

    /// Reads a file, if present.
    pub fn get_file(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        self.files.read().get(path).cloned()
    }

    /// Deletes a file; true when it existed. (The master unlinks result
    /// files after reading them.)
    pub fn delete_file(&self, path: &str) -> bool {
        self.files.write().remove(path).is_some()
    }

    /// Number of stored files.
    pub fn num_files(&self) -> usize {
        self.files.read().len()
    }

    /// Sorted names of stored files whose path starts with `prefix`
    /// (pass `""` for all). Tests use this to assert the master leaves no
    /// `/result/*` residue behind.
    pub fn file_names(&self, prefix: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .files
            .read()
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Completes a client write transaction: stores the file and fires the
    /// plugin when the path is exported.
    pub fn complete_write(&self, path: &str, data: Vec<u8>) {
        self.put_file(path, data.clone());
        let plugin = self.plugin.read().clone();
        if let Some(p) = plugin {
            if self.exports_path(path) {
                p.on_file_closed(self, path, &data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl OfsPlugin for Echo {
        fn on_file_closed(&self, server: &DataServer, path: &str, data: &[u8]) {
            // Deposit an uppercased copy under /result/<path tail>.
            let tail = path
                .rsplit('/')
                .next()
                .expect("split always yields one item");
            server.put_file(&format!("/result/{tail}"), data.to_ascii_uppercase());
        }
    }

    #[test]
    fn files_store_and_delete() {
        let s = DataServer::new(3);
        assert_eq!(s.id(), 3);
        s.put_file("/a", vec![1, 2]);
        assert_eq!(*s.get_file("/a").unwrap(), vec![1, 2]);
        assert!(s.delete_file("/a"));
        assert!(!s.delete_file("/a"));
        assert!(s.get_file("/a").is_none());
    }

    #[test]
    fn exports_deduplicate() {
        let s = DataServer::new(0);
        s.export("/query2/5");
        s.export("/query2/5");
        s.export("/query2/1");
        assert_eq!(s.exports(), vec!["/query2/1", "/query2/5"]);
        assert!(s.exports_path("/query2/5"));
        assert!(!s.exports_path("/query2/9"));
    }

    #[test]
    fn unexport_removes_only_the_named_path() {
        let s = DataServer::new(0);
        s.export("/query2/5");
        s.export("/query2/1");
        assert!(s.unexport("/query2/5"));
        assert!(!s.unexport("/query2/5"));
        assert_eq!(s.exports(), vec!["/query2/1"]);
        assert!(!s.exports_path("/query2/5"));
    }

    #[test]
    fn plugin_fires_on_exported_write_only() {
        let s = DataServer::new(0);
        s.install_plugin(Arc::new(Echo));
        s.export("/query2/7");
        s.complete_write("/query2/7", b"select".to_vec());
        assert_eq!(*s.get_file("/result/7").unwrap(), b"SELECT".to_vec());
        // Non-exported path: stored but no plugin action.
        s.complete_write("/scratch/x", b"noop".to_vec());
        assert_eq!(s.num_files(), 3);
        assert!(s.get_file("/result/x").is_none());
    }

    #[test]
    fn online_toggle() {
        let s = DataServer::new(0);
        assert!(s.is_online());
        s.set_online(false);
        assert!(!s.is_online());
        s.set_online(true);
        assert!(s.is_online());
    }
}
