//! MD5 (RFC 1321), implemented from scratch.
//!
//! Qserv addresses chunk-query results by the MD5 hash of the query text,
//! "represented via 32 hexadecimal digits in ASCII" (paper §5.4). MD5 is
//! used here purely as a content address — collision resistance against an
//! adversary is irrelevant, byte-compatibility with the original path
//! scheme is the point.

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of sines of integers: `floor(2^32 * |sin(i+1)|)`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Computes the MD5 digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    // Padded message: data || 0x80 || zeros || bit-length (little endian).
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());
    debug_assert_eq!(msg.len() % 64, 0);

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in chunk.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let f = f.wrapping_add(a).wrapping_add(K[i]).wrapping_add(m[g]);
            a = d;
            d = c;
            c = b;
            b = b.wrapping_add(f.rotate_left(S[i]));
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// MD5 as 32 lowercase hex digits — the `H` of `/result/H` (paper §5.4).
pub fn md5_hex(data: &[u8]) -> String {
    let digest = md5(data);
    let mut s = String::with_capacity(32);
    for b in digest {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let vectors = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in vectors {
            assert_eq!(md5_hex(input.as_bytes()), expect, "input {input:?}");
        }
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 55/56/64-byte padding edges.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![b'x'; len];
            let h = md5_hex(&data);
            assert_eq!(h.len(), 32);
            // Deterministic.
            assert_eq!(h, md5_hex(&data));
        }
    }

    #[test]
    fn known_56_byte_vector() {
        // Exactly at the padding boundary (needs a second block).
        assert_eq!(
            md5_hex(b"01234567890123456789012345678901234567890123456789012345"),
            "8af270b2847610e742b0791b53648c09" // verified against coreutils md5sum
        );
    }

    #[test]
    fn hex_is_lowercase_32_chars() {
        let h = md5_hex(b"SELECT COUNT(*) FROM Object_1234");
        assert_eq!(h.len(), 32);
        assert!(h
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    proptest! {
        #[test]
        fn distinct_inputs_distinct_hashes(a in proptest::collection::vec(any::<u8>(), 0..256),
                                           b in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assume!(a != b);
            prop_assert_ne!(md5_hex(&a), md5_hex(&b));
        }

        #[test]
        fn deterministic(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            prop_assert_eq!(md5(&data), md5(&data));
        }
    }
}
