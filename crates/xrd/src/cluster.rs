//! Client-facing file transactions over the fabric.
//!
//! Paper §5.4 describes dispatch as two file-level transactions: (1) open a
//! partition-addressed path for writing, write the chunk query, close;
//! (2) open the hash-addressed result path for reading, read until EOF,
//! close. [`XrdCluster`] exposes exactly those two operations plus the
//! bookkeeping a master needs (which worker served the write, so the
//! result read can target it directly).

use crate::fault::{FabricOp, FaultPlan};
use crate::redirector::Redirector;
use crate::server::{DataServer, ServerId};
use qserv_obs::trace::{self, SpanGuard};
use std::fmt;
use std::sync::Arc;

/// Opens a trace span for one fabric sub-operation when the calling
/// thread has an active trace context; a no-op (`None`) otherwise.
fn op_span(op: FabricOp, server: ServerId, path: &str) -> Option<SpanGuard> {
    let name = match op {
        FabricOp::Open => "fabric.open",
        FabricOp::Write => "fabric.write",
        FabricOp::Read => "fabric.read",
        FabricOp::Close => "fabric.close",
        FabricOp::Unlink => "fabric.unlink",
    };
    let g = trace::span(name)?;
    g.annotate("server", &server.to_string());
    g.annotate("path", path);
    Some(g)
}

/// Records an error on the span (if both exist) and passes the result
/// through unchanged.
fn note_fault<T>(span: &Option<SpanGuard>, r: Result<T, XrdError>) -> Result<T, XrdError> {
    if let (Some(g), Err(e)) = (span, &r) {
        g.annotate("error", &e.to_string());
    }
    r
}

/// Errors from cluster file transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XrdError {
    /// No online server exports the path.
    NoServerForPath(String),
    /// Direct read addressed a server that does not exist.
    NoSuchServer(ServerId),
    /// The addressed server is offline.
    ServerOffline(ServerId),
    /// The file does not exist on the addressed server.
    NoSuchFile {
        /// Server consulted.
        server: ServerId,
        /// Path requested.
        path: String,
    },
    /// The cluster's [`FaultPlan`] failed this operation (transient by
    /// construction: a retry draws a fresh verdict).
    Injected {
        /// Server the operation addressed.
        server: ServerId,
        /// Sub-operation that was failed.
        op: FabricOp,
        /// Path involved.
        path: String,
    },
}

impl XrdError {
    /// True for errors a client may reasonably retry (possibly against
    /// another replica): injected faults and offline servers. Missing
    /// paths/files and unknown server ids are permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, XrdError::Injected { .. } | XrdError::ServerOffline(_))
    }
}

impl fmt::Display for XrdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XrdError::NoServerForPath(p) => write!(f, "no online server exports {p}"),
            XrdError::NoSuchServer(s) => write!(f, "no such server {s}"),
            XrdError::ServerOffline(s) => write!(f, "server {s} is offline"),
            XrdError::NoSuchFile { server, path } => {
                write!(f, "server {server} has no file {path}")
            }
            XrdError::Injected { server, op, path } => {
                write!(f, "injected fault: {op} on server {server} for {path}")
            }
        }
    }
}

impl std::error::Error for XrdError {}

/// A handle on the whole fabric: redirector plus servers. Cheap to clone
/// and `Sync`; every dispatcher thread holds one.
#[derive(Clone)]
pub struct XrdCluster {
    redirector: Arc<Redirector>,
    faults: Arc<FaultPlan>,
}

impl XrdCluster {
    /// Builds a cluster of `n` empty data servers with an inert fault
    /// plan (seed 0, no rules armed).
    pub fn with_servers(n: usize) -> XrdCluster {
        XrdCluster::with_servers_and_faults(n, FaultPlan::new(0))
    }

    /// Builds a cluster of `n` empty data servers carrying `faults`.
    pub fn with_servers_and_faults(n: usize, faults: FaultPlan) -> XrdCluster {
        let servers: Vec<Arc<DataServer>> = (0..n).map(|i| Arc::new(DataServer::new(i))).collect();
        XrdCluster {
            redirector: Arc::new(Redirector::new(servers)),
            faults: Arc::new(faults),
        }
    }

    /// The fault plan shared by every clone of this cluster.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The redirector.
    pub fn redirector(&self) -> &Redirector {
        &self.redirector
    }

    /// The server set.
    pub fn servers(&self) -> &[Arc<DataServer>] {
        self.redirector.servers()
    }

    /// One server by id.
    pub fn server(&self, id: ServerId) -> Option<Arc<DataServer>> {
        self.redirector.server(id)
    }

    /// Checks one fabric sub-operation against the fault plan, failing
    /// with [`XrdError::Injected`] when the plan says so.
    fn check(&self, server: ServerId, op: FabricOp, path: &str) -> Result<bool, XrdError> {
        let d = self.faults.decide(server, op, path);
        if d.fail {
            return Err(XrdError::Injected {
                server,
                op,
                path: path.to_string(),
            });
        }
        Ok(d.corrupt)
    }

    /// **Transaction 1** (paper §5.4): open `path` for writing via the
    /// redirector, write `data`, close. Returns the id of the server that
    /// accepted the write (whose plugin has already run, synchronously, by
    /// the time this returns — our in-process stand-in for the worker
    /// having picked up the request).
    pub fn write_file(&self, path: &str, data: Vec<u8>) -> Result<ServerId, XrdError> {
        self.write_file_excluding(path, data, &[])
    }

    /// [`XrdCluster::write_file`], but never resolving to a server in
    /// `exclude` — retrying clients steer away from replicas that already
    /// failed them.
    pub fn write_file_excluding(
        &self,
        path: &str,
        data: Vec<u8>,
        exclude: &[ServerId],
    ) -> Result<ServerId, XrdError> {
        let server = self
            .redirector
            .resolve_excluding(path, exclude)
            .ok_or_else(|| XrdError::NoServerForPath(path.to_string()))?;
        self.write_to_server(&server, path, data)
    }

    /// [`XrdCluster::write_file_excluding`] with a replica *preference*:
    /// the placement layer may order a chunk's replicas (e.g. away from
    /// hot nodes), and the first preferred server that is online, exports
    /// the path and is not excluded gets the write. With no usable
    /// preference the call falls back to the redirector's rotation —
    /// bit-identical to [`XrdCluster::write_file_excluding`].
    pub fn write_file_routed(
        &self,
        path: &str,
        data: Vec<u8>,
        preferred: &[ServerId],
        exclude: &[ServerId],
    ) -> Result<ServerId, XrdError> {
        for &id in preferred {
            if exclude.contains(&id) {
                continue;
            }
            let Some(server) = self.redirector.server(id) else {
                continue;
            };
            if !server.is_online() || !server.exports_path(path) {
                continue;
            }
            return self.write_to_server(&server, path, data);
        }
        self.write_file_excluding(path, data, exclude)
    }

    /// Writes `data` to `path` on a *specific* server as a plain file
    /// transaction (open → write → close, each fault-checked) without
    /// consulting the export namespace and without firing the ofs plugin —
    /// the transport half of a chunk-replica copy. Corruption faults
    /// mangle the stored payload; the receiver is expected to verify a
    /// digest before acknowledging the replica.
    pub fn put_file_direct(
        &self,
        server: ServerId,
        path: &str,
        mut data: Vec<u8>,
    ) -> Result<(), XrdError> {
        let s = self
            .redirector
            .server(server)
            .ok_or(XrdError::NoSuchServer(server))?;
        if !s.is_online() {
            return Err(XrdError::ServerOffline(server));
        }
        {
            let g = op_span(FabricOp::Open, server, path);
            note_fault(&g, self.check(server, FabricOp::Open, path))?;
        }
        {
            let g = op_span(FabricOp::Write, server, path);
            if note_fault(&g, self.check(server, FabricOp::Write, path))? {
                if let Some(g) = &g {
                    g.annotate("corrupted", "true");
                }
                crate::fault::corrupt(&mut data);
            }
            s.put_file(path, data);
        }
        {
            let g = op_span(FabricOp::Close, server, path);
            note_fault(&g, self.check(server, FabricOp::Close, path))?;
        }
        Ok(())
    }

    /// The shared §5.4 write transaction against an already-resolved
    /// server.
    fn write_to_server(
        &self,
        server: &Arc<DataServer>,
        path: &str,
        mut data: Vec<u8>,
    ) -> Result<ServerId, XrdError> {
        let id = server.id();
        {
            let g = op_span(FabricOp::Open, id, path);
            note_fault(&g, self.check(id, FabricOp::Open, path))?;
        }
        {
            // The write span also covers `complete_write`, where the
            // worker plugin runs synchronously — worker statement spans
            // nest inside the fabric write that delivered their query.
            let g = op_span(FabricOp::Write, id, path);
            if note_fault(&g, self.check(id, FabricOp::Write, path))? {
                if let Some(g) = &g {
                    g.annotate("corrupted", "true");
                }
                crate::fault::corrupt(&mut data);
            }
            server.complete_write(path, data);
        }
        // A close fault lands *after* the server accepted the payload (and
        // its plugin ran): the client sees failure on work that happened.
        {
            let g = op_span(FabricOp::Close, id, path);
            note_fault(&g, self.check(id, FabricOp::Close, path))?;
        }
        Ok(id)
    }

    /// **Transaction 2** (paper §5.4): open `path` for reading on a
    /// specific server, read until EOF, close. Qserv reads results from
    /// the worker that executed the chunk query
    /// (`xrootd://<worker>/result/H`).
    pub fn read_file(&self, server: ServerId, path: &str) -> Result<Arc<Vec<u8>>, XrdError> {
        let s = self
            .redirector
            .server(server)
            .ok_or(XrdError::NoSuchServer(server))?;
        if !s.is_online() {
            return Err(XrdError::ServerOffline(server));
        }
        let data = {
            let g = op_span(FabricOp::Open, server, path);
            note_fault(&g, self.check(server, FabricOp::Open, path))?;
            note_fault(
                &g,
                s.get_file(path).ok_or_else(|| XrdError::NoSuchFile {
                    server,
                    path: path.to_string(),
                }),
            )?
        };
        let corrupted = {
            let g = op_span(FabricOp::Read, server, path);
            let corrupted = note_fault(&g, self.check(server, FabricOp::Read, path))?;
            if corrupted {
                if let Some(g) = &g {
                    g.annotate("corrupted", "true");
                }
            }
            corrupted
        };
        {
            let g = op_span(FabricOp::Close, server, path);
            note_fault(&g, self.check(server, FabricOp::Close, path))?;
        }
        if corrupted {
            let mut copy = (*data).clone();
            crate::fault::corrupt(&mut copy);
            return Ok(Arc::new(copy));
        }
        Ok(data)
    }

    /// Reads via the redirector instead of a known server (used when the
    /// path itself is globally addressed).
    pub fn read_resolved(&self, path: &str) -> Result<Arc<Vec<u8>>, XrdError> {
        let s = self
            .redirector
            .resolve(path)
            .ok_or_else(|| XrdError::NoServerForPath(path.to_string()))?;
        s.get_file(path).ok_or_else(|| XrdError::NoSuchFile {
            server: s.id(),
            path: path.to_string(),
        })
    }

    /// Unlinks `path` on `server` (masters clean up consumed results).
    pub fn unlink(&self, server: ServerId, path: &str) -> Result<bool, XrdError> {
        let s = self
            .redirector
            .server(server)
            .ok_or(XrdError::NoSuchServer(server))?;
        let g = op_span(FabricOp::Unlink, server, path);
        note_fault(&g, self.check(server, FabricOp::Unlink, path))?;
        Ok(s.delete_file(path))
    }
}

/// Formats the partition-addressed dispatch path for a chunk id:
/// `/query2/CC` (paper §5.4).
pub fn query_path(chunk_id: i32) -> String {
    format!("/query2/{chunk_id}")
}

/// Formats the hash-addressed result path: `/result/H` (paper §5.4).
pub fn result_path(query_hash: &str) -> String {
    format!("/result/{query_hash}")
}

/// Formats the staging path a chunk-replica copy moves one table's
/// payload through: `/chunk/<table>/<chunk>`. Never exported — staging
/// files are addressed directly by server id on both ends of the copy.
pub fn chunk_data_path(table: &str, chunk_id: i32) -> String {
    format!("/chunk/{table}/{chunk_id}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md5::md5_hex;
    use crate::server::OfsPlugin;

    /// A worker plugin that "executes" a query by depositing its byte
    /// length as the result, at the md5-addressed result path.
    struct LenWorker;
    impl OfsPlugin for LenWorker {
        fn on_file_closed(&self, server: &DataServer, _path: &str, data: &[u8]) {
            let hash = md5_hex(data);
            server.put_file(&result_path(&hash), data.len().to_string().into_bytes());
        }
    }

    fn cluster() -> XrdCluster {
        let c = XrdCluster::with_servers(4);
        for (i, s) in c.servers().iter().enumerate() {
            s.install_plugin(Arc::new(LenWorker));
            // Chunk i and i+4 on server i.
            s.export(&query_path(i as i32));
            s.export(&query_path(i as i32 + 4));
        }
        c
    }

    #[test]
    fn two_transaction_dispatch() {
        let c = cluster();
        let query = b"-- SUBCHUNKS:\nSELECT COUNT(*) FROM Object_5;".to_vec();
        // Transaction 1: write the chunk query to /query2/5.
        let worker = c.write_file(&query_path(5), query.clone()).unwrap();
        assert_eq!(worker, 1); // chunk 5 lives on server 1
                               // Transaction 2: read the result at /result/md5(query) on that worker.
        let res = c.read_file(worker, &result_path(&md5_hex(&query))).unwrap();
        assert_eq!(*res, query.len().to_string().into_bytes());
    }

    #[test]
    fn write_to_unexported_path_fails() {
        let c = cluster();
        assert_eq!(
            c.write_file("/query2/999", vec![]),
            Err(XrdError::NoServerForPath("/query2/999".into()))
        );
    }

    #[test]
    fn read_errors() {
        let c = cluster();
        assert!(matches!(
            c.read_file(99, "/x"),
            Err(XrdError::NoSuchServer(99))
        ));
        assert!(matches!(
            c.read_file(0, "/missing"),
            Err(XrdError::NoSuchFile { .. })
        ));
        c.servers()[0].set_online(false);
        assert!(matches!(
            c.read_file(0, "/x"),
            Err(XrdError::ServerOffline(0))
        ));
    }

    #[test]
    fn unlink_after_read() {
        let c = cluster();
        let q = b"q".to_vec();
        let w = c.write_file(&query_path(2), q.clone()).unwrap();
        let rp = result_path(&md5_hex(&q));
        assert!(c.unlink(w, &rp).unwrap());
        assert!(!c.unlink(w, &rp).unwrap());
        assert!(matches!(
            c.read_file(w, &rp),
            Err(XrdError::NoSuchFile { .. })
        ));
    }

    #[test]
    fn failover_to_replica_server() {
        let c = cluster();
        // Replicate chunk 0 onto server 3 as well.
        c.servers()[3].export(&query_path(0));
        c.servers()[0].set_online(false);
        let w = c.write_file(&query_path(0), b"q".to_vec()).unwrap();
        assert_eq!(w, 3);
    }

    #[test]
    fn concurrent_dispatch_from_many_threads() {
        let c = cluster();
        crossbeam::thread::scope(|scope| {
            for t in 0..8 {
                let c = c.clone();
                scope.spawn(move |_| {
                    for i in 0..50 {
                        let chunk = (t * 50 + i) % 8;
                        let q = format!("SELECT {t} FROM Object_{chunk}").into_bytes();
                        let w = c.write_file(&query_path(chunk), q.clone()).unwrap();
                        let r = c.read_file(w, &result_path(&md5_hex(&q))).unwrap();
                        assert_eq!(*r, q.len().to_string().into_bytes());
                    }
                });
            }
        })
        .expect("no worker thread panics");
    }

    #[test]
    fn injected_write_fault_fails_before_server_work() {
        let c = cluster();
        c.faults()
            .fail_next(None, Some(crate::fault::FabricOp::Write), 1);
        let q = b"q".to_vec();
        let err = c.write_file(&query_path(3), q.clone()).unwrap_err();
        assert!(err.is_transient(), "{err:?}");
        // The write was failed *before* the server stored or executed it.
        assert_eq!(c.servers()[3].num_files(), 0);
        // Next attempt goes through and excludes nothing.
        assert!(c.write_file(&query_path(3), q).is_ok());
        assert_eq!(c.faults().stats().failures_injected, 1);
    }

    #[test]
    fn injected_close_fault_fails_after_server_work() {
        let c = cluster();
        c.faults()
            .fail_next(None, Some(crate::fault::FabricOp::Close), 1);
        let q = b"q".to_vec();
        let err = c.write_file(&query_path(3), q.clone()).unwrap_err();
        assert!(matches!(
            err,
            XrdError::Injected {
                op: crate::fault::FabricOp::Close,
                ..
            }
        ));
        // Close failed, but the payload landed and the plugin ran: the
        // result file exists even though the client saw an error.
        assert!(c.servers()[3]
            .get_file(&result_path(&md5_hex(&q)))
            .is_some());
    }

    #[test]
    fn write_excluding_steers_to_replica() {
        let c = cluster();
        c.servers()[3].export(&query_path(0));
        for _ in 0..8 {
            let w = c
                .write_file_excluding(&query_path(0), b"q".to_vec(), &[0])
                .unwrap();
            assert_eq!(w, 3);
        }
        // Excluding every replica leaves nothing to resolve.
        assert_eq!(
            c.write_file_excluding(&query_path(0), b"q".to_vec(), &[0, 3]),
            Err(XrdError::NoServerForPath(query_path(0)))
        );
    }

    #[test]
    fn routed_write_prefers_eligible_servers_in_order() {
        let c = cluster();
        // Chunk 0 lives on server 0; replicate onto 3.
        c.servers()[3].export(&query_path(0));
        // Preference order wins over the rotation…
        let w = c
            .write_file_routed(&query_path(0), b"q".to_vec(), &[3, 0], &[])
            .unwrap();
        assert_eq!(w, 3);
        // …skipping excluded, offline, and non-exporting entries.
        let w = c
            .write_file_routed(&query_path(0), b"q".to_vec(), &[3, 0], &[3])
            .unwrap();
        assert_eq!(w, 0);
        c.servers()[3].set_online(false);
        let w = c
            .write_file_routed(&query_path(0), b"q".to_vec(), &[3, 2, 0], &[])
            .unwrap();
        assert_eq!(w, 0, "3 offline, 2 does not export chunk 0");
        c.servers()[3].set_online(true);
        // An unusable preference list falls back to the rotation.
        let w = c
            .write_file_routed(&query_path(1), b"q".to_vec(), &[99], &[])
            .unwrap();
        assert_eq!(w, 1);
    }

    #[test]
    fn put_file_direct_stores_without_firing_the_plugin() {
        let c = cluster();
        let before = c.servers()[2].num_files();
        c.put_file_direct(2, "/chunk/Object/9", b"payload".to_vec())
            .unwrap();
        assert_eq!(
            *c.servers()[2].get_file("/chunk/Object/9").unwrap(),
            b"payload".to_vec()
        );
        // Exactly one new file: no plugin deposit alongside it.
        assert_eq!(c.servers()[2].num_files(), before + 1);
        // Offline and unknown targets fail.
        c.servers()[2].set_online(false);
        assert!(matches!(
            c.put_file_direct(2, "/chunk/Object/9", vec![]),
            Err(XrdError::ServerOffline(2))
        ));
        assert!(matches!(
            c.put_file_direct(77, "/x", vec![]),
            Err(XrdError::NoSuchServer(77))
        ));
    }

    #[test]
    fn put_file_direct_is_fault_checked() {
        let c = cluster();
        c.faults()
            .fail_next(None, Some(crate::fault::FabricOp::Write), 1);
        let err = c
            .put_file_direct(1, "/chunk/Object/3", b"p".to_vec())
            .unwrap_err();
        assert!(err.is_transient(), "{err:?}");
        assert!(c.servers()[1].get_file("/chunk/Object/3").is_none());
        // Corruption faults mangle the stored payload (receivers verify
        // a digest before acking a replica).
        c.faults()
            .corrupt_payload(None, Some(crate::fault::FabricOp::Write), 1.0);
        let clean = b"0123456789abcdef0123456789abcdef".to_vec();
        c.put_file_direct(1, "/chunk/Object/3", clean.clone())
            .unwrap();
        c.faults().clear();
        assert_ne!(*c.servers()[1].get_file("/chunk/Object/3").unwrap(), clean);
    }

    #[test]
    fn corrupted_read_returns_mangled_copy_without_touching_store() {
        let c = cluster();
        let q = b"0123456789abcdef0123456789abcdef".to_vec();
        let w = c.write_file(&query_path(1), q.clone()).unwrap();
        let rp = result_path(&md5_hex(&q));
        let clean = c.read_file(w, &rp).unwrap();
        c.faults()
            .corrupt_payload(None, Some(crate::fault::FabricOp::Read), 1.0);
        let dirty = c.read_file(w, &rp).unwrap();
        assert_ne!(*clean, *dirty);
        c.faults().clear();
        // The stored file itself was never modified.
        assert_eq!(*c.read_file(w, &rp).unwrap(), *clean);
    }

    #[test]
    fn read_resolved_uses_namespace() {
        let c = cluster();
        c.servers()[2].export("/meta/schema");
        c.servers()[2].put_file("/meta/schema", b"v1".to_vec());
        assert_eq!(*c.read_resolved("/meta/schema").unwrap(), b"v1".to_vec());
        assert!(c.read_resolved("/meta/none").is_err());
    }
}
