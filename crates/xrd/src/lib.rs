//! Xrootd substitute: the communication fabric of the Qserv reproduction.
//!
//! The original system uses Scalla/Xrootd "to provide a distributed,
//! data-addressed, replicated, fault-tolerant communication facility"
//! (paper §5.1.2): clients connect to a *redirector*, which is a caching
//! namespace look-up service that redirects them to *data servers*; Qserv
//! workers are data servers with custom code plugged in as a file-system
//! ("ofs") plugin. The master dispatches work by **writing** to
//! partition-addressed paths (`/query2/CC`) and collects results by
//! **reading** hash-addressed paths (`/result/H`, `H` = MD5 of the chunk
//! query, paper §5.4).
//!
//! This crate reproduces that architecture in-process:
//! * [`md5`] — MD5 implemented from scratch (RFC 1321) for result
//!   addressing.
//! * [`server`] — a [`server::DataServer`] with an exported-path namespace,
//!   a file store, and an [`server::OfsPlugin`] hook invoked when a file
//!   finishes writing (exactly where qserv-worker code hangs off Xrootd).
//! * [`redirector`] — the caching namespace lookup: path → data server,
//!   with replica failover when servers go offline.
//! * [`cluster`] — client-facing file transactions
//!   (open-write-close / open-read-close) over redirector + servers.
//! * [`fault`] — a seeded, per-server, per-operation [`fault::FaultPlan`]
//!   every cluster carries, injecting deterministic transient failures,
//!   delays and payload corruption for chaos testing.
//!
//! Everything is `Sync`: many dispatcher threads can run transactions
//! concurrently, as the Qserv master does with thousands of chunk queries
//! in flight.

pub mod cluster;
pub mod fault;
pub mod md5;
pub mod redirector;
pub mod server;

pub use cluster::{XrdCluster, XrdError};
pub use fault::{FabricOp, FaultPlan, FaultStats};
pub use md5::md5_hex;
pub use redirector::Redirector;
pub use server::{DataServer, OfsPlugin, ServerId};
