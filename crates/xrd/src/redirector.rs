//! The redirector: a caching namespace look-up service.
//!
//! "A client connects to a redirector, which acts as a caching namespace
//! look-up service that redirects clients to appropriate data servers"
//! (paper §5.1.2). Lookups consult a cache first; on a miss the redirector
//! queries every server's exported namespace (Xrootd's broadcast
//! discovery) and caches the answer. Offline servers are skipped, giving
//! replica failover for replicated paths.

use crate::server::{DataServer, ServerId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached namespace entry: the replicas exporting a path plus that
/// path's own rotation counter. Keeping the counter per path (rather
/// than one global counter) still spreads load across replicas, but
/// makes the replica sequence for a path independent of unrelated
/// lookups — so concurrent dispatch of other chunks cannot perturb
/// which replica a given chunk query lands on, and seeded fault
/// schedules stay reproducible.
struct PathEntry {
    ids: Vec<ServerId>,
    rr: AtomicU64,
}

/// Path → servers lookup with a cache and failover.
pub struct Redirector {
    servers: Vec<Arc<DataServer>>,
    cache: RwLock<HashMap<String, Arc<PathEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Redirector {
    /// Creates a redirector over a fixed server set.
    pub fn new(servers: Vec<Arc<DataServer>>) -> Redirector {
        Redirector {
            servers,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The managed servers.
    pub fn servers(&self) -> &[Arc<DataServer>] {
        &self.servers
    }

    /// Resolves `path` to one *online* server exporting it, preferring a
    /// cached mapping and rotating across replicas. `None` when no online
    /// server exports the path.
    pub fn resolve(&self, path: &str) -> Option<Arc<DataServer>> {
        self.resolve_excluding(path, &[])
    }

    /// [`Redirector::resolve`], but never returning a server in
    /// `exclude`. Retrying clients pass the replicas that already failed
    /// them, steering the lookup to a different one.
    pub fn resolve_excluding(&self, path: &str, exclude: &[ServerId]) -> Option<Arc<DataServer>> {
        let cached = self.cache.read().get(path).cloned();
        let entry = match cached {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                entry
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let ids: Vec<ServerId> = self
                    .servers
                    .iter()
                    .filter(|s| s.exports_path(path))
                    .map(|s| s.id())
                    .collect();
                if ids.is_empty() {
                    return None;
                }
                // entry(): concurrent misses must converge on ONE
                // rotation counter, not race to install two.
                Arc::clone(
                    self.cache
                        .write()
                        .entry(path.to_string())
                        .or_insert_with(|| {
                            Arc::new(PathEntry {
                                ids,
                                rr: AtomicU64::new(0),
                            })
                        }),
                )
            }
        };
        let ids = &entry.ids;
        // Rotate across this path's replicas, skipping offline and
        // excluded servers (failover).
        let start = entry.rr.fetch_add(1, Ordering::Relaxed) as usize;
        for k in 0..ids.len() {
            let id = ids[(start + k) % ids.len()];
            if exclude.contains(&id) {
                continue;
            }
            let server = &self.servers[id];
            if server.is_online() {
                return Some(Arc::clone(server));
            }
        }
        None
    }

    /// Direct access to a server by id (the second transaction of a
    /// dispatch reads the result from a *known* worker, paper §5.4's
    /// `xrootd://<worker ip:port>/result/H`).
    pub fn server(&self, id: ServerId) -> Option<Arc<DataServer>> {
        self.servers.get(id).map(Arc::clone)
    }

    /// Invalidates the namespace cache (e.g. after re-exporting paths).
    pub fn invalidate_cache(&self) {
        self.cache.write().clear();
    }

    /// `(cache hits, cache misses)` counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_of(n: usize) -> (Redirector, Vec<Arc<DataServer>>) {
        let servers: Vec<Arc<DataServer>> = (0..n).map(|i| Arc::new(DataServer::new(i))).collect();
        (Redirector::new(servers.clone()), servers)
    }

    #[test]
    fn resolve_finds_exporter() {
        let (r, servers) = cluster_of(3);
        servers[1].export("/query2/42");
        let got = r.resolve("/query2/42").unwrap();
        assert_eq!(got.id(), 1);
        assert!(r.resolve("/query2/99").is_none());
    }

    #[test]
    fn cache_hits_after_first_lookup() {
        let (r, servers) = cluster_of(2);
        servers[0].export("/q");
        r.resolve("/q");
        r.resolve("/q");
        r.resolve("/q");
        let (hits, misses) = r.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn failed_lookup_not_cached() {
        let (r, servers) = cluster_of(2);
        assert!(r.resolve("/late").is_none());
        servers[1].export("/late");
        // The earlier miss must not stick.
        assert_eq!(r.resolve("/late").unwrap().id(), 1);
    }

    #[test]
    fn replica_failover() {
        let (r, servers) = cluster_of(3);
        servers[0].export("/q");
        servers[2].export("/q");
        servers[0].set_online(false);
        for _ in 0..10 {
            assert_eq!(r.resolve("/q").unwrap().id(), 2);
        }
        // All replicas down: unresolvable.
        servers[2].set_online(false);
        assert!(r.resolve("/q").is_none());
        // Back up: resolvable again (cache still valid).
        servers[0].set_online(true);
        assert_eq!(r.resolve("/q").unwrap().id(), 0);
    }

    #[test]
    fn replicas_rotate() {
        let (r, servers) = cluster_of(2);
        servers[0].export("/q");
        servers[1].export("/q");
        let mut seen = [false; 2];
        for _ in 0..8 {
            seen[r.resolve("/q").unwrap().id()] = true;
        }
        assert!(seen[0] && seen[1], "round-robin must use both replicas");
    }

    #[test]
    fn invalidate_cache_forces_rediscovery() {
        let (r, servers) = cluster_of(2);
        servers[0].export("/q");
        r.resolve("/q");
        r.invalidate_cache();
        r.resolve("/q");
        let (_, misses) = r.cache_stats();
        assert_eq!(misses, 2);
    }

    #[test]
    fn direct_server_access() {
        let (r, _) = cluster_of(2);
        assert_eq!(r.server(1).unwrap().id(), 1);
        assert!(r.server(5).is_none());
    }
}
