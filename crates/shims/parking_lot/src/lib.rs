//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of the parking_lot API the workspace uses on
//! top of `std::sync`. Semantics match parking_lot where it matters to
//! callers: `lock()`/`read()`/`write()` return guards directly (a
//! poisoned std lock — a panic while held — is unwrapped into the inner
//! value rather than surfaced as a `Result`, which is parking_lot's
//! poison-free behaviour).

use std::sync;

/// A mutual-exclusion lock with parking_lot's panic-free guard API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free guard API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot has no poisoning; our shim must behave the same.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
