//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the one crossbeam facility the workspace uses: panic-safe
//! scoped threads. `thread::scope` mirrors crossbeam's signature — the
//! closure receives a [`thread::Scope`], spawned closures receive the
//! scope again (for nested spawns), and the call returns `Err` with the
//! panic payload instead of unwinding when a spawned thread panics.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as stdthread;

    /// Crossbeam's scope result: `Err` carries the payload of the first
    /// panicking child thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning threads bound to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so it
        /// can spawn further siblings, exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> stdthread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; joins all spawned threads before
    /// returning. A child panic is captured and returned as `Err` rather
    /// than resumed on the caller's stack.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            stdthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 21);
            h.join().expect("child ok") * 2
        })
        .expect("no panics");
        assert_eq!(v, 42);
    }
}
