//! Deterministic RNG, per-test configuration and case outcomes.

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition missed; generate another input.
    Reject(String),
}

/// Per-test configuration (the subset of proptest's knobs used here).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The generation RNG: xoshiro256** seeded via SplitMix64 from a stable
/// hash of the test name, so every run of a given test explores the same
/// deterministic sequence (reproducible failures without a regression
/// file).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// An RNG seeded from an arbitrary u64.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// An RNG seeded from a test's name (FNV-1a), perturbed by the
    /// `PROPTEST_RNG_SEED` environment variable when set. The default
    /// (unset, or not a u64) keeps the historical name-only seeding, so
    /// plain `cargo test` stays reproducible; a CI matrix can export
    /// different seeds to explore distinct deterministic sequences.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Some(seed) = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            // Seed 0 is the documented alias for the unperturbed run.
            h ^= seed.wrapping_mul(0x9E3779B97F4A7C15);
        }
        TestRng::from_seed(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_seeding_is_stable() {
        let mut a = TestRng::for_test("some_test");
        let mut b = TestRng::for_test("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other_test");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_bounded() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::from_seed(2);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
