//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy producing `Vec`s of `element` with a length in `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let len = self.size.start + rng.below(self.size.end - self.size.start);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Shorter vectors first (respecting the minimum length): minimal,
        // half, one-less.
        let min = self.size.start;
        for len in [min, min + (v.len() - min) / 2, v.len().saturating_sub(1)] {
            if len < v.len() && len >= min && !out.iter().any(|c: &Vec<S::Value>| c.len() == len) {
                out.push(v[..len].to_vec());
            }
        }
        // Then same-length vectors with one element shrunk.
        for (i, e) in v.iter().enumerate() {
            for cand in self.element.shrink(e) {
                let mut c = v.clone();
                c[i] = cand;
                out.push(c);
            }
        }
        out
    }
}

/// `proptest::collection::vec`: vectors of `element` sized from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_range() {
        let s = vec(0u8..10, 2..5);
        let mut r = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
