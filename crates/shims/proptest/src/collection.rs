//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy producing `Vec`s of `element` with a length in `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let len = self.size.start + rng.below(self.size.end - self.size.start);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: vectors of `element` sized from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_range() {
        let s = vec(0u8..10, 2..5);
        let mut r = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
