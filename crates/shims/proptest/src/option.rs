//! Option strategies (`option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Option<T>` from an inner `T` strategy.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `proptest::option::of`: `None` a quarter of the time, else `Some`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let s = of(0u8..100);
        let mut r = TestRng::from_seed(4);
        let mut nones = 0;
        let mut somes = 0;
        for _ in 0..200 {
            match s.generate(&mut r) {
                None => nones += 1,
                Some(_) => somes += 1,
            }
        }
        assert!(nones > 0 && somes > 0);
    }
}
