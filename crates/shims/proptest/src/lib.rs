//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of the proptest 1.x API the workspace's
//! property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed`;
//! * strategies for numeric ranges, tuples, `&str` regex-lite patterns,
//!   [`Just`], [`any`], [`collection::vec`] and [`option::of`];
//! * the [`proptest!`] test macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] and [`prop_oneof!`].
//!
//! Differences from real proptest, deliberate for this environment:
//! generation is **deterministic** (seeded from the test name, so runs
//! are reproducible without a persistence file) and shrinking is
//! **greedy and budgeted** — strategies propose smaller candidates
//! (toward a range's start, toward zero, shorter vectors) and a failing
//! case adopts any candidate that still fails, rather than walking
//! proptest's full value tree.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one `#[test]` fn per case.
///
/// A failing case (assert failure or body panic) is *shrunk* before being
/// reported: each argument's strategy proposes smaller candidate inputs,
/// and any candidate on which the test still fails is adopted, greedily,
/// under a fixed budget. The final panic message carries the minimized
/// inputs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            // Each argument's strategy, paired with the current candidate
            // value (rewritten in place between cases and while
            // shrinking). Seeding the cell with a generated value here
            // keeps its type concrete for the closures below.
            $(let $arg = {
                let __s = $strat;
                let __v = $crate::strategy::Strategy::generate(&__s, &mut __rng);
                (__s, ::std::cell::RefCell::new(__v))
            };)+

            // Runs the body on owned clones of the current values; a body
            // panic is converted into `Fail` (message preserved) so it
            // shrinks the same way an assertion failure does.
            let __run_case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $(let $arg = ::std::clone::Clone::clone(&*$arg.1.borrow());)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            let _ = $body;
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(r) => r,
                    Err(payload) => {
                        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "non-string panic payload".to_string()
                        };
                        Err($crate::test_runner::TestCaseError::Fail(format!("panicked: {msg}")))
                    }
                }
            };
            let __render_inputs = || {
                let mut s = String::new();
                $(
                    s.push_str("  ");
                    s.push_str(stringify!($arg));
                    s.push_str(" = ");
                    s.push_str(&format!("{:?}\n", &*$arg.1.borrow()));
                )+
                s
            };

            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(32).saturating_add(4096),
                    "proptest '{}': too many rejected cases ({} attempts for {} passes)",
                    stringify!($name), __attempts, __passed,
                );
                match __run_case() {
                    Ok(()) => __passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        // prop_assume! miss: try another input.
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        let __original = __render_inputs();
                        let mut __msg = __msg;
                        // Greedy shrink: one argument at a time, restart
                        // from the first argument after any improvement.
                        let mut __budget: u32 = 256;
                        let mut __improved = true;
                        while __improved && __budget > 0 {
                            __improved = false;
                            $(
                                let __cands =
                                    $crate::strategy::Strategy::shrink(&$arg.0, &*$arg.1.borrow());
                                for __cand in __cands {
                                    if __budget == 0 { break; }
                                    __budget -= 1;
                                    let __prev = $arg.1.replace(__cand);
                                    match __run_case() {
                                        Err($crate::test_runner::TestCaseError::Fail(m)) => {
                                            __msg = m;
                                            __improved = true;
                                            // The remaining candidates were
                                            // derived from the pre-adoption
                                            // value; recompute from here.
                                            break;
                                        }
                                        _ => { $arg.1.replace(__prev); }
                                    }
                                }
                            )+
                        }
                        panic!(
                            "proptest '{}' failed: {}\ninputs:\n{}originally failing inputs:\n{}",
                            stringify!($name), __msg, __render_inputs(), __original,
                        );
                    }
                }
                // Fresh inputs for the next case.
                $($arg.1.replace($crate::strategy::Strategy::generate(&$arg.0, &mut __rng));)+
            }
        }
    )*};
}

/// Fails the current case (reported with its shrunk inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Discards the current case (not counted against the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::uniform(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
