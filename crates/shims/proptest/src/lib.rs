//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of the proptest 1.x API the workspace's
//! property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed`;
//! * strategies for numeric ranges, tuples, `&str` regex-lite patterns,
//!   [`Just`], [`any`], [`collection::vec`] and [`option::of`];
//! * the [`proptest!`] test macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] and [`prop_oneof!`].
//!
//! Differences from real proptest, deliberate for this environment:
//! generation is **deterministic** (seeded from the test name, so runs
//! are reproducible without a persistence file) and failing cases are
//! reported with their inputs but **not shrunk**.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one `#[test]` fn per case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            // Bind each strategy once, under its argument's name; the
            // per-case value bindings below shadow these inside the loop.
            $(let $arg = $strat;)+
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(32).saturating_add(4096),
                    "proptest '{}': too many rejected cases ({} attempts for {} passes)",
                    stringify!($name), __attempts, __passed,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                let __inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str("  ");
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}\n", &$arg));
                    )+
                    s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            let _ = $body;
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) => __passed += 1,
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {
                        // prop_assume! miss: try another input.
                    }
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest '{}' failed: {}\ninputs:\n{}",
                            stringify!($name), msg, __inputs,
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest '{}' panicked on inputs:\n{}",
                            stringify!($name), __inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Fails the current case (reported with its inputs, not shrunk).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Discards the current case (not counted against the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::uniform(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
