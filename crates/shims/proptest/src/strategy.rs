//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value from the deterministic RNG.
pub trait Strategy: Clone {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly smaller candidate replacements for a failing
    /// input, most aggressive first. The runner adopts a candidate only
    /// when the test still fails on it, so strategies need not prove
    /// anything about candidates beyond "closer to minimal". The default
    /// is no shrinking.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `keep`, retrying (bounded).
    fn prop_filter<F>(self, whence: &'static str, keep: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            whence,
            keep,
        }
    }

    /// Builds a bounded-depth recursive strategy: `recurse` receives the
    /// strategy for the next level down and returns the branching level.
    /// `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility; depth alone bounds recursion here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = Union::uniform(vec![self.clone().boxed(), deeper]).boxed();
        }
        level
    }

    /// Type-erases this strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
    fn shrink_dyn(&self, v: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, v: &S::Value) -> Vec<S::Value> {
        self.shrink(v)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        self.inner.shrink_dyn(v)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates in a row", self.whence);
    }
    fn shrink(&self, v: &S::Value) -> Vec<S::Value> {
        // Candidates must still satisfy the filter.
        self.inner
            .shrink(v)
            .into_iter()
            .filter(|c| (self.keep)(c))
            .collect()
    }
}

/// Uniform (or weighted) choice among same-valued strategies; the
/// expansion of [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    /// Equal-probability choice among `arms`.
    pub fn uniform(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.len() as u32;
        Union {
            arms: arms.into_iter().map(|a| (1, a)).collect(),
            total_weight,
        }
    }

    /// Weighted choice among `arms`.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total_weight: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "weighted union needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight as usize) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total_weight");
    }
}

/// A strategy always producing one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Smaller candidates for a failing value (see [`Strategy::shrink`]).
    fn arbitrary_shrink(_v: &Self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn arbitrary_shrink(v: &$t) -> Vec<$t> {
                // Toward zero: jump there, then halve.
                let mut out = Vec::new();
                if *v != 0 {
                    out.push(0);
                    let half = *v / 2;
                    if half != 0 {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn arbitrary_shrink(v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly raw-bit patterns (covering the full exponent span,
        // including infinities and NaNs), plus explicit special values so
        // edge cases appear reliably even in short runs.
        if rng.below(16) == 0 {
            const SPECIALS: [f64; 8] = [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                f64::MAX,
                f64::MIN_POSITIVE,
                -1.0,
            ];
            SPECIALS[rng.below(SPECIALS.len())]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
    fn arbitrary_shrink(v: &f64) -> Vec<f64> {
        if v.is_nan() || *v == 0.0 {
            return Vec::new();
        }
        let mut out = vec![0.0];
        let half = *v / 2.0;
        if half != *v && half != 0.0 {
            out.push(half);
        }
        out
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// The whole-domain strategy for `T` (`any::<u8>()`, `any::<bool>()`, …).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        T::arbitrary_shrink(v)
    }
}

/// Builds the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                // Toward the range start. Candidates are listed in
                // increasing order — the start, then `v - d` for `d`
                // halving down, then small steps — so greedy first-failure
                // adoption behaves like a binary search for the failing
                // boundary. Every candidate is strictly below `v` and in
                // range, so adopted candidates always make progress.
                let mut out: Vec<$t> = Vec::new();
                let mut push = |c: $t| {
                    if c >= self.start && c < *v && !out.contains(&c) {
                        out.push(c);
                    }
                };
                push(self.start);
                let mut d = (*v as i128 - self.start as i128) / 2;
                while d > 0 {
                    push((*v as i128 - d) as $t);
                    d /= 2;
                }
                // Unit steps (the `-2` step preserves parity through
                // even/odd filters).
                if *v as i128 - 1 >= self.start as i128 {
                    push((*v as i128 - 1) as $t);
                }
                if *v as i128 - 2 >= self.start as i128 {
                    push((*v as i128 - 2) as $t);
                }
                out
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *v > self.start {
            out.push(self.start);
            let mid = self.start + (*v - self.start) / 2.0;
            if mid > self.start && mid < *v {
                out.push(mid);
            }
        }
        out
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            assert!((3i64..9).contains(&(3i64..9).generate(&mut r)));
            assert!((0.5f64..0.75).contains(&(0.5f64..0.75).generate(&mut r)));
            assert!((0u8..4).contains(&(0u8..4).generate(&mut r)));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let s = (0i64..100).prop_map(|v| v * 2).prop_filter("nonzero", |v| *v != 0);
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v != 0);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let u = Union::uniform(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut r = rng();
        for _ in 0..200 {
            // Union nesting alternates (leaf | branch-of-level) per depth
            // step, so the deepest chain is depth+1 nodes.
            assert!(depth(&tree.generate(&mut r)) <= 4);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = ((0i64..5), (10i64..15), Just("x"));
        let mut r = rng();
        let (a, b, c) = s.generate(&mut r);
        assert!((0..5).contains(&a));
        assert!((10..15).contains(&b));
        assert_eq!(c, "x");
    }
}
