//! String generation from regex-lite patterns.
//!
//! In proptest a `&str` is a strategy generating strings matching it as
//! a regex. This shim supports the subset the workspace's tests use:
//! literal characters, `\\`-escapes, character classes (`[a-z0-9_]`,
//! ranges and escapes, no negation), `.`, and the quantifiers `?`, `*`,
//! `+`, `{n}`, `{m,n}` (unbounded repeats are capped at 8).

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    /// One concrete character.
    Literal(char),
    /// One character drawn from a class's alternatives.
    Class(Vec<char>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = piece.max - piece.min + 1;
        let count = piece.min + rng.below(span);
        for _ in 0..count {
            out.push(match &piece.atom {
                Atom::Literal(c) => *c,
                Atom::Class(choices) => choices[rng.below(choices.len())],
            });
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                escape_atom(c)
            }
            '[' => {
                i += 1;
                let mut choices = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        escape_char(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            escape_char(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        for code in lo as u32..=hi as u32 {
                            choices.push(char::from_u32(code).unwrap());
                        }
                    } else {
                        choices.push(lo);
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(choices)
            }
            '.' => {
                i += 1;
                // Any printable ASCII character.
                Atom::Class((0x20u32..0x7f).map(|c| char::from_u32(c).unwrap()).collect())
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('{') => {
                i += 1;
                let mut lo = 0usize;
                while chars[i].is_ascii_digit() {
                    lo = lo * 10 + chars[i].to_digit(10).unwrap() as usize;
                    i += 1;
                }
                let hi = if chars[i] == ',' {
                    i += 1;
                    let mut h = 0usize;
                    while chars[i].is_ascii_digit() {
                        h = h * 10 + chars[i].to_digit(10).unwrap() as usize;
                        i += 1;
                    }
                    h
                } else {
                    lo
                };
                assert!(chars[i] == '}', "malformed quantifier in pattern {pattern:?}");
                i += 1;
                (lo, hi)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn escape_char(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn escape_atom(c: char) -> Atom {
    match c {
        'd' => Atom::Class(('0'..='9').collect()),
        'w' => {
            let mut set: Vec<char> = ('a'..='z').collect();
            set.extend('A'..='Z');
            set.extend('0'..='9');
            set.push('_');
            Atom::Class(set)
        }
        's' => Atom::Class(vec![' ', '\t']),
        other => Atom::Literal(escape_char(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z][a-zA-Z0-9_]{0,10}", &mut r);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_alphabetic(), "{s:?}");
            assert!(s.len() <= 11, "{s:?}");
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s:?}");
        }
    }

    #[test]
    fn class_with_escape_and_space() {
        let mut r = rng();
        for _ in 0..200 {
            // After Rust unescaping this is the regex [a-z '\\]{0,8}.
            let s = generate_matching("[a-z '\\\\]{0,8}", &mut r);
            assert!(s.len() <= 8, "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\'' || c == '\\'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn quantifiers_and_literals() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("ab?c{2}[xy]+", &mut r);
            assert!(s.starts_with('a'));
            assert!(s.contains("cc"));
            let tail = s.trim_start_matches(|c| c != 'x' && c != 'y');
            assert!(!tail.is_empty() && tail.chars().all(|c| c == 'x' || c == 'y'), "{s:?}");
        }
    }
}
