//! The shim's greedy shrinking: failing cases are minimized before being
//! reported, and the final panic message carries the shrunk inputs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The minimal failing input for `a <= 10` over 0..1000 is 11; the
    // bisect/step-down candidates must land exactly there, and the panic
    // message renders it.
    #[test]
    #[should_panic(expected = "a = 11")]
    fn shrinks_int_to_boundary(a in 0i64..1000) {
        prop_assert!(a <= 10);
    }

    // Shrinking respects `prop_filter`: candidates violating the filter
    // are never adopted, so the reported minimum is the smallest *odd*
    // failing value.
    #[test]
    #[should_panic(expected = "a = 101")]
    fn shrinks_within_filter(a in (0i64..1000).prop_filter("odd", |v| v % 2 == 1)) {
        prop_assert!(a < 100);
    }

    // Vectors shrink toward fewer elements.
    #[test]
    #[should_panic(expected = "v = []")]
    fn shrinks_vec_to_empty(v in proptest::collection::vec(0u8..10, 0..8)) {
        // Fails on every input, so the minimum is the empty vector.
        prop_assert!(v.len() > 100);
    }

    // Plain body panics (not just prop_assert!) shrink too.
    #[test]
    #[should_panic(expected = "a = 501")]
    fn shrinks_panicking_bodies(a in 0i64..1000) {
        assert!(a <= 500, "too big");
    }
}

proptest! {
    // Passing properties still pass with shrinking machinery in place.
    #[test]
    fn passing_property_is_untouched(a in 0i64..100, b in 0i64..100) {
        prop_assert_eq!(a + b, b + a);
    }
}
