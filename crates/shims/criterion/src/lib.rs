//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the benchmark-harness surface the workspace's `[[bench]]`
//! targets use: [`Criterion`], [`Throughput`], benchmark groups with
//! `sample_size`/`throughput`/`bench_function`/`finish`, a [`Bencher`]
//! with `iter`, and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Measurement is deliberately simple — a warm-up pass then a fixed
//! sampling budget, reporting mean wall-clock ns/iter — because these
//! benches gate regressions by orders of magnitude, not nanoseconds.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so call sites using `criterion::black_box` keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units a measurement is normalized by in reports.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmarked closure; owns the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills the
        // per-sample budget.
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut calibration_iters: u64 = 0;
        while start.elapsed() < Duration::from_millis(5) {
            std_black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = start.elapsed() / calibration_iters.max(1) as u32;
        let n = if per_iter.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        let timed = Instant::now();
        for _ in 0..n {
            std_black_box(routine());
        }
        self.elapsed = timed.elapsed();
        self.iters = n;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// budget is time-based).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Normalizes subsequent reports by `throughput`.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(id, &b, None);
        self
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{id:<40} (no measurement)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MB/s", n as f64 / ns * 1e9 / 1e6)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.0} elem/s", n as f64 / ns * 1e9)
        }
        None => String::new(),
    };
    println!("{id:<40} {ns:>14.0} ns/iter{rate}");
}

/// Declares a group function running each benchmark in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
