//! Offline stand-in for [`mio`](https://crates.io/crates/mio).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the API subset the proxy's event loop uses: a readiness
//! [`Poll`]er over nonblocking sockets, [`Token`]-tagged [`Events`],
//! a [`Waker`] for cross-thread wakeups, and thin [`net`] wrappers
//! around the std TCP types that set nonblocking mode on creation.
//!
//! Unlike real mio (epoll, edge-triggered), this shim drives
//! `poll(2)` directly and is **level-triggered**: a socket that stays
//! readable is reported on every call. Consumers must therefore only
//! register `WRITABLE` interest while they actually have pending
//! output, which is how the proxy server is written. `poll(2)` is
//! declared via `extern "C"` so no libc crate is needed; everything
//! else (nonblocking mode, socketpair for the waker) uses std.

use std::collections::HashMap;
use std::io::{self, Read};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Opaque per-registration identifier, echoed back on each [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const READABLE: Interest = Interest(1);
    pub const WRITABLE: Interest = Interest(2);

    /// Combines two interests (mio spells this `add`).
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    pub const fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    pub const fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
}

impl Event {
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable, or the peer hung up / errored (a read will surface it).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// Buffer of events filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

struct Registration {
    token: Token,
    interest: Interest,
    /// For waker registrations: the read half to drain on readiness,
    /// kept alive here so the fd stays valid while registered.
    waker_rd: Option<Arc<UnixStream>>,
}

#[derive(Default)]
struct RegistryInner {
    entries: HashMap<RawFd, Registration>,
}

/// Handle for (de)registering event sources; clone-free sharing via
/// the [`Waker`], which holds the same inner map.
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Registers `source` for `interests` under `token`. Registering an
    /// already-registered fd errors like mio does.
    pub fn register<S: AsRawFd + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut inner = self.inner.lock().unwrap();
        if inner.entries.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        inner.entries.insert(
            fd,
            Registration {
                token,
                interest: interests,
                waker_rd: None,
            },
        );
        Ok(())
    }

    /// Changes the token/interest of an existing registration.
    pub fn reregister<S: AsRawFd + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut inner = self.inner.lock().unwrap();
        match inner.entries.get_mut(&fd) {
            Some(reg) => {
                reg.token = token;
                reg.interest = interests;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Removes a registration; the fd stops producing events.
    pub fn deregister<S: AsRawFd + ?Sized>(&self, source: &S) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut inner = self.inner.lock().unwrap();
        match inner.entries.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }
}

/// The reactor: snapshots registrations into a `pollfd` array, calls
/// `poll(2)`, and translates revents back into [`Event`]s.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                inner: Arc::new(Mutex::new(RegistryInner::default())),
            },
        })
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` blocks indefinitely). Waker fds are drained here
    /// so each `wake()` burst yields one event, then re-arms.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        // Snapshot under the lock, then release it for the syscall so
        // other threads can register/deregister while we block.
        let (mut fds, tags): (Vec<PollFd>, Vec<(Token, Option<Arc<UnixStream>>)>) = {
            let inner = self.registry.inner.lock().unwrap();
            let mut fds = Vec::with_capacity(inner.entries.len());
            let mut tags = Vec::with_capacity(inner.entries.len());
            for (&fd, reg) in &inner.entries {
                let mut ev = 0i16;
                if reg.interest.is_readable() {
                    ev |= POLLIN;
                }
                if reg.interest.is_writable() {
                    ev |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events: ev,
                    revents: 0,
                });
                tags.push((reg.token, reg.waker_rd.clone()));
            }
            (fds, tags)
        };
        let timeout_ms: i32 = match timeout {
            // Round up so sub-millisecond timeouts still yield.
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            None => -1,
        };
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // spurious wakeup; caller loops
            }
            return Err(err);
        }
        for (pfd, (token, waker_rd)) in fds.iter().zip(tags.iter()) {
            if pfd.revents == 0 {
                continue;
            }
            if let Some(rd) = waker_rd {
                // Drain the pipe so the waker re-arms; coalesce the
                // burst into a single event, as mio's waker does.
                let mut buf = [0u8; 64];
                loop {
                    match (&**rd).read(&mut buf) {
                        Ok(0) => break,
                        Ok(_) => continue,
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
            let err = pfd.revents & (POLLERR | POLLHUP) != 0;
            events.inner.push(Event {
                token: *token,
                readable: pfd.revents & POLLIN != 0 || err,
                writable: pfd.revents & POLLOUT != 0 || err,
            });
            if events.inner.len() >= events.capacity {
                break;
            }
        }
        Ok(())
    }
}

/// Cross-thread wakeup: a nonblocking socketpair whose read half is
/// registered with the poller. `wake()` writes one byte, making the
/// poll call return with an event carrying the waker's token.
pub struct Waker {
    wr: UnixStream,
    rd: Arc<UnixStream>,
    registry: Arc<Mutex<RegistryInner>>,
}

impl Waker {
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let (wr, rd) = UnixStream::pair()?;
        wr.set_nonblocking(true)?;
        rd.set_nonblocking(true)?;
        let rd = Arc::new(rd);
        let fd = rd.as_raw_fd();
        let mut inner = registry.inner.lock().unwrap();
        if inner.entries.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "waker fd already registered",
            ));
        }
        inner.entries.insert(
            fd,
            Registration {
                token,
                interest: Interest::READABLE,
                waker_rd: Some(Arc::clone(&rd)),
            },
        );
        Ok(Waker {
            wr,
            rd,
            registry: Arc::clone(&registry.inner),
        })
    }

    /// Signals the poller. Safe to call from any thread; a full pipe
    /// (poller hasn't drained yet) still counts as a pending wake.
    pub fn wake(&self) -> io::Result<()> {
        use std::io::Write;
        match (&self.wr).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.registry.lock() {
            inner.entries.remove(&self.rd.as_raw_fd());
        }
    }
}

/// Nonblocking TCP wrappers mirroring `mio::net`.
pub mod net {
    use std::io::{self, Read, Write};
    use std::net::{self, SocketAddr, ToSocketAddrs};
    use std::os::unix::io::{AsRawFd, RawFd};

    /// A TCP listener in nonblocking mode; `accept` returns
    /// `WouldBlock` instead of blocking.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: net::TcpListener,
    }

    impl TcpListener {
        pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            let inner = net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// Wraps an existing std listener, switching it to nonblocking.
        pub fn from_std(inner: net::TcpListener) -> io::Result<TcpListener> {
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, addr) = self.inner.accept()?;
            Ok((TcpStream::from_std(stream)?, addr))
        }

        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl AsRawFd for TcpListener {
        fn as_raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }

    /// A TCP stream in nonblocking mode; reads and writes return
    /// `WouldBlock` when the kernel buffers are empty/full.
    #[derive(Debug)]
    pub struct TcpStream {
        inner: net::TcpStream,
    }

    impl TcpStream {
        /// Wraps an existing std stream, switching it to nonblocking.
        pub fn from_std(inner: net::TcpStream) -> io::Result<TcpStream> {
            inner.set_nonblocking(true)?;
            Ok(TcpStream { inner })
        }

        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        pub fn shutdown(&self, how: net::Shutdown) -> io::Result<()> {
            self.inner.shutdown(how)
        }

        pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }

        /// Unwraps the std stream, restoring blocking mode (shim
        /// extension: lets a reactor-accepted connection be handed to a
        /// blocking per-connection thread).
        pub fn into_std(self) -> io::Result<net::TcpStream> {
            self.inner.set_nonblocking(false)?;
            Ok(self.inner)
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    impl Read for &TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            (&self.inner).read(buf)
        }
    }

    impl Write for &TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.inner).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.inner).flush()
        }
    }

    impl AsRawFd for TcpStream {
        fn as_raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Duration;

    const LISTENER: Token = Token(0);
    const WAKE: Token = Token(1);
    const CONN: Token = Token(2);

    #[test]
    fn waker_wakes_blocking_poll() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), WAKE).unwrap());
        let w2 = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        handle.join().unwrap();
        let toks: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(toks, vec![WAKE]);
        // Drained: an immediate re-poll with zero timeout sees nothing.
        poll.poll(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());
        // A new wake re-arms.
        waker.wake().unwrap();
        waker.wake().unwrap(); // coalesces
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.iter().count(), 1);
    }

    #[test]
    fn listener_and_stream_readiness() {
        let mut poll = Poll::new().unwrap();
        let listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&listener, LISTENER, Interest::READABLE)
            .unwrap();
        // Accept before connect would block, not hang.
        assert_eq!(
            listener.accept().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let mut events = Events::with_capacity(8);
        // Level-triggered: keep polling until the accept readiness shows.
        let mut accepted = None;
        for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token() == LISTENER && e.is_readable()) {
                let (stream, _) = listener.accept().unwrap();
                accepted = Some(stream);
                break;
            }
        }
        let server_side = accepted.expect("accept readiness never arrived");
        poll.registry()
            .register(&server_side, CONN, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let mut got_readable = false;
        for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token() == CONN && e.is_readable()) {
                got_readable = true;
                break;
            }
        }
        assert!(got_readable);
        let mut buf = [0u8; 4];
        (&server_side).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        poll.registry().deregister(&server_side).unwrap();
        // Deregistered fds stop reporting.
        client.write_all(b"more").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| e.token() != CONN));
    }

    #[test]
    fn reregister_changes_interest() {
        let mut poll = Poll::new().unwrap();
        let listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server_side, _) = loop {
            match listener.accept() {
                Ok(pair) => break pair,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1))
                }
                Err(e) => panic!("{e}"),
            }
        };
        poll.registry()
            .register(&server_side, CONN, Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(200)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CONN && e.is_writable()));
        // Drop writable interest: idle readable-only socket reports nothing.
        poll.registry()
            .reregister(&server_side, CONN, Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty());
        drop(client);
        // Peer hangup surfaces as readable (read returns Ok(0)).
        poll.poll(&mut events, Some(Duration::from_millis(200)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == CONN && e.is_readable()));
    }

    #[test]
    fn double_register_rejected() {
        let poll = Poll::new().unwrap();
        let listener = net::TcpListener::bind("127.0.0.1:0").unwrap();
        poll.registry()
            .register(&listener, LISTENER, Interest::READABLE)
            .unwrap();
        assert_eq!(
            poll.registry()
                .register(&listener, LISTENER, Interest::READABLE)
                .unwrap_err()
                .kind(),
            io::ErrorKind::AlreadyExists
        );
    }
}
