//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the small slice of the rand 0.8 API the workspace uses:
//! [`rngs::SmallRng`] (xoshiro256** seeded via SplitMix64, like rand's),
//! the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, and
//! [`SeedableRng::seed_from_u64`]. Streams are deterministic per seed but
//! do **not** bit-match the real rand crate — callers in this workspace
//! only rely on determinism, not on specific values.

use std::ops::Range;

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast RNG: xoshiro256** with SplitMix64 seeding — the same
    /// construction real rand 0.8 uses for its 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "uniform draws must reach both tails");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} of 10000 at p=0.25");
    }
}
