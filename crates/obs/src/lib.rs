//! # qserv-obs — the observability substrate
//!
//! One crate every layer of the Qserv reproduction stands on for time
//! and measurement, instead of ad-hoc `Instant::now()` sprinkles and
//! hand-grown stats structs:
//!
//! * [`clock`] — an injectable [`Clock`](clock::Clock): [`WallClock`]
//!   for production, a shared [`VirtualClock`] for tests and the
//!   discrete-event simulator. Retry backoff, dispatch deadlines and
//!   chaos-fabric delay faults all wait through the clock, so seeded
//!   chaos runs complete with **zero wall-clock sleeping** while still
//!   exhibiting (and letting tests assert) their latency effects.
//! * [`trace`] — per-query span trees with an ambient thread-local
//!   context, covering proxy request → master analyze → per-chunk
//!   dispatch attempts (retries included) → fabric ops → worker
//!   statement execution → merge folds; exportable as JSON.
//! * [`metrics`] — a counters/gauges/histograms registry behind a
//!   stable API; `qserv::QueryStats` is a thin view over one.

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::{wall_clock, Clock, SharedClock, VirtualClock, WallClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{SpanGuard, SpanId, SpanRecord, Trace, TraceContext};
