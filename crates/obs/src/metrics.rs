//! A small metrics registry: named counters, gauges and histograms.
//!
//! Stats in this codebase used to grow one hand-written struct field per
//! PR (`QueryStats` being the worst offender). The registry replaces
//! that pattern with a stable API: any layer creates (or looks up) a
//! named instrument and updates it lock-free; a [`MetricsSnapshot`] is a
//! point-in-time, ordered view suitable for assertions and JSON export.
//! `QueryStats` survives as a thin view over a per-query registry.
//!
//! Instruments are cheap handles (`Arc` + atomics) safe to clone into
//! dispatcher threads; name lookup pays a lock once, updates never do.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins (or high-water-mark) value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if higher (high-water mark).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Running aggregate of recorded observations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A distribution summary (count/sum/min/max).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<HistogramSnapshot>>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        let mut h = self.0.lock();
        if h.count == 0 {
            h.min = v;
            h.max = v;
        } else {
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h.count += 1;
        h.sum += v;
    }

    /// Point-in-time aggregate.
    pub fn snapshot(&self) -> HistogramSnapshot {
        *self.0.lock()
    }
}

/// Named instruments, created on first use.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time view of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// An ordered point-in-time view of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, 0 when never created.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, 0 when never created.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's aggregate, empty when never created.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// Compact JSON export (names sorted, deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                h.count, h.sum, h.min, h.max
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("dispatched");
        let b = reg.counter("dispatched");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("dispatched").get(), 5);
        assert_eq!(reg.snapshot().counter("dispatched"), 5);
        assert_eq!(reg.snapshot().counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("peak");
        g.set_max(3);
        g.set_max(7);
        g.set_max(5);
        assert_eq!(g.get(), 7);
        g.set(2);
        assert_eq!(reg.snapshot().gauge("peak"), 2);
    }

    #[test]
    fn histograms_aggregate() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_ms");
        for v in [5, 1, 9] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (3, 15, 1, 9));
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }

    #[test]
    fn instruments_are_thread_safe() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let h = reg.histogram("h");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 800);
        assert_eq!(h.snapshot().count, 800);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("b").add(2);
        reg.counter("a").inc();
        reg.gauge("g").set(9);
        reg.histogram("h").record(4);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a\":1,\"b\":2},\"gauges\":{\"g\":9},\
             \"histograms\":{\"h\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4}}}"
        );
    }
}
