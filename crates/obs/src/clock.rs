//! Injectable time: one `Clock` for every layer.
//!
//! The master's dispatch deadlines and retry backoff, the chaos fabric's
//! delay faults, the shared-scan scheduler and the discrete-event
//! simulator all need "now" and "sleep" — but tests need them without
//! wall-clock waiting, and the simulator's time is virtual to begin
//! with. A [`Clock`] is the one substrate: production code holds a
//! [`SharedClock`] and never calls `Instant::now()` or
//! `std::thread::sleep` directly.
//!
//! * [`WallClock`] — real time. `now()` is measured from a process-wide
//!   epoch (the first observation), so timestamps from different clock
//!   handles are mutually comparable; `sleep()` really sleeps.
//! * [`VirtualClock`] — a shared atomic counter of nanoseconds.
//!   `sleep(d)` *advances* the clock by `d` and returns immediately:
//!   latency costs virtual time, never wall time. Chaos tests can
//!   therefore inject multi-second delay faults and still finish in
//!   milliseconds, asserting the latency effects on the recorded
//!   timestamps instead of experiencing them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A source of monotonic time plus the ability to wait.
///
/// `now()` reports time elapsed since the clock's epoch. Implementations
/// must be monotonic: successive `now()` calls never decrease, and
/// `sleep(d)` implies `now()` afterwards is at least `d` later than some
/// observation before it.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time since the clock's epoch.
    fn now(&self) -> Duration;

    /// Waits for `d` — really (wall clock) or by advancing virtual time.
    fn sleep(&self, d: Duration);

    /// True when sleeping costs no wall time (virtual clocks).
    fn is_virtual(&self) -> bool {
        false
    }
}

/// How clocks are passed around: cheap to clone, `Sync`, injectable.
pub type SharedClock = Arc<dyn Clock>;

/// Real time, measured from a process-wide epoch.
#[derive(Clone, Copy, Debug, Default)]
pub struct WallClock;

/// The process-wide epoch every [`WallClock`] measures from, pinned at
/// the first observation so all wall timestamps share one origin.
fn wall_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        wall_epoch().elapsed()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A [`SharedClock`] over real time.
pub fn wall_clock() -> SharedClock {
    Arc::new(WallClock)
}

/// Deterministic, thread-safe virtual time.
///
/// All holders of one `Arc<VirtualClock>` see the same timeline; any of
/// them may advance it. `sleep` advances — it never blocks — so code
/// written against [`Clock`] runs at full speed under test while its
/// recorded timestamps behave as if the waiting had happened.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at t = 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// A shared handle starting at t = 0.
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }

    /// Moves the clock forward to `t` (time since epoch); never moves it
    /// backwards, so out-of-order observers cannot break monotonicity.
    pub fn advance_to(&self, t: Duration) {
        self.nanos
            .fetch_max(t.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_shared_epoch() {
        let a = WallClock;
        let b = WallClock;
        let t1 = a.now();
        let t2 = b.now();
        assert!(t2 >= t1, "clock handles share one epoch");
        assert!(!a.is_virtual());
    }

    #[test]
    fn wall_clock_sleep_really_sleeps() {
        let c = wall_clock();
        let before = c.now();
        c.sleep(Duration::from_millis(2));
        assert!(c.now() - before >= Duration::from_millis(2));
    }

    #[test]
    fn virtual_clock_advances_without_wall_time() {
        let c = VirtualClock::shared();
        let wall = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert_eq!(c.now(), Duration::from_secs(3600));
        assert!(c.is_virtual());
        assert!(
            wall.elapsed() < Duration::from_secs(1),
            "virtual sleep must not block"
        );
    }

    #[test]
    fn virtual_clock_is_shared_across_handles() {
        let c = VirtualClock::shared();
        let other: SharedClock = c.clone();
        other.sleep(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = VirtualClock::new();
        c.advance_to(Duration::from_secs(10));
        c.advance_to(Duration::from_secs(4));
        assert_eq!(c.now(), Duration::from_secs(10));
        c.advance_to(Duration::from_secs(11));
        assert_eq!(c.now(), Duration::from_secs(11));
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = VirtualClock::shared();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..100 {
                        c.advance(Duration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(c.now(), Duration::from_nanos(800));
    }
}
