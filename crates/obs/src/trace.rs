//! Per-query trace spans: who did what, when, inside one request.
//!
//! A [`Trace`] collects a tree of timed spans — proxy request → master
//! analyze → per-chunk dispatch attempts (including retries) → fabric
//! open/write/read/close ops → worker statement execution → merge folds
//! — with start/end timestamps drawn from an injected
//! [`Clock`](crate::clock::Clock). The tree exports as JSON for offline
//! inspection and is asserted on directly by chaos tests (span nesting,
//! retry counts, virtual-clock latency effects).
//!
//! ## Ambient context
//!
//! Layers must not thread a trace handle through every signature, so the
//! current span rides a **thread-local context stack**: a layer opens a
//! child of whatever span is current via [`span`], which returns `None`
//! (for free, one thread-local read) when no trace is active. Crossing a
//! thread boundary is explicit: capture [`current`] before spawning and
//! [`TraceContext::enter`] inside the new thread — exactly what the
//! master's dispatcher pool does, so chunk spans land under the dispatch
//! span that spawned them.
//!
//! Guards are RAII: dropping a [`SpanGuard`] stamps the span's end time
//! and pops the context, which keeps intervals well-nested by
//! construction ([`Trace::validate`] checks it).

use crate::clock::SharedClock;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Index of a span within its trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(usize);

/// One recorded span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// This span's id (its index in [`Trace::spans`]).
    pub id: usize,
    /// Parent span, `None` for the root.
    pub parent: Option<usize>,
    /// Span name (taxonomy: `proxy.request`, `master.dispatch`, `chunk`,
    /// `attempt`, `fabric.write`, `worker.statement`, `merge.fold`, …).
    pub name: String,
    /// Start, nanoseconds since the trace clock's epoch.
    pub start_ns: u64,
    /// End, `None` while the span is still open.
    pub end_ns: Option<u64>,
    /// Key/value annotations, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration; zero while the span is open.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.unwrap_or(self.start_ns) - self.start_ns
    }

    /// First value annotated under `key`.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

struct TraceInner {
    clock: SharedClock,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A shared, thread-safe collection of spans over one clock.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("spans", &self.inner.spans.lock().len())
            .finish()
    }
}

impl Trace {
    /// An empty trace stamping spans from `clock`.
    pub fn new(clock: SharedClock) -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                clock,
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The clock this trace stamps spans with.
    pub fn clock(&self) -> &SharedClock {
        &self.inner.clock
    }

    /// Starts a span; the caller must [`Trace::end`] it (or use the guard
    /// API: [`with_root`], [`span`], [`TraceContext::child`]).
    pub fn start(&self, name: &str, parent: Option<SpanId>) -> SpanId {
        let start_ns = self.inner.clock.now().as_nanos() as u64;
        let mut spans = self.inner.spans.lock();
        let id = spans.len();
        spans.push(SpanRecord {
            id,
            parent: parent.map(|p| p.0),
            name: name.to_string(),
            start_ns,
            end_ns: None,
            attrs: Vec::new(),
        });
        SpanId(id)
    }

    /// Stamps a span's end time (idempotent: the first end wins).
    pub fn end(&self, id: SpanId) {
        let end_ns = self.inner.clock.now().as_nanos() as u64;
        let mut spans = self.inner.spans.lock();
        let rec = &mut spans[id.0];
        if rec.end_ns.is_none() {
            rec.end_ns = Some(end_ns.max(rec.start_ns));
        }
    }

    /// Appends a key/value annotation to a span.
    pub fn annotate(&self, id: SpanId, key: &str, value: &str) {
        self.inner.spans.lock()[id.0]
            .attrs
            .push((key.to_string(), value.to_string()));
    }

    /// Snapshot of every recorded span.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().clone()
    }

    /// Checks the structural invariants every finished trace must hold:
    /// at least one span, every span ended, parents recorded before
    /// children, and every child interval contained in its parent's.
    pub fn validate(&self) -> Result<(), String> {
        let spans = self.inner.spans.lock();
        if spans.is_empty() {
            return Err("trace has no spans".to_string());
        }
        for s in spans.iter() {
            let Some(end) = s.end_ns else {
                return Err(format!("span {} ({}) never ended", s.id, s.name));
            };
            if end < s.start_ns {
                return Err(format!("span {} ({}) ends before it starts", s.id, s.name));
            }
            if let Some(p) = s.parent {
                if p >= s.id {
                    return Err(format!(
                        "span {} ({}) has parent {p} not recorded before it",
                        s.id, s.name
                    ));
                }
                let parent = &spans[p];
                let pend = parent.end_ns.unwrap_or(u64::MAX);
                if s.start_ns < parent.start_ns || end > pend {
                    return Err(format!(
                        "span {} ({}) [{}, {end}] escapes parent {} ({}) [{}, {pend}]",
                        s.id, s.name, s.start_ns, p, parent.name, parent.start_ns
                    ));
                }
            }
        }
        Ok(())
    }

    /// Compact (single-line) JSON: an array of root span trees.
    pub fn to_json(&self) -> String {
        self.render_json(None)
    }

    /// Indented JSON for humans.
    pub fn to_json_pretty(&self) -> String {
        self.render_json(Some(0))
    }

    fn render_json(&self, indent: Option<usize>) -> String {
        let spans = self.spans();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for s in &spans {
            match s.parent {
                Some(p) => children[p].push(s.id),
                None => roots.push(s.id),
            }
        }
        // Deterministic ordering: children sorted by (start, id) — under a
        // single dispatcher thread this makes the whole document a pure
        // function of the fault seed (bit-reproducibility is tested).
        let by_start = |ids: &mut Vec<usize>| {
            ids.sort_by_key(|&i| (spans[i].start_ns, i));
        };
        for ids in children.iter_mut() {
            by_start(ids);
        }
        by_start(&mut roots);

        let mut out = String::new();
        out.push('[');
        for (i, &r) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_span(&mut out, &spans, &children, r, indent.map(|d| d + 1));
        }
        out.push(']');
        out
    }
}

fn render_span(
    out: &mut String,
    spans: &[SpanRecord],
    children: &[Vec<usize>],
    id: usize,
    indent: Option<usize>,
) {
    let s = &spans[id];
    let pad = |out: &mut String, depth: usize| {
        if indent.is_some() {
            out.push('\n');
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
    };
    let depth = indent.unwrap_or(0);
    out.push('{');
    pad(out, depth + 1);
    let _ = write!(
        out,
        "\"name\":{},\"start_ns\":{},\"end_ns\":{}",
        json_string(&s.name),
        s.start_ns,
        s.end_ns.unwrap_or(s.start_ns)
    );
    if !s.attrs.is_empty() {
        out.push(',');
        pad(out, depth + 1);
        out.push_str("\"attrs\":{");
        for (i, (k, v)) in s.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_string(v));
        }
        out.push('}');
    }
    if !children[id].is_empty() {
        out.push(',');
        pad(out, depth + 1);
        out.push_str("\"children\":[");
        for (i, &c) in children[id].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            pad(out, depth + 2);
            render_span(out, spans, children, c, indent.map(|d| d + 2));
        }
        pad(out, depth + 1);
        out.push(']');
    }
    pad(out, depth);
    out.push('}');
}

/// Serializes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

thread_local! {
    /// The ambient context stack: innermost current span last.
    static STACK: RefCell<Vec<(Trace, SpanId)>> = const { RefCell::new(Vec::new()) };
}

/// A captured (trace, span) pair, cloneable across threads so dispatcher
/// pools can parent their spans under the span that spawned them.
#[derive(Clone)]
pub struct TraceContext {
    trace: Trace,
    span: SpanId,
}

impl TraceContext {
    /// The trace this context belongs to.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Makes this context current on the calling thread (no new span).
    pub fn enter(&self) -> ContextGuard {
        STACK.with(|s| s.borrow_mut().push((self.trace.clone(), self.span)));
        ContextGuard { span: self.span }
    }

    /// Starts a child span of this context and makes it current.
    pub fn child(&self, name: &str) -> SpanGuard {
        let id = self.trace.start(name, Some(self.span));
        STACK.with(|s| s.borrow_mut().push((self.trace.clone(), id)));
        SpanGuard {
            trace: self.trace.clone(),
            id,
        }
    }
}

/// The innermost current (trace, span) on this thread, if any.
pub fn current() -> Option<TraceContext> {
    STACK.with(|s| {
        s.borrow().last().map(|(t, id)| TraceContext {
            trace: t.clone(),
            span: *id,
        })
    })
}

/// Starts a root span on `trace` and makes it current on this thread.
pub fn with_root(trace: &Trace, name: &str) -> SpanGuard {
    let id = trace.start(name, None);
    STACK.with(|s| s.borrow_mut().push((trace.clone(), id)));
    SpanGuard {
        trace: trace.clone(),
        id,
    }
}

/// Starts a child of the current span, if a trace is active on this
/// thread; `None` otherwise (one thread-local read — cheap enough to
/// leave in every hot path).
pub fn span(name: &str) -> Option<SpanGuard> {
    current().map(|ctx| ctx.child(name))
}

/// Annotates the current span, if any.
pub fn annotate(key: &str, value: &str) {
    if let Some(ctx) = current() {
        ctx.trace.annotate(ctx.span, key, value);
    }
}

/// RAII: pops the context and stamps the span's end on drop.
pub struct SpanGuard {
    trace: Trace,
    id: SpanId,
}

impl SpanGuard {
    /// The guarded span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Annotates the guarded span.
    pub fn annotate(&self, key: &str, value: &str) {
        self.trace.annotate(self.id, key, value);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        pop_context(self.id);
        self.trace.end(self.id);
    }
}

/// RAII: pops an entered (not newly spanned) context on drop.
pub struct ContextGuard {
    span: SpanId,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop_context(self.span);
    }
}

/// Removes the stack entry for `span` — the top in well-nested use; a
/// deeper scan keeps misuse from corrupting unrelated entries.
fn pop_context(span: SpanId) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|(_, id)| *id == span) {
            stack.remove(pos);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::time::Duration;

    fn vtrace() -> (Trace, std::sync::Arc<VirtualClock>) {
        let clock = VirtualClock::shared();
        (Trace::new(clock.clone()), clock)
    }

    #[test]
    fn nested_guards_build_a_tree() {
        let (trace, clock) = vtrace();
        {
            let root = with_root(&trace, "query");
            root.annotate("sql", "SELECT 1");
            clock.advance(Duration::from_millis(1));
            {
                let _a = span("analyze").unwrap();
                clock.advance(Duration::from_millis(2));
            }
            {
                let d = span("dispatch").unwrap();
                d.annotate("chunks", "3");
                clock.advance(Duration::from_millis(5));
            }
        }
        trace.validate().unwrap();
        let spans = trace.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(spans[1].duration_ns(), 2_000_000);
        assert_eq!(spans[0].attr("sql"), Some("SELECT 1"));
        assert!(current().is_none(), "stack drained");
    }

    #[test]
    fn span_without_context_is_none() {
        assert!(span("orphan").is_none());
        annotate("k", "v"); // must not panic
    }

    #[test]
    fn context_crosses_threads() {
        let (trace, _clock) = vtrace();
        let root = with_root(&trace, "root");
        let ctx = current().unwrap();
        std::thread::scope(|s| {
            for i in 0..4 {
                let ctx = ctx.clone();
                s.spawn(move || {
                    let g = ctx.child("worker");
                    g.annotate("i", &i.to_string());
                });
            }
        });
        drop(root);
        trace.validate().unwrap();
        let spans = trace.spans();
        assert_eq!(spans.len(), 5);
        assert!(spans[1..].iter().all(|s| s.parent == Some(0)));
    }

    #[test]
    fn json_escapes_and_nests() {
        let (trace, clock) = vtrace();
        {
            let root = with_root(&trace, "q");
            root.annotate("sql", "SELECT \"x\"\nFROM t");
            clock.advance(Duration::from_nanos(10));
            let _c = span("child").unwrap();
        }
        let json = trace.to_json();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\\\"x\\\""), "{json}");
        assert!(json.contains("\\n"), "{json}");
        assert!(json.contains("\"children\":["), "{json}");
        assert!(!json.contains('\n'), "compact JSON is single-line");
        assert!(trace.to_json_pretty().contains('\n'));
    }

    #[test]
    fn validate_rejects_open_spans() {
        let (trace, _clock) = vtrace();
        trace.start("open", None);
        assert!(trace.validate().is_err());
    }

    #[test]
    fn validate_rejects_escaping_children() {
        let clock = VirtualClock::shared();
        let trace = Trace::new(clock.clone());
        let root = trace.start("root", None);
        clock.advance(Duration::from_millis(1));
        trace.end(root);
        // Child starts after the parent ended: its interval escapes.
        let child = trace.start("late", Some(root));
        clock.advance(Duration::from_millis(1));
        trace.end(child);
        assert!(trace.validate().is_err());
    }

    #[test]
    fn children_render_in_start_order() {
        let clock = VirtualClock::shared();
        let trace = Trace::new(clock.clone());
        let root = trace.start("root", None);
        clock.advance(Duration::from_millis(1));
        let early = trace.start("early", Some(root));
        trace.end(early);
        clock.advance(Duration::from_millis(1));
        let late = trace.start("late", Some(root));
        trace.end(late);
        trace.end(root);
        let json = trace.to_json();
        let e = json.find("\"early\"").unwrap();
        let l = json.find("\"late\"").unwrap();
        assert!(e < l, "earlier start renders first: {json}");
    }
}
