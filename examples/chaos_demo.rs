//! Chaos fabric demo: run paper-shape queries over a replicated cluster
//! while the fabric injects seeded transient faults, and show that the
//! results match a fault-free run while the retry counters record what
//! the dispatch layer survived.
//!
//! ```sh
//! cargo run --release --example chaos_demo             # seed 42, 20% read faults
//! cargo run --release --example chaos_demo -- 7 0.35   # another schedule
//! ```

use qserv::{ClusterBuilder, FabricOp, FaultPlan, RetryPolicy, Value};
use qserv_datagen::generate::{CatalogConfig, Patch};
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or(42);
    let read_p: f64 = args
        .next()
        .map(|a| a.parse().expect("probability must be a float"))
        .unwrap_or(0.2);
    assert!(
        (0.0..=1.0).contains(&read_p),
        "read-fault probability must be in [0, 1], got {read_p}"
    );

    println!(
        "== chaos demo: seed {seed}, {:.0}% read faults ==",
        read_p * 100.0
    );
    let patch = Patch::generate(&CatalogConfig::small(2000, 7));

    // Twin clusters over the same rows: one healthy, one under chaos.
    let clean = ClusterBuilder::new(6)
        .replication(2)
        .build(&patch.objects, &patch.sources);
    let chaotic = ClusterBuilder::new(6)
        .replication(2)
        .fault_plan(FaultPlan::new(seed))
        .build(&patch.objects, &patch.sources);
    chaotic
        .cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Read), read_p);

    let queries = [
        "SELECT COUNT(*) FROM Object",
        "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 1234",
        "SELECT COUNT(*) FROM Object WHERE fluxToAbMag(zFlux_PS) < 24.0",
    ];
    for sql in queries {
        let expected = clean.query(sql).expect("fault-free query");
        let (got, stats) = chaotic.query_with_stats(sql).expect("chaotic query");
        let matches = got.rows == expected.rows;
        println!(
            "{:66} rows {:>4}  retried {:>2}  failovers {:>2}  faults seen {:>2}  match={}",
            sql,
            got.num_rows(),
            stats.chunks_retried,
            stats.replica_failovers,
            stats.injected_faults_observed,
            matches
        );
        assert!(matches, "chaotic result diverged from fault-free run");
    }
    let fabric = chaotic.cluster().faults().stats();
    println!(
        "fabric injected: {} failures ({} on reads), {} delays, {} corruptions",
        fabric.failures_injected,
        fabric.failures_for(FabricOp::Read),
        fabric.delays_injected,
        fabric.payloads_corrupted
    );
    for (id, server) in chaotic.cluster().servers().iter().enumerate() {
        let leaked = server.file_names("/result/");
        assert!(leaked.is_empty(), "server {id} leaked {leaked:?}");
    }
    println!("no /result/* files left behind on any server");

    // An unreplicated cluster under total read failure must fail fast
    // (bounded retries / deadline), not hang.
    let doomed = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(seed))
        .retry(RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            deadline: Some(Duration::from_secs(2)),
        })
        .build(&patch.objects, &patch.sources);
    doomed
        .cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Read), 1.0);
    match doomed.query("SELECT COUNT(*) FROM Object") {
        Err(e) => println!("unreplicated cluster under 100% read faults: {e}"),
        Ok(r) => panic!("query should have failed, got {:?} rows", r.num_rows()),
    }

    // Sanity: the healthy cluster still counts every object.
    assert_eq!(
        clean.query("SELECT COUNT(*) FROM Object").unwrap().scalar(),
        Some(&Value::Int(2000))
    );
    println!("done.");
}
