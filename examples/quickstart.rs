//! Quickstart: synthesize a sky catalog, stand up a shared-nothing
//! cluster, and run SQL against it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qserv::ClusterBuilder;
use qserv_datagen::generate::{CatalogConfig, Patch};

fn main() {
    // 1. Synthesize a PT1.1-like catalog patch: 2000 objects with ~5
    //    detections each over RA 358°–5°, decl −7°–+7°.
    let patch = Patch::generate(&CatalogConfig::small(2000, 7));
    println!(
        "catalog: {} objects, {} sources over {:.0} deg² ({:.1} objects/deg²)",
        patch.objects.len(),
        patch.sources.len(),
        patch.footprint.area_deg2(),
        patch.object_density_per_deg2(),
    );

    // 2. Build a 6-node cluster: spatial partitioning into chunks with
    //    overlap margins, per-chunk objectId indexes, round-robin chunk
    //    placement, and an Xrootd-style dispatch fabric.
    let qserv = ClusterBuilder::new(6).build(&patch.objects, &patch.sources);
    println!(
        "cluster: {} nodes, {} chunks",
        qserv.workers().len(),
        qserv.placement().chunks().len()
    );

    // 3. Interactive point query — the frontend's secondary index finds
    //    the one chunk holding objectId 1234 (paper §5.5).
    let (rows, stats) = qserv
        .query_with_stats("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 1234")
        .expect("point query");
    println!(
        "\nLV1 point lookup: {} row(s) from {} chunk(s) [secondary index: {}]",
        rows.num_rows(),
        stats.chunks_dispatched,
        stats.used_secondary_index
    );
    for row in &rows.rows {
        println!("  objectId={} ra={} decl={}", row[0], row[1], row[2]);
    }

    // 4. Full-sky aggregation — every chunk contributes, the master
    //    recombines partial aggregates (paper §5.3).
    let (count, stats) = qserv
        .query_with_stats("SELECT COUNT(*) FROM Object")
        .expect("full-sky count");
    println!(
        "\nHV1 full-sky count: {} (dispatched {} chunk queries)",
        count.scalar().expect("scalar result"),
        stats.chunks_dispatched
    );

    // 5. The paper's §5.3 example: a spatially-restricted AVG. The
    //    areaspec box keeps dispatch off most of the sky; AVG is split
    //    into SUM/COUNT per chunk and recombined.
    let (avg, stats) = qserv
        .query_with_stats(
            "SELECT AVG(uFlux_SG) FROM Object \
             WHERE qserv_areaspec_box(0.0, 0.0, 4.0, 6.0) AND uRadius_PS > 0.04",
        )
        .expect("avg query");
    println!(
        "\n§5.3 example AVG(uFlux_SG) = {} over {} chunk(s)",
        avg.scalar().expect("scalar result"),
        stats.chunks_dispatched
    );

    // 6. Inspect what the frontend generates without running it.
    let plan = qserv
        .explain("SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(0.0, 0.0, 4.0, 6.0)")
        .expect("explain");
    println!(
        "\nexplain: {} chunk(s), aggregated={}, sample chunk query:\n{}",
        plan.chunks.len(),
        plan.aggregated,
        plan.sample_message.unwrap_or_default()
    );
}
