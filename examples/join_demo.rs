//! The distributed join path end to end: explicit `JOIN ... ON` syntax,
//! a chunk-local Object ⋈ Source equi-join, and a cross-catalog XMatch
//! against a reference catalog — each cross-checked against brute force.
//!
//! ```sh
//! cargo run --release --example join_demo
//! ```

use qserv::{ClusterBuilder, XMatchSpec};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_sphgeom::angular_separation_deg;
use std::time::Instant;

fn main() {
    let patch = Patch::generate(&CatalogConfig::small(2000, 12));
    let refs = patch.generate_ref_catalog(12);
    let qserv = ClusterBuilder::new(8)
        .ref_objects(&refs)
        .build(&patch.objects, &patch.sources);
    println!(
        "loaded {} objects, {} sources, {} reference objects over {} chunks\n",
        patch.objects.len(),
        patch.sources.len(),
        refs.len(),
        qserv.placement().chunks().len()
    );

    // 1. Near-neighbour self-join, spelled with explicit JOIN syntax.
    //    The parser desugars ON into the WHERE conjunction, so the plan
    //    is the same per-subchunk overlap join as the comma form.
    let radius = 0.05;
    let sql = format!(
        "SELECT count(*) FROM Object o1 \
         JOIN Object o2 ON qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius} \
         WHERE o1.objectId != o2.objectId"
    );
    let plan = qserv.explain(&sql).expect("explain");
    println!("near-neighbour JOIN plan: {:?}", plan.join);
    let t = Instant::now();
    let pairs = qserv
        .query(&sql)
        .expect("join query")
        .scalar()
        .and_then(|v| v.as_i64())
        .expect("count");
    println!(
        "  {pairs} pairs within {radius}° ({:.0} ms)",
        t.elapsed().as_secs_f64() * 1e3
    );
    let mut brute = 0i64;
    for a in &patch.objects {
        for b in &patch.objects {
            if a.object_id != b.object_id
                && angular_separation_deg(a.ra_ps, a.decl_ps, b.ra_ps, b.decl_ps) < radius
            {
                brute += 1;
            }
        }
    }
    assert_eq!(pairs, brute);
    println!("  brute force agrees: {brute} ✓\n");

    // 2. Object ⋈ Source equi-join: routed on the objectId chunk index,
    //    each worker joins only its co-located chunk pair.
    let sql = "SELECT o.objectId, s.sourceId FROM Object o \
               JOIN Source s ON o.objectId = s.objectId \
               WHERE s.psfFlux > 1500";
    let plan = qserv.explain(sql).expect("explain");
    let t = Instant::now();
    let r = qserv.query(sql).expect("equi-join");
    let expected = patch.sources.iter().filter(|s| s.psf_flux > 1500.0).count();
    assert_eq!(r.num_rows(), expected);
    println!(
        "Object ⋈ Source plan: {:?}; {} rows ({:.0} ms) — matches the catalog ✓\n",
        plan.join,
        r.num_rows(),
        t.elapsed().as_secs_f64() * 1e3
    );

    // 3. Cross-catalog XMatch: nearest reference object per Object
    //    within 10 arcsec, dispatched chunk-aligned, merged with the
    //    keep-nearest fold.
    let spec = XMatchSpec::object_to_ref(10.0 / 3600.0);
    println!("XMatch worker SQL: {}", qserv.xmatch_sql(&spec).unwrap());
    let t = Instant::now();
    let (matched, stats) = qserv.xmatch(&spec).expect("xmatch");
    println!(
        "  {} of {} objects matched over {} chunks ({:.0} ms)",
        matched.num_rows(),
        patch.objects.len(),
        stats.chunks_dispatched,
        t.elapsed().as_secs_f64() * 1e3
    );
    // Brute-force cross-check: every reported match is that object's
    // true nearest in-range candidate.
    for row in &matched.rows {
        let o = &patch.objects[(row[0].as_i64().unwrap() - 1) as usize];
        let d = row[2].as_f64().unwrap();
        let nearest = refs
            .iter()
            .map(|c| angular_separation_deg(o.ra_ps, o.decl_ps, c.ra, c.decl))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(d, nearest);
    }
    println!("  every match verified nearest ✓");
}
