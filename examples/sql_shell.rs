//! An interactive SQL shell over a running cluster, connected through
//! the TCP proxy — the stand-in for the paper's MySQL Proxy front door
//! (§5.4): "queries can be submitted using any MySQL-compatible
//! client". Every statement travels the real wire protocol: rows print
//! incrementally as chunks fold (streaming `ROWS` frames), and the
//! proxy's session verbs work as typed-in SQL.
//!
//! ```sh
//! cargo run --release --example sql_shell
//! qserv> SELECT COUNT(*) FROM Object;
//! qserv> TRACE SELECT objectId FROM Object WHERE objectId = 42;
//! qserv> STATUS;
//! qserv> EXPLAIN SELECT count(*) FROM Object o1, Object o2 WHERE ...;
//! qserv> \q
//! ```

use qserv::service::{QueryService, ServiceConfig};
use qserv::ClusterBuilder;
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_proxy::{ProxyClient, ProxyServer};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let patch = Patch::generate(&CatalogConfig::small(3000, 99));
    let qserv = Arc::new(ClusterBuilder::new(6).build(&patch.objects, &patch.sources));
    let service = Arc::new(QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig {
            // Opt into the result cache so repeated statements replay.
            cache_capacity_bytes: 8 << 20,
            ..ServiceConfig::default()
        },
    ));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("proxy binds");
    let mut client = ProxyClient::connect(server.addr()).expect("shell connects");

    println!(
        "qserv shell — {} objects / {} sources over {} chunks on {} nodes, proxy at {}",
        patch.objects.len(),
        patch.sources.len(),
        qserv.placement().chunks().len(),
        qserv.workers().len(),
        server.addr()
    );
    println!("tables: Object(objectId, ra_PS, decl_PS, uFlux_PS..yFlux_PS, uFlux_SG, uRadius_PS, chunkId, subChunkId)");
    println!("        Source(sourceId, objectId, ra, decl, taiMidPoint, psfFlux, psfFluxErr, chunkId, subChunkId)");
    println!(
        "type SQL (\\q to quit; EXPLAIN <query> for the plan; TRACE <query>, KILL <qid>, STATUS pass through the proxy)\n"
    );

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("qserv> ");
        std::io::stdout().flush().expect("stdout flush");
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let input = line.trim().trim_end_matches(';').trim();
        if input.is_empty() {
            continue;
        }
        if input == "\\q" || input.eq_ignore_ascii_case("quit") {
            break;
        }
        // EXPLAIN travels the wire like everything else: the proxy
        // answers with the planner's item/value table.
        if let Some(rest) = qserv::strip_explain(input) {
            match client.explain(rest) {
                Ok(plan) => {
                    for row in &plan.rows {
                        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        println!("{}", cells.join(" = "));
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        run_statement(&mut client, input);
    }
    drop(client);
    server.shutdown();
}

/// Streams one statement through the proxy, printing row batches as
/// they arrive (capped at 40 printed rows) and the `END` summary.
fn run_statement(client: &mut ProxyClient, sql: &str) {
    const PRINT_CAP: usize = 40;
    let started = std::time::Instant::now();
    let mut stream = match client.query_stream(sql) {
        Ok(s) => s,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    let mut printed_header = false;
    let mut printed = 0usize;
    let mut rows = 0usize;
    loop {
        match stream.next_batch() {
            Ok(Some(batch)) => {
                if !printed_header {
                    println!("{}", batch.columns.join(" | "));
                    printed_header = true;
                }
                for row in &batch.rows {
                    rows += 1;
                    if printed < PRINT_CAP {
                        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        println!("{}", cells.join(" | "));
                        printed += 1;
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        }
    }
    if rows > printed {
        println!("… {} more rows", rows - printed);
    }
    if let Some(trace) = stream.trace_json() {
        println!("trace: {trace}");
    }
    if let Some(stats) = stream.stats() {
        println!(
            "({} rows; {} chunks; {} B transferred; cache {}; {:.1} ms)",
            stats.rows,
            stats.chunks_dispatched,
            stats.result_bytes,
            stats.cache.as_str(),
            started.elapsed().as_secs_f64() * 1e3
        );
    }
}
