//! An interactive SQL shell over a running cluster — the stand-in for the
//! paper's MySQL Proxy front door (§5.4): "queries can be submitted using
//! any MySQL-compatible client".
//!
//! ```sh
//! cargo run --release --example sql_shell
//! qserv> SELECT COUNT(*) FROM Object;
//! qserv> EXPLAIN SELECT count(*) FROM Object o1, Object o2 WHERE ...;
//! qserv> \q
//! ```

use qserv::ClusterBuilder;
use qserv_datagen::generate::{CatalogConfig, Patch};
use std::io::{BufRead, Write};

fn main() {
    let patch = Patch::generate(&CatalogConfig::small(3000, 99));
    let qserv = ClusterBuilder::new(6).build(&patch.objects, &patch.sources);
    println!(
        "qserv shell — {} objects / {} sources over {} chunks on {} nodes",
        patch.objects.len(),
        patch.sources.len(),
        qserv.placement().chunks().len(),
        qserv.workers().len()
    );
    println!("tables: Object(objectId, ra_PS, decl_PS, uFlux_PS..yFlux_PS, uFlux_SG, uRadius_PS, chunkId, subChunkId)");
    println!("        Source(sourceId, objectId, ra, decl, taiMidPoint, psfFlux, psfFluxErr, chunkId, subChunkId)");
    println!("type SQL (\\q to quit, EXPLAIN <query> to see the plan)\n");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("qserv> ");
        std::io::stdout().flush().expect("stdout flush");
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let input = line.trim().trim_end_matches(';').trim();
        if input.is_empty() {
            continue;
        }
        if input == "\\q" || input.eq_ignore_ascii_case("quit") {
            break;
        }
        if let Some(rest) = input
            .strip_prefix("EXPLAIN ")
            .or_else(|| input.strip_prefix("explain "))
        {
            match qserv.explain(rest) {
                Ok(e) => {
                    println!(
                        "join={:?} aggregated={} secondary_index={} chunks={}",
                        e.join,
                        e.aggregated,
                        e.uses_secondary_index,
                        e.chunks.len()
                    );
                    if let Some(msg) = e.sample_message {
                        println!("sample chunk query:\n{msg}");
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let started = std::time::Instant::now();
        match qserv.query_with_stats(input) {
            Ok((result, stats)) => {
                println!("{}", result.columns.join(" | "));
                for row in result.rows.iter().take(40) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                if result.num_rows() > 40 {
                    println!("… {} more rows", result.num_rows() - 40);
                }
                println!(
                    "({} rows; {} chunks; {} B transferred; {:.1} ms)",
                    result.num_rows(),
                    stats.chunks_dispatched,
                    stats.result_bytes,
                    started.elapsed().as_secs_f64() * 1e3
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
