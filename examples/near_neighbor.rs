//! Near-neighbour search: the paper's Super High Volume 1 workload.
//!
//! Finds all pairs of objects within an angular radius inside a sky box,
//! executed as O(kn) subchunk joins with overlap instead of an O(n²)
//! whole-catalog join (paper §4.4), and verifies the distributed answer
//! against brute force.
//!
//! ```sh
//! cargo run --release --example near_neighbor
//! ```

use qserv::ClusterBuilder;
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_sphgeom::angular_separation_deg;
use std::time::Instant;

fn main() {
    let patch = Patch::generate(&CatalogConfig::small(3000, 11));
    let qserv = ClusterBuilder::new(8).build(&patch.objects, &patch.sources);

    let radius_deg = 0.05;
    let sql = format!(
        "SELECT count(*) FROM Object o1, Object o2 \
         WHERE qserv_areaspec_box(358.0, -7.0, 5.0, 7.0) \
         AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius_deg} \
         AND o1.objectId != o2.objectId"
    );

    // How the frontend plans it: subchunk near-neighbour join.
    let plan = qserv.explain(&sql).expect("explain");
    println!(
        "plan: {:?} over {} chunks; sample chunk query:\n{}",
        plan.join,
        plan.chunks.len(),
        plan.sample_message.as_deref().unwrap_or("")
    );

    let t0 = Instant::now();
    let distributed = qserv.query(&sql).expect("near-neighbour query");
    let pairs = distributed.scalar().expect("count").as_i64().expect("int");
    println!(
        "distributed: {pairs} ordered pairs within {radius_deg}° ({:.0} ms)",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // On-demand table generation on the workers (paper §5.4: built per
    // query, dropped afterwards).
    let built: u64 = qserv.workers().iter().map(|w| w.stats.snapshot().2).sum();
    println!("workers generated {built} on-the-fly subchunk/overlap tables");

    // Brute force cross-check.
    let t1 = Instant::now();
    let mut brute = 0i64;
    for a in &patch.objects {
        for b in &patch.objects {
            if a.object_id != b.object_id
                && angular_separation_deg(a.ra_ps, a.decl_ps, b.ra_ps, b.decl_ps) < radius_deg
            {
                brute += 1;
            }
        }
    }
    println!(
        "brute force: {brute} pairs ({:.0} ms)",
        t1.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(pairs, brute, "distributed must equal brute force");
    println!("overlap-correct: distributed == brute force ✓");
}
