//! Time-series analysis: the paper's Low Volume 2 and Super High
//! Volume 2 workloads over the Object/Source pair.
//!
//! Pulls one object's photometric history (LV2), then hunts for sources
//! displaced from their objects across a sky region (SHV2's join shape),
//! and finishes with a variability screen built from grouped aggregates.
//!
//! ```sh
//! cargo run --release --example time_series
//! ```

use qserv::ClusterBuilder;
use qserv_datagen::generate::{CatalogConfig, Patch};

fn main() {
    // A catalog with paper-like Source multiplicity (~41 rows/object).
    let patch = Patch::generate(&CatalogConfig {
        objects: 800,
        mean_sources_per_object: 41.0,
        seed: 23,
        footprint: qserv_datagen::generate::pt11_footprint(),
    });
    let qserv = ClusterBuilder::new(6).build(&patch.objects, &patch.sources);
    println!(
        "catalog: {} objects, {} sources (k ≈ {:.1})",
        patch.objects.len(),
        patch.sources.len(),
        patch.sources.len() as f64 / patch.objects.len() as f64
    );

    // --- LV2: the light curve of one object --------------------------------
    let oid = 321;
    let (series, stats) = qserv
        .query_with_stats(&format!(
            "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), ra, decl \
             FROM Source WHERE objectId = {oid} ORDER BY taiMidPoint"
        ))
        .expect("LV2 time series");
    println!(
        "\nLV2: objectId {oid} has {} detections (from {} chunk)",
        series.num_rows(),
        stats.chunks_dispatched
    );
    for row in series.rows.iter().take(5) {
        println!("  t={}  mag={}", row[0], row[1]);
    }
    if series.num_rows() > 5 {
        println!("  … {} more", series.num_rows() - 5);
    }

    // --- SHV2: sources displaced from their objects -------------------------
    let cut_deg = 0.1 / 3600.0; // 0.1 arcsec
    let (moved, _) = qserv
        .query_with_stats(&format!(
            "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS \
             FROM Object o, Source s \
             WHERE qserv_areaspec_box(358.0, -7.0, 5.0, 7.0) \
             AND o.objectId = s.objectId \
             AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > {cut_deg}"
        ))
        .expect("SHV2 displacement join");
    println!(
        "\nSHV2: {} detections displaced > 0.1\" from their object",
        moved.num_rows()
    );

    // --- Variability screen: grouped aggregates over the join key -----------
    let stats_per_object = qserv
        .query(
            "SELECT objectId, COUNT(*) AS nobs, MIN(psfFlux), MAX(psfFlux), AVG(psfFlux) \
             FROM Source GROUP BY objectId ORDER BY nobs DESC LIMIT 5",
        )
        .expect("variability screen");
    println!("\nmost-observed objects:");
    println!("  objectId      nobs  min(flux)        max(flux)");
    for row in &stats_per_object.rows {
        println!(
            "  {:<12}  {:>4}  {:<15}  {}",
            row[0], row[1], row[2], row[3]
        );
    }
}
