//! Query-trace demo: run a distributed query under a structured trace
//! and dump the span tree as JSON — proxy-to-merge observability over
//! the same pipeline `query()` uses. A second run binds the cluster to
//! a virtual clock and injects 2-second fabric delays to show latency
//! being billed in virtual time with zero wall-clock sleeping.
//!
//! ```sh
//! cargo run --release --example trace_demo
//! cargo run --release --example trace_demo -- "SELECT COUNT(*) FROM Source"
//! cargo run --release --example trace_demo -- --out /tmp/trace.json
//! ```

use qserv::{Clock, ClusterBuilder, FabricOp, FaultPlan, VirtualClock};
use qserv_datagen::generate::{CatalogConfig, Patch};
use std::time::Duration;

fn main() {
    let mut sql =
        "SELECT count(*) AS n, chunkId FROM Object GROUP BY chunkId ORDER BY chunkId".to_string();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out = Some(args.next().expect("--out needs a path"));
        } else {
            sql = arg;
        }
    }
    let patch = Patch::generate(&CatalogConfig::small(1500, 7));

    println!("== traced query ==\n{sql}\n");
    let q = ClusterBuilder::new(4)
        .replication(2)
        .build(&patch.objects, &patch.sources);
    let traced = q.query_traced(&sql).expect("traced query");
    traced.trace.validate().expect("well-formed trace");
    println!("{}", traced.trace.to_json_pretty());
    println!(
        "\n{} rows; {} chunks dispatched, {} retried; {} spans recorded",
        traced.rows.num_rows(),
        traced.stats.chunks_dispatched,
        traced.stats.chunks_retried,
        traced.trace.spans().len(),
    );
    println!("metrics: {}", traced.metrics.to_json());
    if let Some(path) = &out {
        std::fs::write(path, traced.trace.to_json()).expect("write trace JSON");
        println!("trace written to {path}");
    }

    // The same trace machinery under a virtual clock: every fabric write
    // pays a 2 s injected delay, billed to the shared timeline instead
    // of a sleeping thread.
    println!("\n== virtual-clock run: 2 s delay on every fabric write ==");
    let vclock = VirtualClock::shared();
    let chaotic = ClusterBuilder::new(4)
        .replication(2)
        .fault_plan(FaultPlan::new(42))
        .clock(vclock.clone())
        .build(&patch.objects, &patch.sources);
    chaotic
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Write), Duration::from_secs(2));
    let wall = std::time::Instant::now();
    let t = chaotic.query_traced(&sql).expect("delayed query");
    assert_eq!(t.rows.rows, traced.rows.rows, "delays must not change rows");
    let slowest = t
        .trace
        .spans()
        .into_iter()
        .filter(|s| s.name == "chunk")
        .map(|s| s.duration_ns())
        .max()
        .unwrap_or(0);
    println!(
        "virtual time billed: {:.1} s; slowest chunk {:.1} s; wall time {:?}",
        vclock.now().as_secs_f64(),
        slowest as f64 / 1e9,
        wall.elapsed(),
    );
}
