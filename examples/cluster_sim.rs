//! Paper-scale cluster simulation: the 150-node / 30 TB testbed of §6.
//!
//! Real execution in the other examples runs on laptop-sized data; this
//! example drives the calibrated discrete-event simulator at the paper's
//! full scale — 8983 chunks, 1.7 B-row Object table — and prints
//! latencies for the paper's query classes next to the published
//! measurements.
//!
//! ```sh
//! cargo run --release --example cluster_sim
//! ```

use qserv::Chunker;
use qserv_sim::{ChunkTask, QueryJob, SimConfig, Simulator};

/// Object-table bytes per chunk at paper scale: 1.824e12 bytes over 8983
/// chunks (§6.2 HV2's exact on-disk footprint).
const OBJECT_BYTES_PER_CHUNK: u64 = 1_824_000_000_000 / 8983;

fn main() {
    let chunker = Chunker::paper_default();
    let chunks = chunker.num_chunks();
    let cfg = SimConfig::paper_cluster();
    println!(
        "simulated testbed: {} nodes × {} slots, {} chunks (paper: 150 nodes, 8983 chunks)\n",
        cfg.nodes, cfg.slots_per_node, chunks
    );

    // LV1: secondary-index point lookup — one chunk, a few index seeks.
    let lv1 = run_one(&cfg, chunks, "LV1 point lookup", |_n| {
        vec![ChunkTask {
            node: 17 % cfg.nodes,
            seeks: 3,
            result_bytes: 2_000,
            ..Default::default()
        }]
    });
    println!("LV1  {lv1:7.1} s   (paper Figure 2: ~4 s)");

    // HV1: full-sky COUNT(*) — 8983 tiny chunk queries, master-bound.
    let hv1 = run_one(&cfg, chunks, "HV1 count", |n| {
        (0..chunks)
            .map(|i| ChunkTask {
                node: i % n,
                seeks: 1,
                result_bytes: 100,
                ..Default::default()
            })
            .collect()
    });
    println!("HV1  {hv1:7.1} s   (paper Figure 5: 20–30 s)");

    // HV2 uncached: full Object scan from disk.
    let hv2_cold = run_one(&cfg, chunks, "HV2 cold", |n| {
        (0..chunks)
            .map(|i| ChunkTask {
                node: i % n,
                disk_bytes: OBJECT_BYTES_PER_CHUNK,
                result_bytes: 70_000 * 80 / chunks as u64,
                ..Default::default()
            })
            .collect()
    });
    println!("HV2  {hv2_cold:7.1} s   uncached (paper Figure 6, Run 3: ~420 s)");

    // HV2 cached: ~65% of the table in page cache.
    let hv2_warm = run_one(&cfg, chunks, "HV2 warm", |n| {
        (0..chunks)
            .map(|i| ChunkTask {
                node: i % n,
                disk_bytes: OBJECT_BYTES_PER_CHUNK * 35 / 100,
                cached_bytes: OBJECT_BYTES_PER_CHUNK * 65 / 100,
                result_bytes: 70_000 * 80 / chunks as u64,
                ..Default::default()
            })
            .collect()
    });
    println!("HV2  {hv2_warm:7.1} s   cached   (paper Figure 6: 150–180 s)");

    // SHV1: near-neighbour over 100 deg² — ~22 chunks of heavy join CPU.
    let shv1_chunks = (100.0 / 4.5) as usize;
    let shv1 = run_one(&cfg, chunks, "SHV1 near-neighbour", |n| {
        (0..shv1_chunks)
            .map(|i| ChunkTask {
                node: (i * 7) % n,
                disk_bytes: OBJECT_BYTES_PER_CHUNK,
                cpu_s: 620.0,   // subchunk join work per chunk (calibrated)
                seeks: 12 * 16, // on-the-fly subchunk table generation
                result_bytes: 100,
                ..Default::default()
            })
            .collect()
    });
    println!("SHV1 {shv1:7.1} s   (paper §6.2: ~660 s)");

    // Weak scaling (Figure 11 shape): HV1 time vs node count with data
    // per node constant.
    println!("\nweak scaling, HV1 (dispatch-bound → linear in chunks):");
    for nodes in [40, 100, 150] {
        let cfg_n = SimConfig::paper_cluster().with_nodes(nodes);
        let scaled_chunks = chunks * nodes / 150;
        let t = run_one(&cfg_n, scaled_chunks, "HV1", |n| {
            (0..scaled_chunks)
                .map(|i| ChunkTask {
                    node: i % n,
                    seeks: 1,
                    result_bytes: 100,
                    ..Default::default()
                })
                .collect()
        });
        println!("  {nodes:>3} nodes ({scaled_chunks:>4} chunks): {t:6.1} s");
    }
}

fn run_one(
    cfg: &SimConfig,
    _chunks: usize,
    label: &str,
    tasks: impl Fn(usize) -> Vec<ChunkTask>,
) -> f64 {
    let mut sim = Simulator::new(cfg.clone());
    sim.submit(QueryJob {
        label: label.to_string(),
        submit_s: 0.0,
        tasks: tasks(cfg.nodes),
    });
    sim.run()[0].elapsed_s
}
