//! Streaming results and the normalized-query result cache, proven at
//! the service layer:
//!
//! 1. **Equivalence** — for every query shape (pass-through selections,
//!    aggregations, ORDER BY LIMIT, point lookups), draining a
//!    streaming submission and reassembling the batches yields a table
//!    byte-identical to the buffered reply, including Int → Float
//!    re-coercion when a late chunk widens a column's merge vote.
//! 2. **Incrementality** — under per-chunk fabric delays, a streamable
//!    scan delivers multiple row batches (first rows leave while later
//!    chunks are still scanning), and dropping the handle mid-stream
//!    cancels the remaining work.
//! 3. **Caching** — with a byte budget armed, repeated queries (modulo
//!    whitespace/casing) are served from the cache without
//!    re-execution, `proxy.cache.{hit,miss,evict}` count faithfully,
//!    and a data-version bump invalidates every older entry.

mod common;

use common::small_patch;
use qserv::service::names;
use qserv::{
    CacheOutcome, ClusterBuilder, FabricOp, FaultPlan, QservError, QueryService, QueryState,
    ServiceConfig, StreamEvent, Value,
};
use std::sync::Arc;
use std::time::Duration;

const SHAPES: [&str; 6] = [
    "SELECT objectId, ra_PS, decl_PS FROM Object",
    "SELECT COUNT(*) FROM Object",
    "SELECT chunkId, COUNT(*), AVG(ra_PS) FROM Object GROUP BY chunkId",
    "SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC LIMIT 7",
    "SELECT objectId FROM Object WHERE objectId = 99",
    "SELECT objectId, decl_PS FROM Object WHERE qserv_areaspec_box(0.0, -2.0, 2.0, 2.0)",
];

fn service(objects: usize, seed: u64, cfg: ServiceConfig) -> QueryService {
    let patch = small_patch(objects, seed);
    let qserv = Arc::new(ClusterBuilder::new(3).build(&patch.objects, &patch.sources));
    QueryService::start(qserv, cfg)
}

#[test]
fn streaming_collect_equals_buffered_reply() {
    let service = service(500, 71, ServiceConfig::default());
    for sql in SHAPES {
        let buffered = service.submit(sql).expect("buffered admitted").wait();
        let (expected, _) = buffered.result.expect("buffered succeeds");
        let streamed = service
            .submit_streaming(sql)
            .expect("streaming admitted")
            .collect();
        let (table, _) = streamed.result.expect("streaming succeeds");
        assert_eq!(table, expected, "stream reassembly diverged: {sql}");
        assert_eq!(streamed.cache, CacheOutcome::Off, "cache defaults off");
    }
}

#[test]
fn streamable_scans_deliver_multiple_batches() {
    let patch = small_patch(600, 72);
    let mut q = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(31))
        .build(&patch.objects, &patch.sources);
    // Serial dispatch + a per-read delay: each chunk folds (and its
    // batch drains) before the next chunk's result even arrives.
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(5));

    let service = QueryService::start(Arc::clone(&qserv), ServiceConfig::default());
    let handle = service
        .submit_streaming("SELECT objectId FROM Object")
        .expect("admitted");
    let mut batches = 0usize;
    let mut rows = 0usize;
    loop {
        match handle.recv().expect("stream does not die early") {
            StreamEvent::Batch(b) => {
                if !b.rows.is_empty() {
                    batches += 1;
                }
                rows += b.rows.len();
            }
            StreamEvent::Done(done) => {
                done.result.expect("scan succeeds");
                break;
            }
        }
    }
    assert_eq!(rows, 600);
    assert!(
        batches >= 2,
        "a multi-chunk scan should stream incrementally, got {batches} batch(es)"
    );
}

#[test]
fn dropping_the_handle_cancels_remaining_work() {
    let patch = small_patch(600, 73);
    let mut q = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(32))
        .build(&patch.objects, &patch.sources);
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(20));

    let service = QueryService::start(Arc::clone(&qserv), ServiceConfig::default());
    let handle = service
        .submit_streaming("SELECT objectId, ra_PS FROM Object")
        .expect("admitted");
    let qid = handle.qid;
    // Take the first batch, then hang up.
    loop {
        match handle.recv().expect("stream alive") {
            StreamEvent::Batch(b) if !b.rows.is_empty() => break,
            StreamEvent::Batch(_) => {}
            StreamEvent::Done(d) => panic!("finished before first batch: {:?}", d.result),
        }
    }
    drop(handle);
    // The executor notices the dead channel at the next batch and stops.
    let mut state = None;
    for _ in 0..500 {
        state = service
            .status()
            .iter()
            .find(|s| s.qid == qid)
            .map(|s| s.state);
        if matches!(state, Some(QueryState::Cancelled)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        state,
        Some(QueryState::Cancelled),
        "abandoned stream must cancel the query"
    );
    // The service (and the fabric) stay clean for the next query.
    qserv.cluster().faults().clear();
    let (rows, _) = service
        .submit("SELECT COUNT(*) FROM Object")
        .expect("alive")
        .wait()
        .result
        .expect("post-cancel query succeeds");
    assert_eq!(rows.scalar(), Some(&Value::Int(600)));
}

fn cached_cfg() -> ServiceConfig {
    ServiceConfig {
        cache_capacity_bytes: 1 << 20,
        ..ServiceConfig::default()
    }
}

#[test]
fn repeated_queries_hit_the_cache_with_identical_results() {
    let service = service(400, 74, cached_cfg());
    let sql = "SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId";
    let (expected, _) = service
        .submit(sql)
        .expect("cold admitted")
        .wait()
        .result
        .expect("cold run succeeds");
    // Identical resubmission: byte-identical replay.
    let (hot, _) = service
        .submit(sql)
        .expect("hot admitted")
        .wait()
        .result
        .expect("hot run succeeds");
    assert_eq!(hot, expected, "cache replay must be byte-identical");
    // Cosmetic variants (whitespace, keyword casing) normalize to the
    // same key. Function-name spelling is preserved by the renderer, so
    // `count(*)` vs `COUNT(*)` would be distinct entries — headers are
    // part of the result.
    let variant = "select  chunkId, COUNT(*) from Object  group by chunkId";
    let (cosmetic, _) = service
        .submit(variant)
        .expect("variant admitted")
        .wait()
        .result
        .expect("variant run succeeds");
    assert_eq!(cosmetic, expected, "variant shares the entry");

    // A streaming submission hits the same entry.
    let handle = service.submit_streaming(sql).expect("stream admitted");
    assert!(handle.cache_hit, "third run should be served from cache");
    let streamed = handle.collect();
    assert_eq!(streamed.cache, CacheOutcome::Hit);
    let (table, _) = streamed.result.expect("hit succeeds");
    assert_eq!(table, expected);

    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter(names::CACHE_HIT), 3);
    assert_eq!(snap.counter(names::CACHE_MISS), 1);
    // Hits bypass admission entirely: only the cold run was admitted.
    let admitted = snap.counter(names::ADMITTED_INTERACTIVE) + snap.counter(names::ADMITTED_SCAN);
    assert_eq!(admitted, 1, "cache hits must not occupy queue slots");
    assert_eq!(service.result_cache_len(), 1);
}

#[test]
fn version_bump_invalidates_cached_entries() {
    let service = service(300, 75, cached_cfg());
    let sql = "SELECT COUNT(*) FROM Object";
    let first = service.submit(sql).expect("cold").wait();
    first.result.expect("cold succeeds");
    service.qserv().bump_data_version();
    // Stale entry: the query re-executes (a miss, not a hit).
    let second = service.submit(sql).expect("warm").wait();
    second.result.expect("re-execution succeeds");
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter(names::CACHE_HIT), 0);
    assert_eq!(snap.counter(names::CACHE_MISS), 2);
    // And the re-executed result was stored under the new version.
    let third = service.submit(sql).expect("hot").wait();
    third.result.expect("hit succeeds");
    assert_eq!(service.metrics_snapshot().counter(names::CACHE_HIT), 1);

    // clear_result_cache is the explicit hammer.
    service.clear_result_cache();
    assert_eq!(service.result_cache_len(), 0);
}

#[test]
fn table_version_bump_invalidates_only_that_tables_entries() {
    let service = service(300, 75, cached_cfg());
    let obj = "SELECT COUNT(*) FROM Object";
    let src = "SELECT COUNT(*) FROM Source";
    service
        .submit(obj)
        .expect("obj cold")
        .wait()
        .result
        .expect("obj runs");
    service
        .submit(src)
        .expect("src cold")
        .wait()
        .result
        .expect("src runs");
    // Bumping Source orphans the Source entry only: the Object lookup
    // keeps hitting, the Source one re-executes.
    service.qserv().bump_table_version("Source");
    service
        .submit(obj)
        .expect("obj warm")
        .wait()
        .result
        .expect("obj hits");
    service
        .submit(src)
        .expect("src warm")
        .wait()
        .result
        .expect("src reruns");
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter(names::CACHE_HIT), 1, "Object entry survived");
    assert_eq!(snap.counter(names::CACHE_MISS), 3, "Source entry orphaned");
}

#[test]
fn byte_budget_evicts_and_counts() {
    // A budget big enough for roughly one COUNT(*) result: the second
    // distinct query must push the first out.
    let service = service(
        200,
        76,
        ServiceConfig {
            cache_capacity_bytes: 100,
            cache_max_entry_bytes: 100,
            ..ServiceConfig::default()
        },
    );
    service
        .submit("SELECT COUNT(*) FROM Object")
        .expect("a")
        .wait()
        .result
        .expect("a runs");
    service
        .submit("SELECT COUNT(*) FROM Source")
        .expect("b")
        .wait()
        .result
        .expect("b runs");
    let snap = service.metrics_snapshot();
    assert!(
        snap.counter(names::CACHE_EVICT) >= 1,
        "a 150-byte budget cannot hold two results"
    );
    assert_eq!(service.result_cache_len(), 1);
}

#[test]
fn traced_hit_records_a_cache_span() {
    let service = service(200, 77, cached_cfg());
    let sql = "SELECT objectId FROM Object WHERE objectId = 5";
    service
        .submit_traced(sql, "proxy.request")
        .expect("cold")
        .wait()
        .result
        .expect("cold succeeds");
    let hot = service
        .submit_traced(sql, "proxy.request")
        .expect("hot")
        .wait();
    hot.result.expect("hit succeeds");
    let trace = hot.trace.expect("traced submission has a trace");
    trace.validate().expect("hit trace validates");
    assert!(
        trace.spans().iter().any(|s| s.name == "service.cache"),
        "hit trace must carry the cache span"
    );
}

#[test]
fn errors_are_not_cached_and_busy_still_rejects() {
    let service = service(
        200,
        78,
        ServiceConfig {
            cache_capacity_bytes: 1 << 20,
            ..ServiceConfig::default()
        },
    );
    // Analysis errors surface before admission and never populate.
    assert!(matches!(
        service.submit("SELECT * FROM Nonsense"),
        Err(QservError::Analysis(_))
    ));
    assert_eq!(service.result_cache_len(), 0);
    // FROM-less constants bypass the cache (nothing to save).
    service
        .submit("SELECT 1 + 1")
        .expect("constant admitted")
        .wait()
        .result
        .expect("constant runs");
    assert_eq!(service.result_cache_len(), 0);
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter(names::CACHE_MISS), 0, "not cacheable ≠ miss");
}
