//! The complete §6.2 query suite, executed distributed and verified
//! against independently computed expectations. Query text follows the
//! paper verbatim apart from literal values sized to the test fixture.

mod common;

use common::{cluster_from, small_patch};
use qserv::Value;
use qserv_sphgeom::angular_separation_deg;

/// Low Volume 1 — Object retrieval by objectId.
#[test]
fn low_volume_1_object_retrieval() {
    let patch = small_patch(400, 21);
    let q = cluster_from(&patch, 5);
    for oid in [1i64, 57, 123, 400] {
        let (r, stats) = q
            .query_with_stats(&format!("SELECT * FROM Object WHERE objectId = {oid}"))
            .unwrap();
        assert_eq!(r.num_rows(), 1, "objectId {oid}");
        let idx = r.column_index("objectId").unwrap();
        assert_eq!(r.rows[0][idx], Value::Int(oid));
        assert_eq!(stats.chunks_dispatched, 1);
        // SELECT * returns the full Object schema incl. bookkeeping cols.
        assert!(r.column_index("chunkId").is_some());
        assert!(r.column_index("zFlux_PS").is_some());
    }
}

/// Low Volume 2 — time series of one object from Source.
#[test]
fn low_volume_2_time_series() {
    let patch = small_patch(200, 22);
    let q = cluster_from(&patch, 4);
    let oid = 42i64;
    let r = q
        .query(&format!(
            "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), ra, decl \
             FROM Source WHERE objectId = {oid}"
        ))
        .unwrap();
    let expected: Vec<&_> = patch
        .sources
        .iter()
        .filter(|s| s.object_id == oid)
        .collect();
    assert_eq!(r.num_rows(), expected.len());
    assert!(!expected.is_empty());
    // Magnitudes match an independent computation (order-insensitive).
    let expected_mag_sum: f64 = expected
        .iter()
        .map(|s| 31.4 - 2.5 * s.psf_flux.log10())
        .sum();
    let got_mag_sum: f64 = r
        .rows
        .iter()
        .map(|row| row[1].as_f64().expect("psfFlux > 0 in fixture"))
        .sum();
    assert!((expected_mag_sum - got_mag_sum).abs() < 1e-9);
}

/// Low Volume 2 with a missing objectId returns null results (the
/// paper's Source table was clipped, yielding empty retrievals).
#[test]
fn low_volume_2_missing_object_null_result() {
    let patch = small_patch(50, 23);
    let q = cluster_from(&patch, 2);
    let r = q
        .query("SELECT taiMidPoint FROM Source WHERE objectId = 123456789")
        .unwrap();
    assert_eq!(r.num_rows(), 0);
}

/// Low Volume 3 — spatially-restricted colour-cut count.
#[test]
fn low_volume_3_spatial_filter() {
    let patch = small_patch(2000, 24);
    let q = cluster_from(&patch, 4);
    // A box near the equator inside the PT1.1 footprint, with colour cuts
    // loose enough to select some objects.
    let r = q
        .query(
            "SELECT COUNT(*) FROM Object \
             WHERE ra_PS BETWEEN 1 AND 2 AND decl_PS BETWEEN 3 AND 4 \
             AND fluxToAbMag(zFlux_PS) BETWEEN 18 AND 25 \
             AND fluxToAbMag(gFlux_PS)-fluxToAbMag(rFlux_PS) BETWEEN -0.5 AND 0.5",
        )
        .unwrap();
    let mag = |f: f64| 31.4 - 2.5 * f.log10();
    let expected = patch
        .objects
        .iter()
        .filter(|o| {
            (1.0..=2.0).contains(&o.ra_ps)
                && (3.0..=4.0).contains(&o.decl_ps)
                && (18.0..=25.0).contains(&mag(o.flux_ps[4]))
                && (-0.5..=0.5).contains(&(mag(o.flux_ps[1]) - mag(o.flux_ps[2])))
        })
        .count() as i64;
    assert_eq!(r.scalar(), Some(&Value::Int(expected)));
    assert!(expected > 0, "colour cuts should select something");
}

/// High Volume 1 — full-sky COUNT(*).
#[test]
fn high_volume_1_count() {
    let patch = small_patch(700, 25);
    let q = cluster_from(&patch, 6);
    let (r, stats) = q.query_with_stats("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(700)));
    assert_eq!(stats.chunks_dispatched, q.placement().chunks().len());
}

/// High Volume 2 — full-sky colour filter (a full table scan per chunk).
#[test]
fn high_volume_2_full_sky_filter() {
    let patch = small_patch(1500, 26);
    let q = cluster_from(&patch, 5);
    let r = q
        .query(
            "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, iFlux_PS, \
             zFlux_PS, yFlux_PS FROM Object \
             WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 0.4",
        )
        .unwrap();
    let mag = |f: f64| 31.4 - 2.5 * f.log10();
    let mut want: Vec<i64> = patch
        .objects
        .iter()
        .filter(|o| mag(o.flux_ps[3]) - mag(o.flux_ps[4]) > 0.4)
        .map(|o| o.object_id)
        .collect();
    assert_eq!(r.num_rows(), want.len());
    assert!(!want.is_empty());
    let mut got: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);
}

/// High Volume 3 — density per chunk (GROUP BY chunkId with AVGs).
#[test]
fn high_volume_3_density() {
    let patch = small_patch(900, 27);
    let q = cluster_from(&patch, 4);
    let r = q
        .query(
            "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId \
             FROM Object GROUP BY chunkId",
        )
        .unwrap();
    // Verify each group against an independent per-chunk computation.
    let chunker = q.chunker();
    use std::collections::HashMap;
    let mut per_chunk: HashMap<i32, (i64, f64, f64)> = HashMap::new();
    for o in &patch.objects {
        let c = chunker
            .locate(&qserv_sphgeom::LonLat::from_degrees(o.ra_ps, o.decl_ps))
            .chunk_id;
        let e = per_chunk.entry(c).or_insert((0, 0.0, 0.0));
        e.0 += 1;
        e.1 += o.ra_ps;
        e.2 += o.decl_ps;
    }
    assert_eq!(r.num_rows(), per_chunk.len());
    for row in &r.rows {
        let chunk = row[3].as_i64().unwrap() as i32;
        let (n, ra_sum, decl_sum) = per_chunk[&chunk];
        assert_eq!(row[0], Value::Int(n));
        assert!(common::approx_eq(
            &row[1],
            &Value::Float(ra_sum / n as f64),
            1e-9
        ));
        assert!(common::approx_eq(
            &row[2],
            &Value::Float(decl_sum / n as f64),
            1e-9
        ));
    }
}

/// Super High Volume 1 — near-neighbour self-join. THE overlap
/// correctness test: the distributed count over subchunk + full-overlap
/// tables must equal the brute-force O(n²) pair count, including pairs
/// straddling chunk and subchunk boundaries.
#[test]
fn super_high_volume_1_near_neighbor() {
    let patch = small_patch(900, 28);
    let q = cluster_from(&patch, 5);
    // Radius safely below the chunker overlap (0.1°).
    let radius = 0.05f64;
    let (r, _stats) = q
        .query_with_stats(&format!(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_areaspec_box(358.0, -7.0, 5.0, 7.0) \
             AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius}"
        ))
        .unwrap();
    // Brute force over the whole patch (the areaspec box covers it all):
    // ordered pairs, including self-pairs (o1 = o2 has distance 0 < r),
    // exactly as the SQL semantics count them.
    let mut expected = 0i64;
    for a in &patch.objects {
        for b in &patch.objects {
            if angular_separation_deg(a.ra_ps, a.decl_ps, b.ra_ps, b.decl_ps) < radius {
                expected += 1;
            }
        }
    }
    assert_eq!(
        r.scalar(),
        Some(&Value::Int(expected)),
        "near-neighbour count must match brute force exactly (overlap correctness)"
    );
    assert!(
        expected > patch.objects.len() as i64,
        "fixture must contain some true neighbour pairs beyond self-pairs"
    );
}

/// SHV1 restricted to a sub-box: only o1 is box-restricted, o2 may lie
/// outside the box (the paper's semantics).
#[test]
fn super_high_volume_1_box_semantics() {
    let patch = small_patch(700, 29);
    let q = cluster_from(&patch, 4);
    let radius = 0.08f64;
    let r = q
        .query(&format!(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_areaspec_box(0.0, -3.0, 3.0, 3.0) \
             AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius}"
        ))
        .unwrap();
    let in_box = |ra: f64, decl: f64| (0.0..=3.0).contains(&ra) && (-3.0..=3.0).contains(&decl);
    let mut expected = 0i64;
    for a in patch.objects.iter().filter(|o| in_box(o.ra_ps, o.decl_ps)) {
        for b in &patch.objects {
            if angular_separation_deg(a.ra_ps, a.decl_ps, b.ra_ps, b.decl_ps) < radius {
                expected += 1;
            }
        }
    }
    assert_eq!(r.scalar(), Some(&Value::Int(expected)));
}

/// Super High Volume 2 — sources displaced from their objects.
#[test]
fn super_high_volume_2_sources_not_near_objects() {
    let patch = small_patch(500, 30);
    let q = cluster_from(&patch, 4);
    // Datagen scatters sources within ±0.3 arcsec; cut at 0.1 arcsec so a
    // healthy fraction of pairs passes.
    let cut_deg = 0.1 / 3600.0;
    let r = q
        .query(&format!(
            "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS \
             FROM Object o, Source s \
             WHERE qserv_areaspec_box(358.0, -7.0, 5.0, 7.0) \
             AND o.objectId = s.objectId \
             AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > {cut_deg}"
        ))
        .unwrap();
    let mut expected: Vec<i64> = Vec::new();
    for s in &patch.sources {
        let o = &patch.objects[(s.object_id - 1) as usize];
        if angular_separation_deg(s.ra, s.decl, o.ra_ps, o.decl_ps) > cut_deg {
            expected.push(s.source_id);
        }
    }
    assert!(!expected.is_empty(), "fixture must displace some sources");
    let mut got: Vec<i64> = r.rows.iter().map(|row| row[1].as_i64().unwrap()).collect();
    got.sort_unstable();
    expected.sort_unstable();
    assert_eq!(
        got, expected,
        "SHV2 join must find exactly the displaced sources"
    );
}

/// SHV1 spelled with the paper's explicit `JOIN ... ON` syntax: the
/// grammar desugars to the same comma-join plan, so both spellings and
/// a brute-force oracle must agree on the exact pair count.
#[test]
fn near_neighbor_explicit_join_syntax() {
    let patch = small_patch(800, 32);
    let q = cluster_from(&patch, 4);
    let radius = 0.05f64;
    let joined = q
        .query(&format!(
            "SELECT count(*) FROM Object o1 \
             JOIN Object o2 ON qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius} \
             WHERE o1.objectId != o2.objectId"
        ))
        .unwrap();
    let comma = q
        .query(&format!(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius} \
             AND o1.objectId != o2.objectId"
        ))
        .unwrap();
    assert_eq!(joined.scalar(), comma.scalar());
    let mut expected = 0i64;
    for a in &patch.objects {
        for b in &patch.objects {
            if a.object_id != b.object_id
                && angular_separation_deg(a.ra_ps, a.decl_ps, b.ra_ps, b.decl_ps) < radius
            {
                expected += 1;
            }
        }
    }
    assert!(expected > 0, "fixture has true neighbour pairs");
    assert_eq!(joined.scalar(), Some(&Value::Int(expected)));
}

/// Object ⋈ Source equi-join (the paper's time-series join) written
/// with explicit JOIN syntax: routed chunk-locally on the objectId
/// chunk index, verified against an exact per-row expectation.
#[test]
fn object_source_equi_join_explicit_syntax() {
    let patch = small_patch(300, 33);
    let q = cluster_from(&patch, 4);
    let r = q
        .query(
            "SELECT o.objectId, s.sourceId FROM Object o \
             JOIN Source s ON o.objectId = s.objectId \
             WHERE s.psfFlux > 1200 ORDER BY s.sourceId",
        )
        .unwrap();
    let expected: Vec<(i64, i64)> = patch
        .sources
        .iter()
        .filter(|s| s.psf_flux > 1200.0)
        .map(|s| (s.object_id, s.source_id))
        .collect();
    assert!(!expected.is_empty());
    let got: Vec<(i64, i64)> = r
        .rows
        .iter()
        .map(|row| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
        .collect();
    // ORDER BY sourceId: sources generate in sourceId order already.
    assert_eq!(got, expected);
}

/// Cross-catalog XMatch against the reference catalog — §6's external
/// catalog matching, expressed through the keep-nearest operator. Every
/// matched distance stays within the radius, every nearest choice beats
/// any other candidate, and match counts are pinned against independent
/// recomputation.
#[test]
fn xmatch_reference_catalog() {
    let patch = small_patch(600, 34);
    let refs = patch.generate_ref_catalog(34);
    let q = qserv::ClusterBuilder::new(4)
        .ref_objects(&refs)
        .build(&patch.objects, &patch.sources);
    let radius = 0.005f64;
    let (r, stats) = q.xmatch(&qserv::XMatchSpec::object_to_ref(radius)).unwrap();
    assert_eq!(r.columns, vec!["objectId", "refObjectId", "dist"]);
    assert_eq!(stats.chunks_dispatched, q.placement().chunks().len());

    // Independent expectation: nearest in-range ref per object.
    let mut expected = 0usize;
    for o in &patch.objects {
        if refs
            .iter()
            .any(|c| angular_separation_deg(o.ra_ps, o.decl_ps, c.ra, c.decl) <= radius)
        {
            expected += 1;
        }
    }
    assert_eq!(r.num_rows(), expected);
    // ~70% of objects get a counterpart within 10 arcsec of their
    // position; at 18 arcsec nearly all of those are matched.
    assert!(
        (r.num_rows() as f64) > 0.5 * patch.objects.len() as f64,
        "only {} of {} objects matched",
        r.num_rows(),
        patch.objects.len()
    );
    for row in &r.rows {
        let oid = row[0].as_i64().unwrap();
        let rid = row[1].as_i64().unwrap();
        let dist = row[2].as_f64().unwrap();
        assert!(dist <= radius, "match beyond the radius");
        let o = &patch.objects[(oid - 1) as usize];
        // No other candidate is strictly closer than the reported match.
        let closest = refs
            .iter()
            .map(|c| angular_separation_deg(o.ra_ps, o.decl_ps, c.ra, c.decl))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(dist, closest, "object {oid} not matched to its nearest");
        assert!(refs.iter().any(|c| c.ref_object_id == rid));
    }
}

/// The average Source multiplicity the paper quotes for SHV2 (k ≈ 41)
/// holds in a paper-parameterized fixture.
#[test]
fn shv2_multiplicity_constant() {
    let cfg = qserv_datagen::generate::CatalogConfig {
        objects: 500,
        mean_sources_per_object: 41.0,
        seed: 31,
        footprint: qserv_datagen::generate::pt11_footprint(),
    };
    let patch = qserv_datagen::generate::Patch::generate(&cfg);
    let q = cluster_from(&patch, 3);
    let objects = q.query("SELECT COUNT(*) FROM Object").unwrap();
    let sources = q.query("SELECT COUNT(*) FROM Source").unwrap();
    let k = sources.scalar().unwrap().as_i64().unwrap() as f64
        / objects.scalar().unwrap().as_i64().unwrap() as f64;
    assert!((35.0..=47.0).contains(&k), "k = {k}, paper says ≈41");
}
