//! Query-trace observability: a full distributed query must produce one
//! well-formed span tree covering master → fabric → worker → merge (the
//! proxy layer is covered in `crates/proxy/tests/chaos.rs`), with
//! timestamps that nest consistently, and the structure must survive
//! chaos-forced retries — property-tested over fault schedules.

mod common;

use common::small_patch;
use proptest::prelude::*;
use qserv::{ClusterBuilder, FabricOp, FaultPlan, QueryStats, Value};
use qserv_datagen::generate::Patch;
use std::sync::OnceLock;
use std::time::Duration;

fn patch() -> &'static Patch {
    static PATCH: OnceLock<Patch> = OnceLock::new();
    PATCH.get_or_init(|| small_patch(400, 70))
}

#[test]
fn traced_query_covers_every_layer() {
    let q = ClusterBuilder::new(3).build(&patch().objects, &patch().sources);
    let traced = q
        .query_traced("SELECT count(*) AS n, chunkId FROM Object GROUP BY chunkId ORDER BY chunkId")
        .expect("traced group-by");
    traced.trace.validate().expect("well-formed trace");

    let spans = traced.trace.spans();
    for name in [
        "query",
        "master.query",
        "master.analyze",
        "master.dispatch",
        "chunk",
        "attempt",
        "fabric.open",
        "fabric.write",
        "fabric.read",
        "fabric.close",
        "worker.statement",
        "merge.fold",
        "merge.finish",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "trace missing a {name} span"
        );
    }

    // The worker executes synchronously inside the write transaction, so
    // its statement spans nest under fabric.write spans.
    let name_of = |id| spans.iter().find(|s| s.id == id).map(|s| s.name.as_str());
    for s in spans.iter().filter(|s| s.name == "worker.statement") {
        let parent = s.parent.expect("worker spans are never roots");
        assert_eq!(name_of(parent), Some("fabric.write"));
    }
    // Attempts nest under their chunk; chunks under the dispatch phase.
    for s in spans.iter().filter(|s| s.name == "attempt") {
        assert_eq!(name_of(s.parent.unwrap()), Some("chunk"));
    }
    for s in spans.iter().filter(|s| s.name == "chunk") {
        assert_eq!(name_of(s.parent.unwrap()), Some("master.dispatch"));
    }
    // One chunk span per dispatched chunk, and the JSON export carries
    // the tree (children arrays) for external tooling.
    let chunks = spans.iter().filter(|s| s.name == "chunk").count();
    assert_eq!(chunks, traced.stats.chunks_dispatched);
    let json = traced.trace.to_json();
    assert!(json.starts_with('['), "export is a JSON document");
    assert!(json.contains("\"children\":["), "export nests children");

    // The stats struct is exactly a view of the metrics snapshot.
    assert_eq!(traced.stats, QueryStats::from_snapshot(&traced.metrics));
}

#[test]
fn trace_timestamps_are_monotonically_consistent() {
    let q = ClusterBuilder::new(3).build(&patch().objects, &patch().sources);
    let traced = q
        .query_traced("SELECT COUNT(*) FROM Object")
        .expect("traced count");
    let spans = traced.trace.spans();
    // Every span ends no earlier than it starts, and sits inside its
    // parent's interval — the "monotonically consistent" contract
    // validate() enforces; spelled out here against the raw records.
    for s in &spans {
        let end = s.end_ns.expect("every span ended");
        assert!(s.start_ns <= end, "span {} runs backwards", s.name);
        if let Some(pid) = s.parent {
            let p = spans.iter().find(|x| x.id == pid).unwrap();
            assert!(
                p.start_ns <= s.start_ns && end <= p.end_ns.unwrap(),
                "span {} escapes its parent {}",
                s.name,
                p.name
            );
        }
    }
    traced.trace.validate().expect("validate agrees");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever the fault schedule does — transient write failures,
    /// probabilistic read failures, injected delays — a query that
    /// completes must hand back a structurally valid trace whose chunk
    /// and retry bookkeeping matches its own stats.
    #[test]
    fn traces_stay_well_formed_under_chaos(
        seed in 1u64..65,
        write_faults in 0u64..6,
        read_p in 0.0f64..0.25,
        delay_ms in 0u64..5,
    ) {
        let q = ClusterBuilder::new(4)
            .replication(2)
            .fault_plan(FaultPlan::new(seed))
            .build(&patch().objects, &patch().sources);
        let faults = q.cluster().faults();
        faults.fail_next(None, Some(FabricOp::Write), write_faults);
        faults.fail_with_probability(None, Some(FabricOp::Read), read_p);
        if delay_ms > 0 {
            faults.delay(None, Some(FabricOp::Read), Duration::from_millis(delay_ms));
        }
        // Heavy schedules may legitimately exhaust bounded retries; the
        // error path is covered by the chaos suite, so only Ok is checked.
        if let Ok(traced) = q.query_traced("SELECT COUNT(*) FROM Object") {
            prop_assert_eq!(traced.rows.scalar(), Some(&Value::Int(400)));
            prop_assert!(traced.trace.validate().is_ok(), "invalid trace");
            let spans = traced.trace.spans();
            let chunks = spans.iter().filter(|s| s.name == "chunk").count();
            prop_assert_eq!(chunks, traced.stats.chunks_dispatched);
            // Chunks that retried show extra attempt spans, and
            // retry-marked attempts appear iff stats saw retries.
            let retry_attempts = spans
                .iter()
                .filter(|s| s.name == "attempt" && s.attr("outcome") == Some("retry"))
                .count();
            prop_assert_eq!(
                retry_attempts > 0,
                traced.stats.chunks_retried > 0,
                "trace and stats disagree about retries"
            );
        }
    }
}
