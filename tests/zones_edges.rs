//! Chunk-zone elision edge cases (the satellite checklist of PR 9):
//!
//! * **Empty chunk** — a chunk materialized only for overlap rows has an
//!   empty owned table; its zones say `valid == 0`, which excludes it
//!   under *any* restriction, and that is sound because an empty chunk
//!   contributes zero rows anyway.
//! * **All-NULL zone column** — `valid == 0` again: NULL (and NaN) rows
//!   never satisfy a comparison, so the chunk is excludable even though
//!   it has rows.
//! * **Boundary equality** — an interval endpoint exactly on a zone
//!   min/max keeps the chunk (only strict inequality excludes): the
//!   registered bounds went through `as f64` and must stay conservative.
//! * **Keep-1 fallback** — when elision removes *every* chunk, one chunk
//!   still dispatches so the merge sees real input columns: `COUNT` over
//!   nothing is `0` and `SUM` is SQL `NULL`, not a missing row.

mod common;

use common::small_patch;
use qserv::{ChunkZones, ClusterBuilder, ColumnZone, Value};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::storage::table_column_summaries;
use qserv_engine::table::Table;

#[test]
fn all_null_column_summarizes_to_zero_valid_and_excludes() {
    // A chunk with rows whose zone column is entirely NULL: min/max are
    // the empty-fold identities and valid == 0.
    let mut t = Table::new(Schema::new(vec![
        ColumnDef::new("objectId", ColumnType::Int),
        ColumnDef::new("zFlux_PS", ColumnType::Float),
    ]));
    for i in 0..4 {
        t.push_row(vec![Value::Int(i), Value::Null]).unwrap();
    }
    let summary = table_column_summaries(&t)
        .into_iter()
        .find(|s| s.name == "zFlux_PS")
        .expect("float column summarized");
    assert_eq!(summary.valid, 0);
    assert_eq!(summary.min, f64::INFINITY);
    assert_eq!(summary.max, f64::NEG_INFINITY);

    let mut zones = ChunkZones::new();
    zones.register(
        "Object",
        9,
        "zFlux_PS",
        ColumnZone {
            valid: summary.valid,
            min: summary.min,
            max: summary.max,
        },
    );
    // Any interval — even (-∞, ∞) — excludes: no NULL row can satisfy
    // a comparison. An empty chunk behaves identically (valid == 0).
    let any = vec![("zFlux_PS".to_string(), f64::NEG_INFINITY, f64::INFINITY)];
    assert!(zones.chunk_excluded("Object", 9, &any));
}

#[test]
fn empty_chunk_summary_matches_the_all_null_identities() {
    // Zero rows and all-NULL rows are the same case to the zone map:
    // valid == 0 with the empty-fold min/max identities.
    let t = Table::new(Schema::new(vec![ColumnDef::new(
        "ra_PS",
        ColumnType::Float,
    )]));
    let s = &table_column_summaries(&t)[0];
    assert_eq!(
        (s.valid, s.min, s.max),
        (0, f64::INFINITY, f64::NEG_INFINITY)
    );
    assert!(ColumnZone {
        valid: s.valid,
        min: s.min,
        max: s.max
    }
    .excluded_by(f64::NEG_INFINITY, f64::INFINITY));
}

#[test]
fn boundary_equality_keeps_the_chunk_end_to_end() {
    let patch = small_patch(400, 71);
    let q = ClusterBuilder::new(3).build(&patch.objects, &patch.sources);
    // The exact global maximum of a zone column: a restriction whose
    // lower bound *equals* some chunk's max must keep that chunk (only
    // strict inequality is trusted), so the extremal row is found.
    let max_ra = patch
        .objects
        .iter()
        .map(|o| o.ra_ps)
        .fold(f64::NEG_INFINITY, f64::max);
    let (r, stats) = q
        .query_with_stats(&format!(
            "SELECT COUNT(*) FROM Object WHERE ra_PS >= {max_ra}"
        ))
        .expect("boundary query runs");
    let n = r.scalar().and_then(|v| v.as_i64()).expect("count");
    assert!(n >= 1, "the extremal row itself must be counted");
    // The chunk holding max_ra was kept; chunks strictly below were
    // elided (this patch spans many chunks, so some must be).
    assert!(
        stats.chunks_pruned > 0,
        "interior chunks below the max should be elided"
    );
}

#[test]
fn keep_1_fallback_preserves_aggregate_semantics() {
    let patch = small_patch(400, 72);
    let q = ClusterBuilder::new(3).build(&patch.objects, &patch.sources);
    // A restriction no row satisfies, provably so per-chunk: every
    // chunk is elided and the keep-1 fallback dispatches exactly one.
    let sql = "SELECT COUNT(*), SUM(uFlux_SG) FROM Object WHERE ra_PS > 100000";
    let (r, stats) = q.query_with_stats(sql).expect("fallback query runs");
    assert_eq!(
        stats.chunks_dispatched, 1,
        "all chunks elided, one dispatched as the fallback"
    );
    assert!(stats.chunks_pruned > 0, "elision actually fired");
    assert_eq!(r.rows.len(), 1, "aggregates always yield a row");
    assert_eq!(
        r.rows[0][0].as_i64(),
        Some(0),
        "COUNT over nothing is 0, not NULL or a missing row"
    );
    assert_eq!(r.rows[0][1], Value::Null, "SUM over nothing is SQL NULL");
}
