//! Placement & membership under chaos: node loss, repair, join/drain,
//! epoch pinning, and latency-aware routing — the tentpole suite of
//! PR 9.
//!
//! The invariants proven here:
//!
//! * **Repair restores the replication factor.** After a permanent node
//!   loss, every chunk is back at factor-R on live members, the copies
//!   are real (the new workers answer queries), and results are
//!   bit-identical to the pre-loss run.
//! * **An acked replica is never lost.** Seeded fabric faults fire
//!   *during* the repair copies (failed reads, corrupted payloads); a
//!   replica is recorded in the placement map only after its payload
//!   survives digest checks and installs — proven by killing the copy
//!   *source* afterwards and querying purely from the repaired replicas.
//! * **Queries pin their epoch.** Queries running concurrently with
//!   join/rebalance either complete against the old epoch or retry
//!   cleanly against the new one; every result matches the oracle.
//! * **No `/result/*` residue** survives any of it.
//!
//! The chaos seed comes from `QSERV_PLACEMENT_SEED` (default 1) so CI
//! runs a seed matrix.

mod common;

use common::{small_patch, sorted_rows};
use qserv::{
    ClusterBuilder, FabricOp, FaultPlan, Qserv, QservError, RetryPolicy, RoutingMode, Value,
};
use qserv_datagen::generate::Patch;
use std::sync::Arc;
use std::time::Duration;

const QUERIES: [&str; 4] = [
    "SELECT COUNT(*) FROM Object",
    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 123",
    "SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId",
    "SELECT COUNT(*) FROM Source",
];

fn placement_seed() -> u64 {
    std::env::var("QSERV_PLACEMENT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn replicated(patch: &Patch, seed: u64) -> Qserv {
    ClusterBuilder::new(4)
        .replication(2)
        .fault_plan(FaultPlan::new(seed))
        .build(&patch.objects, &patch.sources)
}

fn assert_no_result_leaks(q: &Qserv, context: &str) {
    for (id, server) in q.cluster().servers().iter().enumerate() {
        let leaked = server.file_names("/result/");
        assert!(
            leaked.is_empty(),
            "{context}: server {id} leaked result files: {leaked:?}"
        );
    }
}

/// Every chunk holds `factor` replicas on live members, and each mapped
/// replica is genuinely resident on its worker (not just bookkeeping).
fn assert_replication_restored(q: &Qserv, factor: usize, context: &str) {
    let snap = q.placement();
    for chunk in snap.chunks() {
        let replicas = snap.nodes_of(chunk).expect("chunk mapped");
        assert_eq!(
            replicas.len(),
            factor,
            "{context}: chunk {chunk} at factor {} != {factor}",
            replicas.len()
        );
        for &n in replicas {
            assert!(snap.is_member(n), "{context}: replica on non-member {n}");
            assert!(
                q.workers()[n].holds_chunk(chunk),
                "{context}: node {n} mapped for chunk {chunk} but does not hold it"
            );
        }
    }
}

#[test]
fn fail_node_repairs_replication_and_results_are_identical() {
    let patch = small_patch(600, 81);
    let q = replicated(&patch, placement_seed());
    let oracle: Vec<_> = QUERIES
        .iter()
        .map(|&sql| sorted_rows(&q.query(sql).expect("pre-loss run").rows))
        .collect();
    assert_eq!(q.placement().epoch(), 0);

    let report = q.fail_node(0).expect("repair succeeds");
    assert!(report.replicas_created > 0, "loss must force repair copies");
    assert!(report.chunks_lost.is_empty(), "factor 2 survives one loss");
    assert!(report.bytes_copied > 0, "payloads moved over the fabric");
    assert!(report.epoch > 0, "membership + repairs commit epochs");
    assert_replication_restored(&q, 2, "after fail_node(0)");

    // Zero failed queries beyond transient retries: every query
    // succeeds and matches the pre-loss oracle bit-for-bit.
    for (i, &sql) in QUERIES.iter().enumerate() {
        let (r, _) = q.query_with_stats(sql).expect("post-repair run");
        assert_eq!(
            sorted_rows(&r.rows),
            oracle[i],
            "diverged after repair: {sql}"
        );
    }
    let snap = q.placement_manager().metrics_snapshot();
    assert_eq!(snap.gauge("placement.members"), 3);
    assert!(snap.counter("placement.repairs") >= report.replicas_created as u64);
    assert_no_result_leaks(&q, "fail_node repair");
}

#[test]
fn seeded_faults_during_copy_never_lose_an_acked_replica() {
    let patch = small_patch(600, 82);
    let q = replicated(&patch, placement_seed());
    let oracle: Vec<_> = QUERIES
        .iter()
        .map(|&sql| sorted_rows(&q.query(sql).expect("clean run").rows))
        .collect();

    // Chaos *during* the repair copies: transient read failures plus
    // payload corruption (caught by the copy's digest checks). Seeded,
    // so each CI matrix seed replays its own schedule.
    q.cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Read), 0.15);
    q.cluster()
        .faults()
        .corrupt_payload(None, Some(FabricOp::Read), 0.15);

    let report = q.fail_node(1).expect("repair survives chaos");
    assert!(report.chunks_lost.is_empty());
    assert_replication_restored(&q, 2, "after chaotic repair");

    // The acid test: the *sources* the repair copied from may die next.
    // Every chunk must still be answerable from the repaired replicas —
    // an acked-but-hollow replica would fail here. Quiesce the fault
    // rules first so only real placement state is under test.
    q.cluster().faults().clear();
    let survivor_victim = 2;
    q.fail_node(survivor_victim).expect("second loss repairs");
    assert!(
        q.placement().epoch() >= 2,
        "two membership changes committed"
    );
    for (i, &sql) in QUERIES.iter().enumerate() {
        let r = q.query(sql).expect("run after double loss");
        assert_eq!(
            sorted_rows(&r.rows),
            oracle[i],
            "acked replica was hollow: {sql}"
        );
    }
    assert_no_result_leaks(&q, "chaotic repair");
}

#[test]
fn fail_node_with_on_disk_chunks_ships_qchunk_files() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("qserv-itest-placement-{}", std::process::id()));
    let patch = small_patch(500, 83);
    let q = ClusterBuilder::new(3)
        .replication(2)
        .storage_dir(&dir)
        .storage_page_rows(64)
        .fault_plan(FaultPlan::new(placement_seed()))
        .build(&patch.objects, &patch.sources);
    let oracle: Vec<_> = QUERIES
        .iter()
        .map(|&sql| sorted_rows(&q.query(sql).expect("clean run").rows))
        .collect();
    let report = q.fail_node(2).expect("repair on-disk cluster");
    assert!(report.replicas_created > 0);
    assert_replication_restored(&q, 2, "on-disk repair");
    for (i, &sql) in QUERIES.iter().enumerate() {
        let r = q.query(sql).expect("post-repair run");
        assert_eq!(sorted_rows(&r.rows), oracle[i], "on-disk diverged: {sql}");
    }
    assert_no_result_leaks(&q, "on-disk repair");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repair_reports_unrecoverable_chunks_at_replication_one() {
    let patch = small_patch(500, 84);
    let q = ClusterBuilder::new(3)
        .replication(1)
        .build(&patch.objects, &patch.sources);
    let doomed = q.placement().chunks_on(0);
    assert!(!doomed.is_empty(), "node 0 held chunks");
    let report = q.fail_node(0).expect("repair runs even when lossy");
    assert_eq!(
        report.chunks_lost, doomed,
        "every factor-1 chunk on the lost node is reported unrecoverable"
    );
    assert_eq!(report.replicas_created, 0, "nothing to copy from");
    assert_eq!(
        q.placement_manager()
            .metrics_snapshot()
            .counter("placement.chunks_lost"),
        doomed.len() as u64
    );
}

#[test]
fn join_and_drain_preserve_results_and_balance() {
    let patch = small_patch(600, 85);
    let q = ClusterBuilder::new(3)
        .replication(2)
        .standby_nodes(1)
        .build(&patch.objects, &patch.sources);
    let oracle: Vec<_> = QUERIES
        .iter()
        .map(|&sql| sorted_rows(&q.query(sql).expect("baseline").rows))
        .collect();
    assert_eq!(q.placement().members(), vec![0, 1, 2]);
    assert!(q.workers()[3].table_names().is_empty(), "standby is empty");

    // Join: the standby becomes a member and rebalancing moves replicas
    // onto it until loads differ by at most one.
    let report = q.join_node(3).expect("standby joins");
    assert!(report.chunks_moved > 0, "rebalance shipped replicas");
    let load = q.placement().load();
    let (hi, lo) = (
        load.values().max().copied().unwrap(),
        load.values().min().copied().unwrap(),
    );
    assert!(hi <= lo + 1, "balanced after join: {load:?}");
    assert!(q.workers()[3].holds_chunk(q.placement().chunks_on(3)[0]));
    assert_replication_restored(&q, 2, "after join");
    for (i, &sql) in QUERIES.iter().enumerate() {
        let r = q.query(sql).expect("post-join run");
        assert_eq!(
            sorted_rows(&r.rows),
            oracle[i],
            "diverged after join: {sql}"
        );
    }

    // Drain it back out: copy-then-detach, so the factor never dips.
    let report = q.leave_node(3).expect("drain succeeds");
    assert!(report.chunks_moved > 0, "drain shipped replicas off");
    assert!(!q.placement().is_member(3));
    assert!(q.placement().chunks_on(3).is_empty());
    assert_replication_restored(&q, 2, "after drain");
    for (i, &sql) in QUERIES.iter().enumerate() {
        let r = q.query(sql).expect("post-drain run");
        assert_eq!(
            sorted_rows(&r.rows),
            oracle[i],
            "diverged after drain: {sql}"
        );
    }
    assert_no_result_leaks(&q, "join/drain");
}

#[test]
fn in_flight_queries_pin_their_epoch_or_retry_cleanly() {
    let patch = small_patch(700, 86);
    let mut q = ClusterBuilder::new(3)
        .replication(2)
        .standby_nodes(1)
        .retry(RetryPolicy {
            max_attempts: 8,
            backoff_base: Duration::from_micros(100),
            deadline: None,
        })
        .build(&patch.objects, &patch.sources);
    // Serial dispatch widens the window in which a rebalance can land
    // mid-query.
    q.dispatch_width = 2;
    let q = Arc::new(q);
    let expected = q.query(QUERIES[0]).expect("oracle").scalar().cloned();
    let stop = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|t| {
                let q = Arc::clone(&q);
                let expected = expected.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut runs = 0u32;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let r = q
                            .query(QUERIES[0])
                            .unwrap_or_else(|e| panic!("thread {t}: query failed mid-epoch: {e}"));
                        assert_eq!(r.scalar().cloned(), expected);
                        runs += 1;
                    }
                    runs
                })
            })
            .collect();
        // Membership churn while the query threads hammer: join the
        // standby (rebalance), then drain it back out, twice.
        for _ in 0..2 {
            q.join_node(3).expect("join during traffic");
            q.leave_node(3).expect("drain during traffic");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u32 = workers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "query threads actually ran");
    });
    assert!(
        q.placement().epoch() >= 4,
        "membership churn committed epochs"
    );
    assert_no_result_leaks(&q, "epoch pinning");
}

#[test]
fn latency_aware_routing_steers_off_the_hot_node_with_identical_results() {
    let patch = small_patch(600, 87);
    let q = replicated(&patch, placement_seed());
    let oracle = sorted_rows(&q.query(QUERIES[2]).expect("baseline").rows);

    // Node 0 runs hot (a delay on every read it serves); the EWMA loop
    // must learn that and prefer its peers.
    q.cluster()
        .faults()
        .delay(Some(0), Some(FabricOp::Read), Duration::from_millis(3));
    q.placement_manager().set_routing(RoutingMode::LatencyAware);
    for _ in 0..6 {
        let r = q.query(QUERIES[2]).expect("routed run");
        assert_eq!(sorted_rows(&r.rows), oracle, "routing changed results");
    }
    let heat = q.placement_manager().node_heat();
    let hot = heat.get(&0).copied().unwrap_or(0.0);
    assert!(
        heat.iter().filter(|(&n, _)| n != 0).any(|(_, &h)| h < hot),
        "node 0 must run hotter than some peer: {heat:?}"
    );
    assert!(
        q.placement_manager()
            .metrics_snapshot()
            .counter("placement.hot_reroutes")
            > 0,
        "hot-chunk rerouting must have fired"
    );
    assert_no_result_leaks(&q, "latency-aware routing");
}

#[test]
fn membership_errors_are_loud_not_silent() {
    let patch = small_patch(300, 88);
    let q = ClusterBuilder::new(2)
        .replication(2)
        .build(&patch.objects, &patch.sources);
    // Joining a node outside the fleet, joining a member, failing a
    // non-member: all refuse with a fabric error naming the node.
    assert!(matches!(q.join_node(9), Err(QservError::Fabric(m)) if m.contains('9')));
    assert!(matches!(q.join_node(1), Err(QservError::Fabric(m)) if m.contains('1')));
    assert!(matches!(q.fail_node(7), Err(QservError::Fabric(m)) if m.contains('7')));
    // Draining half of a fully-replicated 2-node cluster caps the
    // factor rather than inventing copies: chunks stay available.
    q.leave_node(1).expect("drain to a single node");
    let r = q.query(QUERIES[0]).expect("single-node run");
    assert_eq!(r.scalar(), Some(&Value::Int(patch.objects.len() as i64)));
}
