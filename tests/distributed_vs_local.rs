//! Distributed-vs-local equivalence: every supported query class must
//! return exactly the rows a single monolithic engine returns over the
//! same data. This is the strongest end-to-end property the system has —
//! partitioning, overlap, dispatch, transfer and two-phase aggregation
//! must all be invisible to the user.

mod common;

use common::{approx_eq, cluster_from, monolithic_db, small_patch, sorted_rows};
use qserv_engine::exec::execute;
use qserv_sqlparse::parse_select;

/// Runs `sql` both ways and compares (order-insensitively unless the
/// query orders, approximately for float aggregates).
fn check(sql: &str, objects: usize, seed: u64) {
    let patch = small_patch(objects, seed);
    let q = cluster_from(&patch, 4);
    let distributed = q
        .query(sql)
        .unwrap_or_else(|e| panic!("distributed {sql}: {e}"));

    let db = monolithic_db(&patch);
    let stmt = parse_select(sql).unwrap();
    let local = execute(&db, &stmt).unwrap_or_else(|e| panic!("local {sql}: {e}"));

    assert_eq!(
        distributed.columns.len(),
        local.columns.len(),
        "column arity differs for {sql}"
    );
    assert_eq!(
        distributed.num_rows(),
        local.num_rows(),
        "row count differs for {sql}: distributed {} vs local {}",
        distributed.num_rows(),
        local.num_rows()
    );
    let ordered = sql.to_ascii_uppercase().contains("ORDER BY");
    let (d_rows, l_rows) = if ordered {
        (distributed.rows.clone(), local.rows.clone())
    } else {
        (sorted_rows(&distributed.rows), sorted_rows(&local.rows))
    };
    for (i, (d, l)) in d_rows.iter().zip(&l_rows).enumerate() {
        for (j, (dv, lv)) in d.iter().zip(l).enumerate() {
            assert!(
                approx_eq(dv, lv, 1e-9),
                "{sql}: row {i} col {j} differs: {dv:?} vs {lv:?}"
            );
        }
    }
}

#[test]
fn point_select() {
    check(
        "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 17",
        300,
        41,
    );
}

#[test]
fn full_scan_projection() {
    check("SELECT objectId, ra_PS FROM Object", 400, 42);
}

#[test]
fn filter_with_udf() {
    check(
        "SELECT objectId FROM Object WHERE fluxToAbMag(zFlux_PS) BETWEEN 20 AND 24",
        500,
        43,
    );
}

#[test]
fn arithmetic_filter() {
    check(
        "SELECT objectId, uFlux_PS - gFlux_PS FROM Object WHERE ra_PS / 2 > 100",
        300,
        44,
    );
}

#[test]
fn global_aggregates() {
    check(
        "SELECT COUNT(*), SUM(uFlux_SG), AVG(ra_PS), MIN(decl_PS), MAX(decl_PS) FROM Object",
        600,
        45,
    );
}

#[test]
fn aggregate_expression() {
    check("SELECT SUM(uFlux_SG) / COUNT(*) FROM Object", 400, 46);
}

#[test]
fn group_by_with_aggregates() {
    check(
        "SELECT chunkId, COUNT(*), AVG(ra_PS) FROM Object GROUP BY chunkId ORDER BY chunkId",
        800,
        47,
    );
}

#[test]
fn group_by_unprojected_key() {
    check("SELECT COUNT(*) FROM Object GROUP BY chunkId", 500, 48);
}

#[test]
fn order_by_limit() {
    check(
        "SELECT objectId, decl_PS FROM Object ORDER BY decl_PS, objectId LIMIT 11",
        300,
        49,
    );
}

#[test]
fn count_with_in_list() {
    check(
        "SELECT objectId FROM Object WHERE objectId IN (3, 5, 250, 9999) ORDER BY objectId",
        300,
        50,
    );
}

#[test]
fn source_scan_and_aggregate() {
    check("SELECT COUNT(*), AVG(psfFlux) FROM Source", 250, 51);
    check(
        "SELECT taiMidPoint, psfFlux FROM Source WHERE objectId = 9 ORDER BY taiMidPoint",
        250,
        52,
    );
}

#[test]
fn equi_join_object_source() {
    check(
        "SELECT o.objectId, s.sourceId FROM Object o, Source s \
         WHERE o.objectId = s.objectId AND s.psfFlux > 1000 \
         ORDER BY s.sourceId",
        200,
        53,
    );
}

#[test]
fn near_neighbor_self_join_count() {
    check(
        "SELECT count(*) FROM Object o1, Object o2 \
         WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.06 \
         AND o1.objectId != o2.objectId",
        600,
        54,
    );
}

#[test]
fn near_neighbor_projected_pairs() {
    check(
        "SELECT o1.objectId, o2.objectId FROM Object o1, Object o2 \
         WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.05 \
         AND o1.objectId != o2.objectId \
         ORDER BY o1.objectId, o2.objectId",
        500,
        55,
    );
}

#[test]
fn is_null_and_not() {
    check(
        "SELECT COUNT(*) FROM Object WHERE zFlux_PS IS NOT NULL AND NOT objectId = 1",
        200,
        56,
    );
}
