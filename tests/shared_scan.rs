//! Shared scanning (§4.3): the convoy scheduler must return exactly what
//! independent execution returns, while visiting each chunk once.

mod common;

use common::{cluster_from, small_patch};
use qserv::sharedscan::SharedScanner;

#[test]
fn convoy_matches_independent_execution() {
    let patch = small_patch(600, 71);
    let q = cluster_from(&patch, 4);
    let queries = [
        "SELECT COUNT(*) FROM Object",
        "SELECT objectId FROM Object WHERE fluxToAbMag(zFlux_PS) < 22",
        "SELECT count(*) AS n, chunkId FROM Object GROUP BY chunkId",
        "SELECT AVG(ra_PS) FROM Object",
    ];
    let report = SharedScanner::new(&q).run(&queries).expect("convoy runs");
    assert_eq!(report.results.len(), queries.len());
    for (sql, shared) in queries.iter().zip(&report.results) {
        let solo = q.query(sql).expect("solo runs");
        assert_eq!(&solo, shared, "convoy result differs for {sql}");
    }
}

#[test]
fn convoy_shares_chunk_passes() {
    let patch = small_patch(500, 72);
    let q = cluster_from(&patch, 3);
    let queries = [
        "SELECT COUNT(*) FROM Object",
        "SELECT SUM(uFlux_SG) FROM Object",
        "SELECT MAX(ra_PS) FROM Object",
    ];
    let report = SharedScanner::new(&q).run(&queries).expect("convoy runs");
    // Three full-sky queries over the same chunk set: the convoy walks the
    // union once; naive execution would walk it three times.
    assert_eq!(report.naive_passes, 3 * report.chunk_passes);
    assert_eq!(report.chunk_passes, q.placement().chunks().len());
}

#[test]
fn convoy_with_disjoint_chunk_sets() {
    let patch = small_patch(800, 73);
    let q = cluster_from(&patch, 4);
    // Two spatially-restricted queries over different corners plus a
    // full-sky one: the union is just the full sky.
    let queries = [
        "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(0.5, 0.5, 3.0, 5.0)",
        "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(358.2, -6.0, 359.5, -0.5)",
        "SELECT COUNT(*) FROM Object",
    ];
    let report = SharedScanner::new(&q).run(&queries).expect("convoy runs");
    assert_eq!(report.chunk_passes, q.placement().chunks().len());
    assert!(report.naive_passes > report.chunk_passes);
    for (sql, shared) in queries.iter().zip(&report.results) {
        assert_eq!(&q.query(sql).expect("solo"), shared, "{sql}");
    }
}

#[test]
fn convoy_of_one_equals_plain_query() {
    let patch = small_patch(200, 74);
    let q = cluster_from(&patch, 2);
    let report = SharedScanner::new(&q)
        .run(&["SELECT COUNT(*) FROM Source"])
        .expect("runs");
    assert_eq!(report.naive_passes, report.chunk_passes);
    assert_eq!(
        report.results[0],
        q.query("SELECT COUNT(*) FROM Source").expect("solo")
    );
}

#[test]
fn convoy_rejects_tableless_queries() {
    let patch = small_patch(50, 75);
    let q = cluster_from(&patch, 1);
    assert!(SharedScanner::new(&q).run(&["SELECT 1"]).is_err());
}
