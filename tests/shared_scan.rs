//! Shared scanning (§4.3): the convoy scheduler must return exactly what
//! independent execution returns, while visiting each chunk once.

mod common;

use common::{cluster_from, small_patch};
use qserv::sharedscan::SharedScanner;

#[test]
fn convoy_matches_independent_execution() {
    let patch = small_patch(600, 71);
    let q = cluster_from(&patch, 4);
    let queries = [
        "SELECT COUNT(*) FROM Object",
        "SELECT objectId FROM Object WHERE fluxToAbMag(zFlux_PS) < 22",
        "SELECT count(*) AS n, chunkId FROM Object GROUP BY chunkId",
        "SELECT AVG(ra_PS) FROM Object",
    ];
    let report = SharedScanner::new(&q).run(&queries).expect("convoy runs");
    assert_eq!(report.results.len(), queries.len());
    for (sql, shared) in queries.iter().zip(&report.results) {
        let solo = q.query(sql).expect("solo runs");
        assert_eq!(&solo, shared, "convoy result differs for {sql}");
    }
}

#[test]
fn convoy_shares_chunk_passes() {
    let patch = small_patch(500, 72);
    let q = cluster_from(&patch, 3);
    let queries = [
        "SELECT COUNT(*) FROM Object",
        "SELECT SUM(uFlux_SG) FROM Object",
        "SELECT MAX(ra_PS) FROM Object",
    ];
    let report = SharedScanner::new(&q).run(&queries).expect("convoy runs");
    // Three full-sky queries over the same chunk set: the convoy walks the
    // union once; naive execution would walk it three times.
    assert_eq!(report.naive_passes, 3 * report.chunk_passes);
    assert_eq!(report.chunk_passes, q.placement().chunks().len());
}

#[test]
fn convoy_with_disjoint_chunk_sets() {
    let patch = small_patch(800, 73);
    let q = cluster_from(&patch, 4);
    // Two spatially-restricted queries over different corners plus a
    // full-sky one: the union is just the full sky.
    let queries = [
        "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(0.5, 0.5, 3.0, 5.0)",
        "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(358.2, -6.0, 359.5, -0.5)",
        "SELECT COUNT(*) FROM Object",
    ];
    let report = SharedScanner::new(&q).run(&queries).expect("convoy runs");
    assert_eq!(report.chunk_passes, q.placement().chunks().len());
    assert!(report.naive_passes > report.chunk_passes);
    for (sql, shared) in queries.iter().zip(&report.results) {
        assert_eq!(&q.query(sql).expect("solo"), shared, "{sql}");
    }
}

#[test]
fn convoy_of_one_equals_plain_query() {
    let patch = small_patch(200, 74);
    let q = cluster_from(&patch, 2);
    let report = SharedScanner::new(&q)
        .run(&["SELECT COUNT(*) FROM Source"])
        .expect("runs");
    assert_eq!(report.naive_passes, report.chunk_passes);
    assert_eq!(
        report.results[0],
        q.query("SELECT COUNT(*) FROM Source").expect("solo")
    );
}

#[test]
fn adaptive_convoy_detaches_interactive_members() {
    // A wide footprint so the chunk set exceeds the interactive
    // threshold and full-sky scans classify as scan-class.
    let patch = qserv_datagen::generate::Patch::generate(&qserv_datagen::generate::CatalogConfig {
        objects: 800,
        mean_sources_per_object: 2.0,
        seed: 76,
        footprint: qserv_sphgeom::SphericalBox::from_degrees(0.0, -40.0, 120.0, 40.0),
    });
    let q = cluster_from(&patch, 4);
    let total_chunks = q.placement().chunks().len();
    assert!(
        total_chunks > 8,
        "fixture must exceed the interactive threshold, got {total_chunks}"
    );
    let queries = [
        "SELECT COUNT(*) FROM Object",
        "SELECT ra_PS, decl_PS FROM Object WHERE objectId = 42",
        "SELECT AVG(ra_PS) FROM Object",
    ];
    let report = SharedScanner::new(&q)
        .run_adaptive(&queries)
        .expect("adaptive convoy runs");
    // The two full-sky scans attach; the objectId probe plans as an
    // index lookup and runs independently.
    assert_eq!(report.attached, 2);
    assert_eq!(report.detached, 1);
    assert_eq!(report.chunk_passes, total_chunks);
    assert_eq!(report.naive_passes, 2 * total_chunks);
    // Attachment is scheduling only: results match independent runs.
    for (sql, shared) in queries.iter().zip(&report.results) {
        assert_eq!(&q.query(sql).expect("solo"), shared, "{sql}");
    }
}

#[test]
fn adaptive_convoy_of_detached_only_skips_the_pass() {
    let patch = small_patch(300, 77);
    let q = cluster_from(&patch, 2);
    let report = SharedScanner::new(&q)
        .run_adaptive(&["SELECT objectId FROM Object WHERE objectId = 7"])
        .expect("runs");
    assert_eq!(report.attached, 0);
    assert_eq!(report.detached, 1);
    assert_eq!(report.chunk_passes, 0);
    assert_eq!(
        report.results[0],
        q.query("SELECT objectId FROM Object WHERE objectId = 7")
            .expect("solo")
    );
}

#[test]
fn convoy_rejects_tableless_queries() {
    let patch = small_patch(50, 75);
    let q = cluster_from(&patch, 1);
    assert!(SharedScanner::new(&q).run(&["SELECT 1"]).is_err());
}
