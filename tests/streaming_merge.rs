//! Streaming result pipeline tests.
//!
//! Two layers:
//!
//! * property tests pinning the incremental [`Merger`] to the
//!   collect-then-merge oracle (`merge_tables` + merge-statement
//!   execution) over randomized chunk-result shapes — mixed Int/Float
//!   column types per part (widening + group re-keying), NULL group
//!   keys, empty parts, shuffled arrival order;
//! * cluster tests: streaming and barrier modes return identical
//!   results end-to-end, and a pushed-down `LIMIT` cancels the chunk
//!   queue early so strictly fewer chunks are dispatched.

mod common;

use common::{cluster_from, small_patch};
use proptest::prelude::*;
use qserv::analysis::analyze;
use qserv::rewrite::{build_plan, PhysicalPlan};
use qserv::{merge_oracle, CatalogMeta, MergeShape, Merger};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_sqlparse::parse_select;

fn plan_for(sql: &str) -> PhysicalPlan {
    let meta = CatalogMeta::lsst();
    let a = analyze(&parse_select(sql).expect("parses"), &meta).expect("analyzes");
    build_plan(&a, &meta).expect("plans")
}

/// splitmix64 — deterministic value generation inside a property case.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// What a generated column holds; `key` uses a tiny value range so that
/// groups collide across parts.
#[derive(Clone, Copy)]
enum Kind {
    Key,
    Num,
}

/// Generates one chunk-result part: each column independently picks Int
/// or Float typing (exercising the merge-time widening vote and Fold's
/// group re-keying), with NULLs sprinkled in.
fn gen_part(rng: &mut Rng, cols: &[(&str, Kind)], rows: usize, force_int: bool) -> Table {
    let tys: Vec<ColumnType> = cols
        .iter()
        .map(|_| {
            if force_int || rng.below(2) == 0 {
                ColumnType::Int
            } else {
                ColumnType::Float
            }
        })
        .collect();
    let schema = Schema::new(
        cols.iter()
            .zip(&tys)
            .map(|((n, _), t)| ColumnDef::new(n, *t))
            .collect(),
    );
    let mut t = Table::new(schema);
    for _ in 0..rows {
        let row: Vec<Value> = cols
            .iter()
            .zip(&tys)
            .map(|((_, kind), ty)| {
                if rng.below(8) == 0 {
                    return Value::Null;
                }
                let v = match kind {
                    Kind::Key => rng.below(4) as i64,
                    Kind::Num => rng.below(200) as i64 - 100,
                };
                match ty {
                    ColumnType::Int => Value::Int(v),
                    ColumnType::Float => Value::Float(v as f64 * 0.5),
                    ColumnType::Str => unreachable!("numeric columns only"),
                }
            })
            .collect();
        t.push_row(row).expect("row matches generated schema");
    }
    t
}

/// Streams `parts` through a fresh [`Merger`] in a seeded shuffle of the
/// arrival order (sequence numbers still identify chunk order) and
/// checks the result against the barrier oracle over the same parts.
fn assert_streaming_matches_oracle(plan: &PhysicalPlan, parts: Vec<Table>, rng: &mut Rng) {
    let oracle = merge_oracle(&plan.merge_stmt, parts.clone());
    let mut order: Vec<usize> = (0..parts.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mut parts: Vec<Option<Table>> = parts.into_iter().map(Some).collect();
    let mut merger = Merger::new(plan);
    let mut stream_err = None;
    for seq in order {
        let part = parts[seq].take().expect("each seq folds once");
        if let Err(e) = merger.fold(seq, part) {
            stream_err = Some(e);
            break;
        }
    }
    match (oracle, stream_err) {
        (Ok((expect, _)), None) => {
            let got = merger.finish().expect("streaming finish");
            assert_eq!(got, expect, "streaming diverged from oracle");
        }
        (Err(expect), Some(got)) => assert_eq!(expect.to_string(), got.to_string()),
        (Err(expect), None) => {
            let got = merger
                .finish()
                .expect_err("oracle errored; streaming must too");
            assert_eq!(expect.to_string(), got.to_string());
        }
        (Ok(_), Some(got)) => panic!("streaming errored where oracle succeeded: {got}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GROUP BY fold: running per-group accumulators, NULL keys,
    /// Int→Float key flips mid-stream.
    #[test]
    fn fold_group_by_matches_oracle(seed in 0u64..u64::MAX / 2, nparts in 1usize..7) {
        let plan = plan_for(
            "SELECT chunkId, COUNT(*), SUM(ra_PS), AVG(decl_PS), \
             MIN(ra_PS), MAX(ra_PS) FROM Object GROUP BY chunkId",
        );
        prop_assert!(matches!(plan.shape, MergeShape::Fold { .. }));
        let cols: Vec<(&str, Kind)> = vec![
            ("chunkId", Kind::Key),
            ("COUNT(*)", Kind::Num),
            ("SUM(ra_PS)", Kind::Num),
            ("SUM(decl_PS)", Kind::Num),
            ("COUNT(decl_PS)", Kind::Num),
            ("MIN(ra_PS)", Kind::Num),
            ("MAX(ra_PS)", Kind::Num),
        ];
        let mut rng = Rng(seed);
        let parts = (0..nparts)
            .map(|_| {
                let rows = rng.below(5) as usize;
                gen_part(&mut rng, &cols, rows, false)
            })
            .collect();
        assert_streaming_matches_oracle(&plan, parts, &mut rng);
    }

    /// Global aggregation (no GROUP BY) folds to a single row.
    #[test]
    fn fold_global_agg_matches_oracle(seed in 0u64..u64::MAX / 2, nparts in 1usize..7) {
        let plan = plan_for(
            "SELECT COUNT(*), SUM(ra_PS), AVG(ra_PS), MIN(decl_PS), MAX(decl_PS) FROM Object",
        );
        prop_assert!(matches!(plan.shape, MergeShape::Fold { .. }));
        let cols: Vec<(&str, Kind)> = vec![
            ("COUNT(*)", Kind::Num),
            ("SUM(ra_PS)", Kind::Num),
            ("COUNT(ra_PS)", Kind::Num),
            ("MIN(decl_PS)", Kind::Num),
            ("MAX(decl_PS)", Kind::Num),
        ];
        let mut rng = Rng(seed);
        let parts = (0..nparts)
            .map(|_| {
                let rows = rng.below(4) as usize;
                gen_part(&mut rng, &cols, rows, false)
            })
            .collect();
        assert_streaming_matches_oracle(&plan, parts, &mut rng);
    }

    /// Plain append (no aggregation, no ORDER BY, no LIMIT).
    #[test]
    fn append_matches_oracle(seed in 0u64..u64::MAX / 2, nparts in 1usize..7) {
        let plan = plan_for("SELECT objectId, ra_PS FROM Object");
        prop_assert_eq!(&plan.shape, &MergeShape::Append { cutoff: None });
        let cols: Vec<(&str, Kind)> = vec![("objectId", Kind::Num), ("ra_PS", Kind::Num)];
        let mut rng = Rng(seed);
        let parts = (0..nparts)
            .map(|_| {
                let rows = rng.below(5) as usize;
                gen_part(&mut rng, &cols, rows, false)
            })
            .collect();
        assert_streaming_matches_oracle(&plan, parts, &mut rng);
    }

    /// Append with a pushed-down LIMIT: the merger may stop early, so
    /// parts are kept type-stable (the real pipeline's worker results
    /// are type-stable by construction; see the concession note in
    /// `merge.rs`).
    #[test]
    fn append_limit_cutoff_matches_oracle(seed in 0u64..u64::MAX / 2, nparts in 1usize..7) {
        let plan = plan_for("SELECT objectId FROM Object LIMIT 6");
        prop_assert_eq!(&plan.shape, &MergeShape::Append { cutoff: Some(6) });
        let cols: Vec<(&str, Kind)> = vec![("objectId", Kind::Num)];
        let mut rng = Rng(seed);
        let parts = (0..nparts)
            .map(|_| {
                let rows = rng.below(5) as usize;
                gen_part(&mut rng, &cols, rows, true)
            })
            .collect();
        assert_streaming_matches_oracle(&plan, parts, &mut rng);
    }

    /// ORDER BY … LIMIT keeps a bounded top-n candidate set whose final
    /// contents (including tie-breaking by arrival order) must match the
    /// oracle's stable sort over the full concatenation.
    #[test]
    fn topn_matches_oracle(seed in 0u64..u64::MAX / 2, nparts in 1usize..7) {
        let plan = plan_for(
            "SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC, objectId LIMIT 4",
        );
        prop_assert_eq!(&plan.shape, &MergeShape::TopN { n: 4 });
        let cols: Vec<(&str, Kind)> = vec![("objectId", Kind::Key), ("ra_PS", Kind::Key)];
        let mut rng = Rng(seed);
        let parts = (0..nparts)
            .map(|_| {
                let rows = rng.below(6) as usize;
                gen_part(&mut rng, &cols, rows, false)
            })
            .collect();
        assert_streaming_matches_oracle(&plan, parts, &mut rng);
    }
}

/// Streaming and barrier modes agree end-to-end on a live cluster.
#[test]
fn streaming_and_barrier_agree_on_cluster() {
    let patch = small_patch(500, 91);
    let mut q = cluster_from(&patch, 3);
    for sql in [
        "SELECT COUNT(*) FROM Object",
        "SELECT chunkId, COUNT(*), AVG(ra_PS) FROM Object GROUP BY chunkId",
        "SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC LIMIT 7",
        "SELECT objectId FROM Object WHERE decl_PS < 0.0",
        "SELECT MIN(ra_PS), MAX(ra_PS), SUM(uFlux_SG) FROM Object",
    ] {
        q.streaming_merge = true;
        let streamed = q.query(sql).expect("streaming query");
        q.streaming_merge = false;
        let barrier = q.query(sql).expect("barrier query");
        assert_eq!(streamed, barrier, "modes disagree for {sql}");
    }
    q.streaming_merge = true;
}

/// A pushed-down LIMIT with no ORDER BY cancels the chunk queue: the
/// master dispatches strictly fewer chunks than the query's chunk set,
/// and accounts for the rest in `chunks_skipped_by_limit`.
#[test]
fn limit_cutoff_dispatches_fewer_chunks() {
    let patch = small_patch(600, 42);
    let mut q = cluster_from(&patch, 4);
    // Serialize dispatch so the cutoff fires before the queue drains.
    q.dispatch_width = 1;
    let sql = "SELECT objectId FROM Object LIMIT 2";
    let chunk_set = q.explain(sql).expect("explain").chunks.len();
    assert!(chunk_set > 1, "need a multi-chunk query for a cutoff test");
    let (result, stats) = q.query_with_stats(sql).expect("limited query");
    assert_eq!(result.rows.len(), 2);
    assert!(
        stats.chunks_dispatched < chunk_set,
        "LIMIT cutoff did not cancel the queue: dispatched {} of {chunk_set}",
        stats.chunks_dispatched
    );
    assert!(stats.chunks_skipped_by_limit >= 1);
    assert_eq!(
        stats.chunks_dispatched + stats.chunks_skipped_by_limit,
        chunk_set
    );
}

/// The cutoff also fires inside a shared-scan convoy: a satisfied member
/// stops receiving dispatches while other members keep scanning.
#[test]
fn convoy_member_limit_cutoff() {
    let patch = small_patch(600, 42);
    let q = cluster_from(&patch, 4);
    let scanner = qserv::sharedscan::SharedScanner::new(&q);
    let report = scanner
        .run(&[
            "SELECT objectId FROM Object LIMIT 1",
            "SELECT COUNT(*) FROM Object",
        ])
        .expect("convoy");
    assert_eq!(report.results[0].rows.len(), 1);
    let limited = &report.stats[0];
    let full = &report.stats[1];
    assert!(
        limited.chunks_skipped_by_limit >= 1,
        "member cutoff never fired"
    );
    assert_eq!(
        limited.chunks_dispatched + limited.chunks_skipped_by_limit,
        full.chunks_dispatched,
        "every chunk is either dispatched or skipped for the limited member"
    );
    // The convoy still visits every chunk for the unconstrained member.
    assert_eq!(report.chunk_passes, q.placement().chunks().len());
}
