//! The planner's user-facing surfaces: golden EXPLAIN snapshots for the
//! paper's query shapes, estimator accuracy bounds (q-error), the
//! planner fields exported through metrics and trace JSON, and the
//! result-cache regression that keeps `EXPLAIN <sql>` and `<sql>`
//! under disjoint cache keys.
//!
//! Golden fixtures live in `tests/golden_plans/*.txt`. To regenerate
//! after an intentional planner change:
//! `UPDATE_GOLDENS=1 cargo test --test planner_explain golden`.

mod common;

use common::{cluster_from, small_patch};
use qserv::service::{QueryService, ServiceConfig};
use qserv::{CacheOutcome, Qserv};
use std::path::Path;
use std::sync::{Arc, OnceLock};

fn fixture() -> &'static Qserv {
    static FIX: OnceLock<Qserv> = OnceLock::new();
    FIX.get_or_init(|| {
        let patch = small_patch(600, 4242);
        cluster_from(&patch, 4)
    })
}

/// Renders an EXPLAIN table as stable `item = value` lines.
fn render_explain(q: &Qserv, sql: &str) -> String {
    let table = q.explain_table(sql).expect("explain");
    assert_eq!(table.columns, vec!["item", "value"]);
    let mut out = String::new();
    for row in &table.rows {
        let (qserv::Value::Str(k), qserv::Value::Str(v)) = (&row[0], &row[1]) else {
            panic!("EXPLAIN cells are strings: {row:?}");
        };
        out.push_str(k);
        out.push_str(" = ");
        out.push_str(v);
        out.push('\n');
    }
    out
}

/// Compares against (or, under `UPDATE_GOLDENS=1`, rewrites) the
/// committed snapshot.
fn assert_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden_plans")
        .join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDENS=1"));
    assert_eq!(
        rendered, expected,
        "EXPLAIN drifted from golden {name}; if intentional, regenerate with UPDATE_GOLDENS=1"
    );
}

#[test]
fn golden_objectid_lookup() {
    assert_golden(
        "objectid_lookup",
        &render_explain(
            fixture(),
            "SELECT ra_PS, decl_PS FROM Object WHERE objectId = 42",
        ),
    );
}

#[test]
fn golden_region_scan() {
    assert_golden(
        "region_scan",
        &render_explain(
            fixture(),
            "SELECT objectId, ra_PS, decl_PS FROM Object \
             WHERE qserv_areaspec_box(359.0, -1.2, 2.5, 1.2) AND fluxToAbMag(zFlux_PS) < 24",
        ),
    );
}

#[test]
fn golden_near_neighbor() {
    assert_golden(
        "near_neighbor",
        &render_explain(
            fixture(),
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.05 \
             AND o1.objectId != o2.objectId",
        ),
    );
}

#[test]
fn golden_topn() {
    assert_golden(
        "topn",
        &render_explain(
            fixture(),
            "SELECT objectId, ra_PS FROM Object ORDER BY objectId DESC LIMIT 10",
        ),
    );
}

/// Estimator accuracy on a datagen workload: every estimate within a
/// bounded q-error of the actual row count, and the estimate/actual
/// pair exported through the stats view.
#[test]
fn estimator_qerror_is_bounded() {
    let q = fixture();
    let workload = [
        "SELECT objectId FROM Object WHERE objectId = 101",
        "SELECT objectId FROM Object WHERE objectId IN (5, 105, 205, 305)",
        "SELECT objectId FROM Object WHERE decl_PS < 0.0",
        "SELECT objectId FROM Object WHERE decl_PS < 0.0 AND ra_PS > 1.0",
        "SELECT objectId, ra_PS FROM Object ORDER BY objectId LIMIT 20",
        "SELECT COUNT(*) FROM Object",
    ];
    for sql in workload {
        let (_, stats) = q.query_with_stats(sql).expect("runs");
        let qerr = stats.planner_qerror_pct as f64 / 100.0;
        assert!(
            (1.0..=16.0).contains(&qerr),
            "q-error {qerr} out of bounds for {sql} (est {})",
            stats.planner_est_rows
        );
    }
}

/// The planner's choice and its estimate-vs-actual error ride the span
/// tree: `master.analyze` records the access path and estimate, the
/// query root records the q-error — all visible in the exported JSON.
#[test]
fn trace_json_carries_planner_annotations() {
    let q = fixture();
    let traced = q
        .query_traced("SELECT ra_PS FROM Object WHERE objectId = 57")
        .expect("traced run");
    let json = traced.trace.to_json();
    for key in [
        "planner.access",
        "planner.est_rows",
        "planner.actual_rows",
        "planner.qerror",
    ] {
        assert!(json.contains(key), "trace JSON missing {key}: {json}");
    }
    assert!(json.contains("IndexLookup"), "{json}");
    // The stats view exposes the same numbers for metrics consumers
    // (q-error is floored at 1.0, surfaced as percent).
    assert!(traced.stats.planner_qerror_pct >= 100);
}

/// Regression: `EXPLAIN <sql>` and `<sql>` must occupy disjoint cache
/// entries — in both directions.
#[test]
fn explain_never_shares_a_cache_entry_with_its_query() {
    let patch = small_patch(300, 909);
    let qserv = Arc::new(cluster_from(&patch, 2));
    let service = QueryService::start(
        qserv,
        ServiceConfig {
            cache_capacity_bytes: 1 << 20,
            ..ServiceConfig::default()
        },
    );
    let sql = "SELECT objectId, ra_PS FROM Object WHERE objectId = 11";

    // Direction 1: EXPLAIN populates its own entry only. The query
    // submitted afterwards must MISS (and return rows, not a plan).
    let plan = service.explain(sql).expect("explain");
    assert_eq!(service.result_cache_len(), 1);
    let outcome = service.submit_streaming(sql).expect("admitted").collect();
    assert_eq!(
        outcome.cache,
        CacheOutcome::Miss,
        "EXPLAIN must not seed the query's entry"
    );
    let (rows, _) = outcome.result.expect("query runs");
    assert_eq!(rows.columns, vec!["objectId", "ra_PS"]);
    assert_ne!(rows.columns, plan.columns);
    assert_eq!(service.result_cache_len(), 2);

    // Direction 2: with the query's result now cached, EXPLAIN must
    // keep answering with the plan, and a resubmit still hits.
    let plan2 = service.explain(sql).expect("explain again");
    assert_eq!(plan2.columns, vec!["item", "value"]);
    assert_eq!(plan2, plan, "cached EXPLAIN must replay the plan");
    let outcome = service.submit_streaming(sql).expect("admitted").collect();
    assert_eq!(outcome.cache, CacheOutcome::Hit);
    let (rows, _) = outcome.result.expect("cached rows");
    assert_eq!(rows.columns, vec!["objectId", "ra_PS"]);
    assert_eq!(service.result_cache_len(), 2, "no extra entries appeared");
}
