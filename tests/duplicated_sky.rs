//! End-to-end over a *duplicated* sky — the paper's §6.1.2 methodology:
//! a PT1.1 patch replicated across declination bands with the
//! density-preserving RA transform, loaded into a cluster, and queried.

mod common;

use qserv::{ClusterBuilder, Value};
use qserv_datagen::duplicate::SkyDuplicator;
use qserv_datagen::generate::{pt11_footprint, CatalogConfig, Patch};

/// Builds a mid-declination duplicated catalog (small, but spanning many
/// more chunks than a single patch).
fn duplicated_objects() -> Vec<qserv_datagen::generate::ObjectRow> {
    let patch = Patch::generate(&CatalogConfig::small(250, 91));
    let dup = SkyDuplicator::new(&pt11_footprint());
    dup.duplicate_objects(&patch, -42.0, 42.0)
}

#[test]
fn duplicated_catalog_loads_and_counts() {
    let objects = duplicated_objects();
    let q = ClusterBuilder::new(6).build(&objects, &[]);
    let (r, stats) = q.query_with_stats("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(
        r.scalar(),
        Some(&Value::Int(objects.len() as i64)),
        "every duplicated row must be stored exactly once"
    );
    // The duplicated sky spans far more chunks than one patch would.
    assert!(
        stats.chunks_dispatched > 20,
        "only {} chunks for a ±42° sky",
        stats.chunks_dispatched
    );
}

#[test]
fn density_query_over_duplicated_sky() {
    // HV3 over the duplicated catalog: per-chunk densities should be
    // roughly uniform (the duplicator's whole point).
    let objects = duplicated_objects();
    let q = ClusterBuilder::new(6).build(&objects, &[]);
    let r = q
        .query("SELECT count(*) AS n, chunkId FROM Object GROUP BY chunkId")
        .unwrap();
    let chunker = q.chunker();
    let mut densities: Vec<f64> = Vec::new();
    for row in &r.rows {
        let n = row[0].as_i64().unwrap() as f64;
        let chunk = row[1].as_i64().unwrap() as i32;
        let area = chunker.chunk_bounds(chunk).unwrap().area_deg2();
        densities.push(n / area);
    }
    assert!(densities.len() > 20);
    let mean = densities.iter().sum::<f64>() / densities.len() as f64;
    // Edge chunks are partially covered, so allow generous spread, but
    // the bulk must sit near the mean: median within 2x of mean.
    densities.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = densities[densities.len() / 2];
    assert!(
        median > mean * 0.4 && median < mean * 2.5,
        "median density {median} vs mean {mean} — duplication skewed the sky"
    );
}

#[test]
fn point_lookups_work_across_copies() {
    let objects = duplicated_objects();
    let q = ClusterBuilder::new(4).build(&objects, &[]);
    // Probe ids from different copies (id ranges are strided per copy).
    for o in objects.iter().step_by(objects.len() / 7) {
        let (r, stats) = q
            .query_with_stats(&format!(
                "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = {}",
                o.object_id
            ))
            .unwrap();
        assert_eq!(r.num_rows(), 1, "objectId {}", o.object_id);
        assert_eq!(r.rows[0][1], Value::Float(o.ra_ps));
        assert_eq!(r.rows[0][2], Value::Float(o.decl_ps));
        assert_eq!(stats.chunks_dispatched, 1);
    }
}

#[test]
fn near_neighbor_correct_in_transformed_copy() {
    // The duplicator must preserve neighbour structure: run SHV1 over a
    // high-declination region and check against brute force there.
    let objects = duplicated_objects();
    let q = ClusterBuilder::new(4).build(&objects, &[]);
    let radius = 0.05f64;
    // A band well away from the original patch.
    let (lon0, lat0, lon1, lat1) = (0.0, 30.0, 20.0, 40.0);
    let r = q
        .query(&format!(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_areaspec_box({lon0}, {lat0}, {lon1}, {lat1}) \
             AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius} \
             AND o1.objectId != o2.objectId"
        ))
        .unwrap();
    let in_box = |o: &qserv_datagen::generate::ObjectRow| {
        o.ra_ps >= lon0 && o.ra_ps <= lon1 && o.decl_ps >= lat0 && o.decl_ps <= lat1
    };
    let mut expected = 0i64;
    for a in objects.iter().filter(|o| in_box(o)) {
        for b in &objects {
            if a.object_id != b.object_id
                && qserv_sphgeom::angular_separation_deg(a.ra_ps, a.decl_ps, b.ra_ps, b.decl_ps)
                    < radius
            {
                expected += 1;
            }
        }
    }
    assert_eq!(r.scalar(), Some(&Value::Int(expected)));
    assert!(
        expected > 0,
        "the duplicated band must contain neighbour pairs"
    );
}
