//! On-disk columnar chunk storage, end to end: a cluster loaded through
//! `.storage_dir(..)` keeps its chunks in `.qchunk` files and must be
//! indistinguishable from the in-memory cluster — bit-identical rows for
//! every paper-shape query — while the new observability counters
//! (`chunks_pruned`, `pages_pruned`, `pages_scanned`) prove zone-map
//! pruning actually engaged at both the master and the workers. A chaos
//! case kills a worker mid-cold-scan and demands the clean-cluster
//! result anyway.

mod common;

use common::{monolithic_db, small_patch, sorted_rows};
use qserv::stats::names;
use qserv::{ClusterBuilder, FabricOp, FaultPlan, Qserv, QueryStats, Value};
use qserv_datagen::generate::Patch;
use qserv_engine::exec::execute;
use qserv_sqlparse::parse_select;
use std::path::PathBuf;

fn storage_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("qserv-itest-store-{}-{name}", std::process::id()));
    p
}

fn on_disk_cluster(patch: &Patch, nodes: usize, dir: &PathBuf) -> Qserv {
    ClusterBuilder::new(nodes)
        .storage_dir(dir)
        // Small pages so few-hundred-row test chunks still span several
        // row groups — zone-map page elision needs something to elide.
        .storage_page_rows(64)
        .build(&patch.objects, &patch.sources)
}

/// The query battery both cluster flavors must agree on: scans,
/// projections, aggregates, point lookups, spatial restrictions, and the
/// joins that force workers to materialize stored chunks (union tables,
/// subchunks, overlap).
const QUERIES: [&str; 8] = [
    "SELECT COUNT(*) FROM Object",
    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE zFlux_PS > 0.2",
    "SELECT COUNT(*) AS n, AVG(uFlux_SG) FROM Object",
    "SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId",
    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 123",
    "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(359.0, -3.0, 2.0, 1.5)",
    "SELECT COUNT(*) FROM Object o, Source s WHERE o.objectId = s.objectId \
     AND o.uFlux_SG > 0.3",
    "SELECT count(*) FROM Object o1, Object o2 \
     WHERE qserv_areaspec_box(0.0, -2.0, 2.0, 2.0) \
     AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.05",
];

/// Every query returns bit-identical rows whether chunks live in RAM or
/// in `.qchunk` files — the acceptance bar for the storage layer.
#[test]
fn on_disk_cluster_matches_in_memory_cluster() {
    let patch = small_patch(600, 42);
    let dir = storage_dir("equiv");
    let mem = ClusterBuilder::new(4).build(&patch.objects, &patch.sources);
    let disk = on_disk_cluster(&patch, 4, &dir);
    for sql in QUERIES {
        let m = mem.query(sql).unwrap_or_else(|e| panic!("mem {sql}: {e}"));
        let d = disk
            .query(sql)
            .unwrap_or_else(|e| panic!("disk {sql}: {e}"));
        assert_eq!(m.columns, d.columns, "columns differ for {sql}");
        assert_eq!(
            sorted_rows(&m.rows),
            sorted_rows(&d.rows),
            "rows differ for {sql}"
        );
    }
    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The loader actually wrote chunk files, and they carry real bytes.
#[test]
fn loader_persists_chunk_files() {
    let patch = small_patch(300, 7);
    let dir = storage_dir("files");
    let q = on_disk_cluster(&patch, 3, &dir);
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("storage dir exists")
        .map(|e| e.unwrap())
        .collect();
    assert!(!files.is_empty(), "no chunk files written");
    for f in &files {
        let name = f.file_name().into_string().unwrap();
        assert!(name.ends_with(".qchunk"), "unexpected file {name}");
        assert!(f.metadata().unwrap().len() > 0, "empty chunk file {name}");
    }
    // Object, Source and RefObject-less clusters: at least Object+Source
    // per chunk.
    let (r, stats) = q.query_with_stats("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(300)));
    assert!(files.len() >= 2 * stats.chunks_dispatched);
    drop(q);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A selective objectId range on cold chunks: workers must decode only
/// the row groups whose zone maps admit the range, and the elision must
/// be visible in `QueryStats` without changing the answer. The same scan
/// against the monolithic oracle is the "full scan" side of the
/// pruned ≡ full equivalence.
#[test]
fn zone_map_pruned_scan_equals_full_scan() {
    let patch = small_patch(900, 11);
    let dir = storage_dir("pruned");
    let disk = on_disk_cluster(&patch, 4, &dir);
    let local = monolithic_db(&patch);
    // objectIds are assigned in generation order, so each chunk file
    // stores them sorted: a narrow BETWEEN admits few pages.
    for (lo, hi) in [(400, 460), (1, 25), (880, 1200)] {
        let sql =
            format!("SELECT objectId, ra_PS FROM Object WHERE objectId BETWEEN {lo} AND {hi}");
        let (d, stats) = disk
            .query_with_stats(&sql)
            .unwrap_or_else(|e| panic!("disk {sql}: {e}"));
        let l = execute(&local, &parse_select(&sql).expect("parses")).expect("local");
        assert_eq!(
            sorted_rows(&d.rows),
            sorted_rows(&l.rows),
            "pruned scan changed rows for {sql}"
        );
        assert!(
            stats.pages_scanned > 0,
            "cold scan decoded no pages for {sql}: {stats:?}"
        );
        assert!(
            stats.pages_pruned > 0,
            "zone maps elided no pages for {sql}: {stats:?}"
        );
    }
    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Master-side chunk elision: a plain numeric `ra_PS` interval is not a
/// spatial restriction (no areaspec UDF), so without zone maps every
/// chunk would dispatch. With them, chunks whose ra range cannot
/// intersect are never dispatched — and the count still matches the
/// oracle.
#[test]
fn chunk_zone_maps_elide_dispatches() {
    let patch = small_patch(900, 23);
    let dir = storage_dir("chunkelide");
    let disk = on_disk_cluster(&patch, 4, &dir);
    let local = monolithic_db(&patch);

    let sql = "SELECT COUNT(*) FROM Object WHERE ra_PS BETWEEN 359.0 AND 359.8";
    let (d, ra_stats) = disk.query_with_stats(sql).expect("disk");
    let l = execute(&local, &parse_select(sql).expect("parses")).expect("local");
    assert_eq!(d.scalar(), l.scalar(), "elision changed the count");
    assert!(
        ra_stats.chunks_pruned > 0,
        "no chunks elided for a narrow ra interval: {ra_stats:?}"
    );

    // A predicate no row can satisfy prunes *every* chunk; the one
    // fallback dispatch keeps aggregate semantics (COUNT over nothing
    // is 0, not NULL).
    let (none, stats) = disk
        .query_with_stats("SELECT COUNT(*) FROM Object WHERE zFlux_PS > 1.0e30")
        .expect("disk");
    assert_eq!(none.scalar(), Some(&Value::Int(0)));
    assert!(stats.chunks_pruned > 0);
    assert_eq!(
        stats.chunks_dispatched, 1,
        "only the fallback dispatch runs"
    );

    // In-memory clusters register the same zone maps: elision does not
    // depend on the on-disk format.
    let mem = ClusterBuilder::new(4).build(&patch.objects, &patch.sources);
    let (m, mstats) = mem.query_with_stats(sql).expect("mem");
    assert_eq!(m.scalar(), l.scalar());
    assert_eq!(
        mstats.chunks_pruned, ra_stats.chunks_pruned,
        "elision must not depend on the storage mode"
    );
    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The pruning counters surface through all three observability paths:
/// the stats view, the raw metrics snapshot, and the span tree (worker
/// statement spans annotate page counts; the analyze span annotates
/// chunk elision).
#[test]
fn pruning_counters_surface_in_stats_metrics_and_trace() {
    let patch = small_patch(900, 31);
    let dir = storage_dir("obs");
    let disk = on_disk_cluster(&patch, 4, &dir);

    let traced = disk
        .query_traced(
            "SELECT objectId FROM Object \
             WHERE objectId BETWEEN 200 AND 260 AND ra_PS BETWEEN 359.0 AND 359.9",
        )
        .expect("traced");

    // Stats view sees the worker page counters.
    assert!(traced.stats.pages_scanned > 0, "{:?}", traced.stats);
    assert!(traced.stats.pages_pruned > 0, "{:?}", traced.stats);
    // The stats view is exactly the metrics snapshot.
    assert_eq!(traced.stats, QueryStats::from_snapshot(&traced.metrics));
    assert_eq!(
        traced.metrics.counter(names::PAGES_PRUNED),
        traced.stats.pages_pruned
    );
    assert_eq!(
        traced.metrics.counter(names::PAGES_SCANNED),
        traced.stats.pages_scanned
    );
    assert_eq!(
        traced.metrics.counter(names::CHUNKS_PRUNED) as usize,
        traced.stats.chunks_pruned
    );

    // Worker statement spans annotate their page elision; the totals
    // across the trace reconcile with the query counters.
    let spans = traced.trace.spans();
    let mut pruned = 0u64;
    let mut scanned = 0u64;
    for s in spans.iter().filter(|s| s.name == "worker.statement") {
        if let Some(v) = s.attr("pages_pruned") {
            pruned += v.parse::<u64>().unwrap();
        }
        if let Some(v) = s.attr("pages_scanned") {
            scanned += v.parse::<u64>().unwrap();
        }
    }
    assert_eq!(pruned, traced.stats.pages_pruned, "trace disagrees");
    assert_eq!(scanned, traced.stats.pages_scanned, "trace disagrees");
    if traced.stats.chunks_pruned > 0 {
        let analyze = spans
            .iter()
            .find(|s| s.name == "master.analyze")
            .expect("analyze span");
        assert_eq!(
            analyze.attr("chunks_pruned"),
            Some(traced.stats.chunks_pruned.to_string().as_str())
        );
    }
    // The JSON export carries the annotations for external tooling.
    let json = traced.trace.to_json();
    assert!(json.contains("pages_pruned"), "export lost annotations");
    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm in-memory clusters never touch the paged path: their stats must
/// keep reporting zero page counters, and dump texts stay byte-identical
/// to the pre-storage format (no QSERV_SCAN header leaks into results).
#[test]
fn in_memory_cluster_reports_no_page_counters() {
    let patch = small_patch(400, 13);
    let mem = ClusterBuilder::new(3).build(&patch.objects, &patch.sources);
    let (r, stats) = mem
        .query_with_stats("SELECT COUNT(*) FROM Object WHERE objectId BETWEEN 10 AND 90")
        .expect("mem");
    assert_eq!(r.scalar(), Some(&Value::Int(81)));
    assert_eq!(stats.pages_scanned, 0);
    assert_eq!(stats.pages_pruned, 0);
}

/// Chaos: a replicated on-disk cluster loses fabric writes while every
/// chunk is still cold (first scan after load). Retries land on the
/// replica, which decodes the same chunk files — the result must be
/// byte-for-byte the clean cluster's, and the faults must be visible in
/// the stats.
#[test]
fn worker_death_mid_cold_scan_matches_clean_cluster() {
    let patch = small_patch(700, 57);
    let build = |dir: &PathBuf, seed: u64| {
        ClusterBuilder::new(4)
            .replication(2)
            .fault_plan(FaultPlan::new(seed))
            .storage_dir(dir)
            .storage_page_rows(64)
            .build(&patch.objects, &patch.sources)
    };
    let sql = "SELECT objectId, ra_PS, zFlux_PS FROM Object WHERE objectId BETWEEN 100 AND 420";

    let clean_dir = storage_dir("chaos-clean");
    let clean = build(&clean_dir, 1);
    let expected = clean.query(sql).expect("clean cold scan");

    // Faulted twin: the first fabric writes fail, killing the initial
    // chunk dispatches mid-cold-scan; dispatch must retry them on the
    // other replica.
    let chaos_dir = storage_dir("chaos-faulted");
    let chaos = build(&chaos_dir, 2);
    chaos
        .cluster()
        .faults()
        .fail_next(None, Some(FabricOp::Write), 4);
    let (got, stats) = chaos.query_with_stats(sql).expect("chaotic cold scan");
    assert_eq!(
        sorted_rows(&got.rows),
        sorted_rows(&expected.rows),
        "worker death during a cold scan changed the result"
    );
    assert!(stats.chunks_retried > 0, "faults must force retries");
    assert!(stats.injected_faults_observed >= 4);
    assert!(stats.pages_scanned > 0, "retried scans still run cold");

    // A whole server down for the next cold-ish query: replica chunks
    // decode from the same files, so rows still match.
    chaos.cluster().servers()[0].set_online(false);
    let down = chaos.query(sql).expect("query with a server down");
    assert_eq!(sorted_rows(&down.rows), sorted_rows(&expected.rows));
    chaos.cluster().servers()[0].set_online(true);

    drop(chaos);
    drop(clean);
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}
