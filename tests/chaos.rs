//! Chaos suite: paper-shape queries against a fabric with seeded fault
//! injection. Replicated clusters must return results identical to a
//! fault-free run (retrying, replica-aware dispatch masks the faults,
//! and [`qserv::QueryStats`] proves retries actually happened);
//! unreplicated clusters must *fail fast* with a fabric error or a
//! deadline timeout rather than hang.
//!
//! Every fault decision derives from the plan seed, so each test is
//! deterministic: rerunning the binary produces the same injected-fault
//! schedule and the same counters.

mod common;

use common::{small_patch, sorted_rows};
use qserv::sharedscan::SharedScanner;
use qserv::{ClusterBuilder, FabricOp, FaultPlan, Qserv, QservError, RetryPolicy, Value};
use qserv_datagen::generate::Patch;
use std::time::Duration;

/// The paper-shape queries exercised under chaos: full-table aggregate,
/// objectId point lookup, and a spatially-restricted near-neighbour join.
const PAPER_QUERIES: [&str; 3] = [
    "SELECT COUNT(*) FROM Object",
    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 123",
    "SELECT count(*) FROM Object o1, Object o2 \
     WHERE qserv_areaspec_box(0.0, -2.0, 2.0, 2.0) \
     AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.05",
];

fn replicated(patch: &Patch, seed: u64) -> Qserv {
    ClusterBuilder::new(4)
        .replication(2)
        .fault_plan(FaultPlan::new(seed))
        .build(&patch.objects, &patch.sources)
}

/// No `/result/*` files may survive a query, successful or not — the
/// master must consume or scrub every result transaction it opens.
fn assert_no_result_leaks(q: &Qserv, context: &str) {
    for (id, server) in q.cluster().servers().iter().enumerate() {
        let leaked = server.file_names("/result/");
        assert!(
            leaked.is_empty(),
            "{context}: server {id} leaked result files: {leaked:?}"
        );
    }
}

#[test]
fn fault_free_baseline_observes_nothing() {
    let patch = small_patch(400, 91);
    let q = replicated(&patch, 1);
    let (r, stats) = q.query_with_stats(PAPER_QUERIES[0]).unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(400)));
    assert_eq!(stats.chunks_retried, 0);
    assert_eq!(stats.injected_faults_observed, 0);
    assert_eq!(q.cluster().faults().stats().total(), 0);
    assert_no_result_leaks(&q, "fault-free baseline");
}

#[test]
fn count_star_survives_fail_first_writes() {
    let patch = small_patch(400, 91);
    let q = replicated(&patch, 2);
    // The first 5 fabric writes — anywhere — fail. Dispatch must retry
    // those chunk queries on another replica and still count every row.
    q.cluster()
        .faults()
        .fail_next(None, Some(FabricOp::Write), 5);
    let (r, stats) = q.query_with_stats(PAPER_QUERIES[0]).unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(400)));
    assert!(stats.chunks_retried > 0, "write faults must force retries");
    assert!(stats.injected_faults_observed >= 5, "all 5 faults observed");
    assert_eq!(
        q.cluster().faults().stats().failures_for(FabricOp::Write),
        5,
        "exactly the configured number of write faults fired"
    );
    assert_no_result_leaks(&q, "fail-first writes");
}

#[test]
fn paper_queries_match_fault_free_under_20pct_read_faults() {
    let patch = small_patch(700, 92);
    let clean = replicated(&patch, 3);
    let chaotic = replicated(&patch, 3);
    // 20% of fabric reads fail transiently, decided by the plan seed.
    chaotic
        .cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Read), 0.2);

    let mut total_retried = 0;
    let mut total_observed = 0;
    for sql in PAPER_QUERIES {
        let expected = clean.query(sql).expect("fault-free run");
        let (got, stats) = chaotic.query_with_stats(sql).expect("chaotic run");
        assert_eq!(
            sorted_rows(&got.rows),
            sorted_rows(&expected.rows),
            "results diverged under read faults for {sql}"
        );
        total_retried += stats.chunks_retried;
        total_observed += stats.injected_faults_observed;
    }
    assert!(total_retried > 0, "20% read faults must cause retries");
    assert!(total_observed > 0, "stats must count the injected faults");
    let fabric = chaotic.cluster().faults().stats();
    assert_eq!(
        fabric.failures_for(FabricOp::Read),
        fabric.failures_injected
    );
    assert!(fabric.failures_injected > 0);
    assert_no_result_leaks(&chaotic, "20% read faults");
}

#[test]
fn fault_schedule_is_deterministic_per_seed() {
    let patch = small_patch(400, 93);
    let run = |seed: u64| {
        let q = replicated(&patch, seed);
        q.cluster()
            .faults()
            .fail_with_probability(None, Some(FabricOp::Read), 0.4);
        let mut rows = Vec::new();
        let mut observed = 0;
        for sql in PAPER_QUERIES {
            let (r, stats) = q.query_with_stats(sql).expect("chaotic run");
            rows.push(sorted_rows(&r.rows));
            observed += stats.injected_faults_observed;
        }
        (rows, observed, q.cluster().faults().stats())
    };
    // Only a handful of chunk reads happen per run, so a given seed may
    // legitimately draw zero failures; scan for one whose schedule is
    // active. The scan itself is deterministic.
    let seed = (1..=32)
        .find(|&s| run(s).1 > 0)
        .expect("some seed in 1..=32 injects read faults");
    let (rows_a, observed_a, fabric_a) = run(seed);
    let (rows_b, observed_b, fabric_b) = run(seed);
    assert_eq!(rows_a, rows_b, "same seed ⇒ same results");
    assert_eq!(observed_a, observed_b, "same seed ⇒ same fault schedule");
    assert_eq!(fabric_a, fabric_b, "fabric counters are reproducible");
    assert!(observed_a > 0, "the schedule actually injected faults");

    // Total counts are coarse enough for two seeds to collide, so scan:
    // some seed must draw a different schedule.
    let diverges = (1..=32).any(|s| run(s).1 != observed_a);
    assert!(diverges, "no seed in 1..=32 diverged from seed {seed}");
}

#[test]
fn corrupted_result_payloads_are_retried() {
    let patch = small_patch(400, 94);
    let clean = replicated(&patch, 4);
    let chaotic = replicated(&patch, 4);
    // 30% of read payloads come back bit-mangled. The master must treat
    // an unparseable result as transient and re-execute the chunk.
    chaotic
        .cluster()
        .faults()
        .corrupt_payload(None, Some(FabricOp::Read), 0.3);
    for sql in PAPER_QUERIES {
        let expected = clean.query(sql).expect("fault-free run");
        let got = chaotic.query(sql).expect("chaotic run");
        assert_eq!(
            sorted_rows(&got.rows),
            sorted_rows(&expected.rows),
            "corruption must never surface in results for {sql}"
        );
    }
    assert!(
        chaotic.cluster().faults().stats().payloads_corrupted > 0,
        "the corruption rules actually fired"
    );
    assert_no_result_leaks(&chaotic, "corrupted payloads");
}

#[test]
fn flapping_server_mid_dispatch_is_masked() {
    let patch = small_patch(500, 95);
    let q = replicated(&patch, 5);
    let expected = q.query(PAPER_QUERIES[0]).unwrap();

    // A server flaps offline/online while queries dispatch: a background
    // thread bounces it, and dispatch must mask every phase via the other
    // replica (NoServerForPath resets exclusions, so the server is used
    // again once it returns).
    let flapper = q.cluster().servers()[1].clone();
    crossbeam::thread::scope(|scope| {
        let handle = scope.spawn(|_| {
            for _ in 0..20 {
                flapper.set_online(false);
                std::thread::sleep(Duration::from_millis(2));
                flapper.set_online(true);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        for _ in 0..6 {
            let r = q.query(PAPER_QUERIES[0]).expect("query during flapping");
            assert_eq!(r.scalar(), expected.scalar(), "flapping changed a count");
        }
        handle.join().expect("flapper thread");
    })
    .expect("no thread panics");

    // Deterministic half: the server is *down* for a whole query, then
    // back up; both runs must agree with the baseline.
    q.cluster().servers()[1].set_online(false);
    let down = q.query(PAPER_QUERIES[0]).unwrap();
    assert_eq!(down.scalar(), expected.scalar());
    q.cluster().servers()[1].set_online(true);
    let back = q.query(PAPER_QUERIES[0]).unwrap();
    assert_eq!(back.scalar(), expected.scalar());
    assert_no_result_leaks(&q, "flapping server");
}

#[test]
fn worker_failure_mid_join_retries_on_replica() {
    // The join path under chaos: a worker dies *while* a near-neighbor
    // self-join and a cross-catalog XMatch are dispatching. Replica
    // retries must mask the failure — results identical to a fault-free
    // twin (which itself equals the brute-force oracle, proven by the
    // join_oracle suite) — and no /result/* transaction may survive.
    use qserv::XMatchSpec;
    let patch = small_patch(500, 101);
    let refs = patch.generate_ref_catalog(101);
    let build = || {
        ClusterBuilder::new(4)
            .replication(2)
            .fault_plan(FaultPlan::new(21))
            .ref_objects(&refs)
            .build(&patch.objects, &patch.sources)
    };
    let clean = build();
    let chaotic = build();

    let join_sql = "SELECT o1.objectId, o2.objectId FROM Object o1, Object o2 \
         WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.05 \
         AND o1.objectId != o2.objectId";
    let spec = XMatchSpec::object_to_ref(0.01);
    let want_join = sorted_rows(&clean.query(join_sql).expect("clean join").rows);
    let want_match = clean.xmatch(&spec).expect("clean xmatch").0.rows;
    assert!(!want_match.is_empty() && !want_join.is_empty());

    // Nondeterministic half: a worker flaps offline/online while the
    // join queries dispatch; every interleaving must be masked.
    let flapper = chaotic.cluster().servers()[2].clone();
    crossbeam::thread::scope(|scope| {
        let handle = scope.spawn(|_| {
            for _ in 0..16 {
                flapper.set_online(false);
                std::thread::sleep(Duration::from_millis(2));
                flapper.set_online(true);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        for _ in 0..3 {
            let got = chaotic.query(join_sql).expect("join during flapping");
            assert_eq!(sorted_rows(&got.rows), want_join, "join rows diverged");
            let (got, _) = chaotic.xmatch(&spec).expect("xmatch during flapping");
            assert_eq!(got.rows, want_match, "xmatch rows diverged");
        }
        handle.join().expect("flapper thread");
    })
    .expect("no thread panics");

    // Deterministic half 1: the worker is down for the *entire* join;
    // the redirector must route its chunks to the surviving replica.
    chaotic.cluster().servers()[2].set_online(false);
    let got = chaotic.query(join_sql).expect("join with a dead worker");
    assert_eq!(sorted_rows(&got.rows), want_join);
    let (got, _) = chaotic.xmatch(&spec).expect("xmatch with a dead worker");
    assert_eq!(got.rows, want_match);
    chaotic.cluster().servers()[2].set_online(true);

    // Deterministic half 2: injected write faults mid-join force the
    // *retry* path (not just replica-aware routing) and are still
    // invisible in the joined rows.
    chaotic
        .cluster()
        .faults()
        .fail_next(None, Some(FabricOp::Write), 3);
    let (got, stats) = chaotic
        .query_with_stats(join_sql)
        .expect("join with write faults");
    assert_eq!(sorted_rows(&got.rows), want_join);
    assert!(
        stats.chunks_retried > 0,
        "write faults mid-join must force chunk retries"
    );
    chaotic
        .cluster()
        .faults()
        .fail_next(None, Some(FabricOp::Write), 3);
    let (got, stats) = chaotic.xmatch(&spec).expect("xmatch with write faults");
    assert_eq!(got.rows, want_match);
    assert!(
        stats.chunks_retried > 0,
        "xmatch retries under write faults"
    );
    assert_no_result_leaks(&chaotic, "worker failure mid-join");
}

#[test]
fn unreplicated_cluster_surfaces_fabric_error_not_hang() {
    let patch = small_patch(300, 96);
    let q = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(6))
        .build(&patch.objects, &patch.sources);
    // Every read fails and there is no second replica: the query must
    // exhaust its bounded retries and report the fault, quickly.
    q.cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Read), 1.0);
    let started = std::time::Instant::now();
    let err = q.query(PAPER_QUERIES[0]).unwrap_err();
    assert!(
        matches!(err, QservError::Fabric(_) | QservError::Timeout { .. }),
        "expected a fabric/timeout error, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "bounded retries must not degenerate into a hang"
    );
    assert_no_result_leaks(&q, "unreplicated read faults");
}

#[test]
fn query_deadline_surfaces_timeout() {
    let patch = small_patch(300, 97);
    let q = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(7))
        .retry(RetryPolicy {
            max_attempts: 10_000,
            backoff_base: Duration::from_millis(1),
            deadline: Some(Duration::from_millis(120)),
        })
        .build(&patch.objects, &patch.sources);
    q.cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Write), 1.0);
    let err = q.query(PAPER_QUERIES[0]).unwrap_err();
    match err {
        QservError::Timeout { elapsed_ms, .. } => {
            assert!(elapsed_ms >= 120, "deadline fired early: {elapsed_ms} ms");
        }
        other => panic!("expected a timeout, got {other}"),
    }
    assert_no_result_leaks(&q, "deadline expiry");
}

#[test]
fn result_files_scrubbed_when_query_fails() {
    // Regression for the dispatch result-file leak: a failing query used
    // to strand `/result/*` files on workers. Now every exit path —
    // read fault, close fault, parse failure — unlinks what it created.
    let patch = small_patch(300, 98);
    let q = ClusterBuilder::new(3)
        .fault_plan(FaultPlan::new(8))
        .build(&patch.objects, &patch.sources);

    // Close faults fire *after* the worker ran and deposited a result:
    // the orphan must be scrubbed even though the write "failed".
    q.cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Close), 1.0);
    let err = q.query(PAPER_QUERIES[0]).unwrap_err();
    assert!(
        matches!(err, QservError::Fabric(_)),
        "close faults fail unreplicated queries"
    );
    assert_no_result_leaks(&q, "close faults on a failed query");

    // And after recovery the same cluster still answers correctly.
    q.cluster().faults().clear();
    let r = q.query(PAPER_QUERIES[0]).unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(300)));
    assert_no_result_leaks(&q, "recovered cluster");
}

#[test]
fn delay_faults_slow_but_never_break() {
    let patch = small_patch(300, 99);
    let q = replicated(&patch, 9);
    q.cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(3));
    let r = q.query(PAPER_QUERIES[0]).unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(300)));
    let stats = q.cluster().faults().stats();
    assert!(stats.delays_injected > 0, "delay rules must have fired");
    assert_eq!(stats.failures_injected, 0, "delays are not failures");
}

#[test]
fn shared_scan_convoy_survives_read_faults() {
    // A fault plan firing *during* a shared-scan convoy: the scheduler's
    // retrying, replica-aware dispatch must mask the faults, and every
    // member's streaming merger must still return complete results —
    // identical to solo runs on a fault-free twin.
    let patch = small_patch(700, 94);
    let clean = replicated(&patch, 13);
    let chaotic = replicated(&patch, 13);
    chaotic
        .cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Read), 0.2);

    let queries = [
        "SELECT COUNT(*) FROM Object",
        "SELECT chunkId, COUNT(*), AVG(ra_PS) FROM Object GROUP BY chunkId",
        "SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC LIMIT 5",
    ];
    let report = SharedScanner::new(&chaotic)
        .run(&queries)
        .expect("convoy completes under read faults");

    for (i, sql) in queries.iter().enumerate() {
        let solo = clean.query(sql).expect("clean solo run");
        assert_eq!(
            sorted_rows(&report.results[i].rows),
            sorted_rows(&solo.rows),
            "convoy member {i} diverged under faults: {sql}"
        );
    }
    let observed: u64 = report
        .stats
        .iter()
        .map(|s| s.injected_faults_observed)
        .sum();
    assert!(observed > 0, "fault plan never fired during the convoy");
    assert!(
        report.stats.iter().any(|s| s.chunks_retried > 0),
        "read faults must force per-member retries"
    );
    assert_no_result_leaks(&chaotic, "convoy under read faults");
}

#[test]
fn delay_faults_bill_virtual_time_with_zero_wall_sleeping() {
    // Every fabric write on the cluster pays a 2-second injected delay —
    // but the cluster runs on a virtual clock, so the delays advance
    // virtual time instead of blocking dispatcher threads. The trace and
    // the latency histogram must both show the billed seconds while the
    // test itself finishes in wall-clock milliseconds.
    let patch = small_patch(300, 90);
    let vclock = qserv::VirtualClock::shared();
    let q = ClusterBuilder::new(4)
        .replication(2)
        .fault_plan(FaultPlan::new(10))
        .clock(vclock.clone())
        .build(&patch.objects, &patch.sources);
    q.cluster()
        .faults()
        .delay(None, Some(FabricOp::Write), Duration::from_secs(2));

    let wall = std::time::Instant::now();
    let traced = q.query_traced(PAPER_QUERIES[0]).unwrap();
    assert_eq!(traced.rows.scalar(), Some(&Value::Int(300)));

    let delays = q.cluster().faults().stats().delays_injected;
    assert!(delays > 0, "the delay rule must have fired");
    // Each injected delay advanced the shared timeline by its full 2 s.
    use qserv::Clock;
    assert!(
        vclock.now() >= Duration::from_secs(2) * delays as u32,
        "virtual clock advanced {:?} for {delays} delays",
        vclock.now()
    );
    // Per-chunk latency is billed in virtual time: every chunk does one
    // delayed write, so every chunk span lasts ≥ 2 virtual seconds…
    let chunk_spans: Vec<_> = traced
        .trace
        .spans()
        .into_iter()
        .filter(|s| s.name == "chunk")
        .collect();
    assert!(!chunk_spans.is_empty(), "trace has chunk spans");
    for s in &chunk_spans {
        assert!(
            s.duration_ns() >= 2_000_000_000,
            "chunk span billed only {} ns of virtual time",
            s.duration_ns()
        );
    }
    // …and the dispatch-latency histogram agrees.
    let h = traced
        .metrics
        .histogram(qserv::stats::names::CHUNK_LATENCY_NS);
    assert_eq!(h.count, chunk_spans.len() as u64);
    assert!(h.min >= 2_000_000_000, "histogram min {} ns", h.min);
    // The whole thing must not have slept for real.
    assert!(
        wall.elapsed() < Duration::from_secs(5),
        "virtual delays must not consume wall time (took {:?})",
        wall.elapsed()
    );
}

#[test]
fn virtual_clock_chaos_runs_are_bit_reproducible() {
    // Same seed, same virtual clock, single dispatcher thread: the whole
    // observable output — rows, trace JSON (timestamps included), and
    // metrics JSON — must be byte-identical across runs.
    let patch = small_patch(300, 91);
    let run = || {
        let vclock = qserv::VirtualClock::shared();
        let mut q = ClusterBuilder::new(4)
            .replication(2)
            .fault_plan(FaultPlan::new(17))
            .clock(vclock)
            .build(&patch.objects, &patch.sources);
        // One dispatcher thread: chunk ordering (and therefore span
        // ordering and fault-schedule interleaving) is sequential.
        // Byte-comparing traces is gated on this serial path on
        // purpose: with dispatch_width > 1, worker threads race for
        // chunks and the streaming merger folds results in completion
        // order, so span start/stop interleavings — and which retry
        // consumes which seeded fault — differ run to run even on a
        // virtual clock. Rows stay identical either way (the merge is
        // order-insensitive); only the *observability byte stream* is
        // nondeterministic, which is why this reproducibility check
        // pins the width instead of weakening the comparison.
        q.dispatch_width = 1;
        q.cluster()
            .faults()
            .fail_next(None, Some(FabricOp::Write), 3);
        q.cluster()
            .faults()
            .delay(None, Some(FabricOp::Read), Duration::from_millis(5));
        let t = q.query_traced(PAPER_QUERIES[0]).expect("chaotic run");
        t.trace.validate().expect("well-formed trace");
        (t.rows, t.trace.to_json(), t.metrics.to_json())
    };
    let (rows_a, trace_a, metrics_a) = run();
    let (rows_b, trace_b, metrics_b) = run();
    assert_eq!(rows_a, rows_b, "same seed ⇒ same rows");
    assert_eq!(trace_a, trace_b, "same seed ⇒ bit-identical trace JSON");
    assert_eq!(metrics_a, metrics_b, "same seed ⇒ bit-identical metrics");
    assert!(
        trace_a.contains("\"outcome\":\"retry\""),
        "the reproduced schedule actually exercised retries: {trace_a}"
    );
}
