//! End-to-end integration: parse → analyze → rewrite → dispatch over the
//! fabric → worker execution → result transfer → merge, across all crates.

mod common;

use common::{cluster_from, small_patch};
use qserv::analysis::JoinClass;
use qserv::Value;

#[test]
fn point_query_round_trip() {
    let patch = small_patch(300, 1);
    let q = cluster_from(&patch, 4);
    let (r, stats) = q
        .query_with_stats("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 42")
        .unwrap();
    assert_eq!(r.num_rows(), 1);
    assert_eq!(r.rows[0][0], Value::Int(42));
    let o = &patch.objects[41];
    assert_eq!(r.rows[0][1], Value::Float(o.ra_ps));
    // The secondary index narrowed dispatch to a single chunk (§5.5).
    assert!(stats.used_secondary_index);
    assert_eq!(stats.chunks_dispatched, 1);
}

#[test]
fn missing_object_yields_zero_rows() {
    let patch = small_patch(50, 2);
    let q = cluster_from(&patch, 2);
    let r = q
        .query("SELECT * FROM Object WHERE objectId = 999999")
        .unwrap();
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn full_sky_count_matches_catalog() {
    let patch = small_patch(500, 3);
    let q = cluster_from(&patch, 5);
    let (r, stats) = q.query_with_stats("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(500)));
    // Full-sky: every stored chunk dispatched, no index, no restriction.
    assert!(!stats.used_secondary_index);
    assert!(!stats.used_spatial_restriction);
    assert!(stats.chunks_dispatched > 1);
    assert_eq!(r.columns, vec!["COUNT(*)"]);
}

#[test]
fn source_count_matches_catalog() {
    let patch = small_patch(200, 4);
    let q = cluster_from(&patch, 3);
    let r = q.query("SELECT COUNT(*) FROM Source").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(patch.sources.len() as i64)));
}

#[test]
fn spatial_restriction_narrows_dispatch() {
    let patch = small_patch(500, 5);
    let q = cluster_from(&patch, 4);
    let (_all, full) = q.query_with_stats("SELECT COUNT(*) FROM Object").unwrap();
    let (_r, restricted) = q
        .query_with_stats(
            "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(0.5, 0.5, 2.0, 3.0)",
        )
        .unwrap();
    assert!(restricted.used_spatial_restriction);
    assert!(
        restricted.chunks_dispatched < full.chunks_dispatched,
        "spatial restriction must avoid full-sky dispatch: {} vs {}",
        restricted.chunks_dispatched,
        full.chunks_dispatched
    );
}

#[test]
fn spatial_count_is_exact_not_just_chunk_granular() {
    // The UDF predicate must filter rows inside partially-covered chunks.
    let patch = small_patch(1000, 6);
    let q = cluster_from(&patch, 4);
    let r = q
        .query("SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(0.0, 0.0, 3.0, 5.0)")
        .unwrap();
    let expected = patch
        .objects
        .iter()
        .filter(|o| (0.0..=3.0).contains(&o.ra_ps) && (0.0..=5.0).contains(&o.decl_ps))
        .count() as i64;
    assert_eq!(r.scalar(), Some(&Value::Int(expected)));
    assert!(expected > 0, "fixture must cover the box");
}

#[test]
fn avg_example_from_paper_5_3() {
    let patch = small_patch(800, 7);
    let q = cluster_from(&patch, 4);
    let r = q
        .query(
            "SELECT AVG(uFlux_SG) FROM Object \
             WHERE qserv_areaspec_box(358.0, -7.0, 5.0, 7.0) AND uRadius_PS > 0.04",
        )
        .unwrap();
    let selected: Vec<f64> = patch
        .objects
        .iter()
        .filter(|o| o.u_radius_ps > 0.04)
        .map(|o| o.u_flux_sg)
        .collect();
    let expected = selected.iter().sum::<f64>() / selected.len() as f64;
    let got = r.scalar().unwrap().as_f64().unwrap();
    assert!(
        (got - expected).abs() / expected < 1e-9,
        "AVG mismatch: {got} vs {expected}"
    );
    assert_eq!(r.columns, vec!["AVG(uFlux_SG)"]);
}

#[test]
fn group_by_density_like_hv3() {
    let patch = small_patch(600, 8);
    let q = cluster_from(&patch, 4);
    let r = q
        .query(
            "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId \
             FROM Object GROUP BY chunkId ORDER BY chunkId",
        )
        .unwrap();
    // n sums to the catalog total.
    let total: i64 = r
        .rows
        .iter()
        .map(|row| row[0].as_i64().expect("n is integral"))
        .sum();
    assert_eq!(total, 600);
    assert_eq!(
        r.columns,
        vec!["n", "AVG(ra_PS)", "AVG(decl_PS)", "chunkId"]
    );
    // chunkIds ascend and are distinct.
    let ids: Vec<i64> = r.rows.iter().map(|row| row[3].as_i64().unwrap()).collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]));
    // AVG(decl_PS) of each group must sit inside that chunk's decl band.
    let chunker = q.chunker();
    for row in &r.rows {
        let chunk = row[3].as_i64().unwrap() as i32;
        let avg_decl = row[2].as_f64().unwrap();
        let b = chunker.chunk_bounds(chunk).unwrap();
        assert!(
            avg_decl >= b.lat_min_deg() - 1e-9 && avg_decl <= b.lat_max_deg() + 1e-9,
            "AVG(decl) {avg_decl} outside chunk {chunk} band"
        );
    }
}

#[test]
fn order_by_and_limit_across_chunks() {
    let patch = small_patch(300, 9);
    let q = cluster_from(&patch, 4);
    let r = q
        .query("SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC LIMIT 7")
        .unwrap();
    assert_eq!(r.num_rows(), 7);
    // Must be the true global top 7, not a per-chunk artifact.
    let mut ras: Vec<f64> = patch.objects.iter().map(|o| o.ra_ps).collect();
    ras.sort_by(|a, b| b.partial_cmp(a).unwrap());
    for (i, row) in r.rows.iter().enumerate() {
        assert_eq!(row[1].as_f64().unwrap(), ras[i], "rank {i} mismatch");
    }
}

#[test]
fn time_series_join_by_object_id() {
    let patch = small_patch(150, 10);
    let q = cluster_from(&patch, 3);
    let (r, stats) = q
        .query_with_stats(
            "SELECT taiMidPoint, fluxToAbMag(psfFlux), ra, decl \
             FROM Source WHERE objectId = 77 ORDER BY taiMidPoint",
        )
        .unwrap();
    let expected = patch.sources.iter().filter(|s| s.object_id == 77).count();
    assert_eq!(r.num_rows(), expected);
    assert!(expected > 0);
    assert_eq!(
        stats.chunks_dispatched, 1,
        "secondary index localizes Source too"
    );
    // Time series is sorted.
    let times: Vec<f64> = r.rows.iter().map(|row| row[0].as_f64().unwrap()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn explain_reports_plan_shape() {
    let patch = small_patch(100, 11);
    let q = cluster_from(&patch, 2);
    let e = q
        .explain(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_areaspec_box(0.0, 0.0, 2.0, 2.0) \
             AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.05",
        )
        .unwrap();
    assert_eq!(e.join, JoinClass::SubchunkNear);
    assert!(e.aggregated);
    assert!(!e.uses_secondary_index);
    let msg = e.sample_message.unwrap();
    assert!(msg.starts_with("-- SUBCHUNKS:"), "{msg}");
    assert!(msg.contains("FullOverlap"), "{msg}");
}

#[test]
fn tableless_select_runs_on_frontend() {
    let patch = small_patch(10, 12);
    let q = cluster_from(&patch, 1);
    let (r, stats) = q.query_with_stats("SELECT 2 + 3").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
    assert_eq!(stats.chunks_dispatched, 0);
}

#[test]
fn errors_surface_with_context() {
    let patch = small_patch(10, 13);
    let q = cluster_from(&patch, 1);
    // Unknown table.
    assert!(q.query("SELECT * FROM Nope").is_err());
    // Unknown column: reported as a worker-side execution error.
    let err = q.query("SELECT nonexistent FROM Object").unwrap_err();
    let text = err.to_string();
    assert!(text.contains("worker"), "{text}");
    assert!(text.contains("nonexistent"), "{text}");
}

#[test]
fn in_list_index_dispatch() {
    let patch = small_patch(400, 14);
    let q = cluster_from(&patch, 4);
    let (r, stats) = q
        .query_with_stats(
            "SELECT objectId FROM Object WHERE objectId IN (1, 2, 3, 399) ORDER BY objectId",
        )
        .unwrap();
    assert_eq!(r.num_rows(), 4);
    assert!(stats.used_secondary_index);
    assert!(
        stats.chunks_dispatched <= 4,
        "dispatch limited to the ids' chunks, got {}",
        stats.chunks_dispatched
    );
}

#[test]
fn worker_stats_accumulate() {
    let patch = small_patch(200, 15);
    let q = cluster_from(&patch, 3);
    q.query("SELECT COUNT(*) FROM Object").unwrap();
    let total_queries: u64 = q.workers().iter().map(|w| w.stats.snapshot().0).sum();
    assert_eq!(total_queries as usize, q.placement().chunks().len());
}

#[test]
fn replicated_deployment_answers_queries() {
    let patch = small_patch(300, 16);
    let q = qserv::ClusterBuilder::new(4)
        .replication(2)
        .build(&patch.objects, &patch.sources);
    let r = q.query("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(300)));
}

#[test]
fn circle_restriction_matches_explicit_predicate() {
    // qserv_areaspec_circle (the box's companion pseudo-function) must
    // select exactly the objects within the radius.
    let patch = small_patch(900, 17);
    let q = cluster_from(&patch, 4);
    let (ra0, decl0, r0) = (2.5, 3.5, 1.0);
    let (circle, stats) = q
        .query_with_stats(&format!(
            "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_circle({ra0}, {decl0}, {r0})"
        ))
        .unwrap();
    let expected = patch
        .objects
        .iter()
        .filter(|o| qserv_sphgeom::angular_separation_deg(o.ra_ps, o.decl_ps, ra0, decl0) <= r0)
        .count() as i64;
    assert_eq!(circle.scalar(), Some(&Value::Int(expected)));
    assert!(expected > 0, "fixture must cover the circle");
    assert!(stats.used_spatial_restriction);
    // And it must have avoided full-sky dispatch.
    let (_, full) = q.query_with_stats("SELECT COUNT(*) FROM Object").unwrap();
    assert!(stats.chunks_dispatched < full.chunks_dispatched);
}

#[test]
fn circle_rejects_bad_arguments() {
    let patch = small_patch(20, 18);
    let q = cluster_from(&patch, 1);
    assert!(q
        .query("SELECT COUNT(*) FROM Object WHERE qserv_areaspec_circle(0, 0)")
        .is_err());
    assert!(q
        .query("SELECT COUNT(*) FROM Object WHERE qserv_areaspec_circle(0, 0, -1)")
        .is_err());
    assert!(q
        .query("SELECT COUNT(*) FROM Object WHERE qserv_areaspec_circle(0, 0, 500)")
        .is_err());
}

#[test]
fn aggregates_over_empty_chunk_set_keep_sql_semantics() {
    // A restriction that selects no chunks at all (unknown objectId via
    // the secondary index) must still aggregate like SQL: COUNT(*) = 0,
    // SUM/AVG/MIN = NULL — not an all-NULL row from merging nothing.
    let patch = small_patch(60, 19);
    let q = cluster_from(&patch, 2);
    let r = q
        .query("SELECT COUNT(*) FROM Object WHERE objectId = 987654321")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(0)));
    let r = q
        .query("SELECT SUM(ra_PS), AVG(ra_PS), MIN(ra_PS) FROM Object WHERE objectId = 987654321")
        .unwrap();
    assert_eq!(r.rows[0], vec![Value::Null, Value::Null, Value::Null]);
    // Plain selections stay empty.
    let r = q
        .query("SELECT objectId FROM Object WHERE objectId = 987654321")
        .unwrap();
    assert_eq!(r.num_rows(), 0);
    // GROUP BY over nothing yields no groups.
    let r = q
        .query("SELECT chunkId, COUNT(*) FROM Object WHERE objectId = 987654321 GROUP BY chunkId")
        .unwrap();
    assert_eq!(r.num_rows(), 0);
}
