//! Vectorized-vs-interpreted equivalence: the columnar kernels must be
//! bit-identical to the tree-walking interpreter (the semantic oracle) on
//! every statement they accept — same columns, same rows, same row order,
//! NaN and NULL three-valued logic included.

mod common;

use common::{monolithic_db, small_patch};
use proptest::prelude::*;
use qserv_engine::db::Database;
use qserv_engine::exec::{execute_with_mode, ExecMode, ExecPath};
use qserv_engine::schema::{ColumnDef, ColumnType, Schema};
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_sqlparse::parse_select;
use std::cmp::Ordering;
use std::sync::OnceLock;

fn catalog() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| monolithic_db(&small_patch(400, 4242)))
}

/// A table thick with NULLs in every column type, for three-valued-logic
/// edge cases the synthesized catalog never produces.
fn nullable_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut t = Table::new(Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("x", ColumnType::Float),
            ColumnDef::new("k", ColumnType::Int),
            ColumnDef::new("tag", ColumnType::Str),
        ]));
        for i in 0..240i64 {
            let x = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Float((i as f64) * 0.75 - 40.0)
            };
            let k = if i % 7 == 3 {
                Value::Null
            } else {
                Value::Int(i % 9 - 4)
            };
            let tag = if i % 11 == 5 {
                Value::Null
            } else {
                Value::Str(format!("t{}", i % 4))
            };
            t.push_row(vec![Value::Int(i), x, k, tag]).expect("fits");
        }
        t.build_index("id").expect("id indexes");
        let mut db = Database::new();
        db.create_table("T", t);
        db
    })
}

/// Bit-level row equality: `total_cmp` distinguishes NaN payloads and
/// signed zeros, which `==` on floats would paper over.
fn rows_identical(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra
                    .iter()
                    .zip(rb)
                    .all(|(x, y)| x.total_cmp(y) == Ordering::Equal)
        })
}

/// Runs `sql` down both paths and asserts the vectorized result is
/// bit-identical to the interpreted one. The statement must compile —
/// these tests pin the path rather than silently falling back.
fn assert_paths_agree(db: &Database, sql: &str) {
    let stmt = parse_select(sql).unwrap_or_else(|e| panic!("{sql} parses: {e}"));
    let (interp, ipath) = execute_with_mode(db, &stmt, ExecMode::Interpreted)
        .unwrap_or_else(|e| panic!("interpreter {sql}: {e}"));
    assert_eq!(ipath, ExecPath::Interpreted);
    let (vector, vpath) = execute_with_mode(db, &stmt, ExecMode::Vectorized)
        .unwrap_or_else(|e| panic!("{sql} must vectorize: {e}"));
    assert_eq!(vpath, ExecPath::Vectorized);
    assert_eq!(vector.columns, interp.columns, "columns differ for {sql}");
    assert!(
        rows_identical(&vector.rows, &interp.rows),
        "rows differ for {sql}\nvectorized: {:?}\ninterpreted: {:?}",
        vector.rows,
        interp.rows
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Numeric range AND-chains — the fused fast path of the tentpole.
    #[test]
    fn range_chains_agree(
        lon in -10.0f64..370.0,
        w in 0.0f64..90.0,
        lat in -30.0f64..10.0,
        h in 0.0f64..25.0,
        strict in proptest::collection::vec(any::<bool>(), 1..4),
    ) {
        let (ge, le) = (
            if strict[0] { ">" } else { ">=" },
            if strict[strict.len() - 1] { "<" } else { "<=" },
        );
        assert_paths_agree(catalog(), &format!(
            "SELECT objectId, ra_PS, decl_PS FROM Object \
             WHERE ra_PS {ge} {lon} AND ra_PS {le} {} AND decl_PS BETWEEN {lat} AND {}",
            lon + w, lat + h
        ));
    }

    // Spatial-box UDF against the same fused kernel.
    #[test]
    fn spatial_boxes_agree(
        lon in 350.0f64..370.0,
        lat in -9.0f64..7.0,
        w in 0.1f64..12.0,
        h in 0.1f64..6.0,
    ) {
        assert_paths_agree(catalog(), &format!(
            "SELECT objectId FROM Object \
             WHERE qserv_ptInSphericalBox(ra_PS, decl_PS, {lon}, {lat}, {}, {}) = 1",
            lon + w, lat + h
        ));
    }

    // objectId point and IN predicates (the index fast path).
    #[test]
    fn id_predicates_agree(a in 1i64..500, b in 1i64..500, c in 1i64..500) {
        assert_paths_agree(catalog(), &format!(
            "SELECT objectId, ra_PS FROM Object WHERE objectId = {a}"
        ));
        assert_paths_agree(catalog(), &format!(
            "SELECT objectId FROM Object WHERE objectId IN ({a}, {b}, {c})"
        ));
        assert_paths_agree(catalog(), &format!(
            "SELECT objectId FROM Object WHERE objectId NOT IN ({a}, {b})"
        ));
    }

    // General expression programs: functions, arithmetic, OR, NOT.
    #[test]
    fn expression_programs_agree(cut in 15.0f64..30.0, flux in 1e2f64..1e6) {
        assert_paths_agree(catalog(), &format!(
            "SELECT objectId FROM Object WHERE fluxToAbMag(zFlux_PS) < {cut}"
        ));
        assert_paths_agree(catalog(), &format!(
            "SELECT objectId, zFlux_PS + uFlux_SG FROM Object \
             WHERE zFlux_PS > {flux} OR NOT (uFlux_SG <= {flux})"
        ));
    }

    // Aggregation straight off the columns, global and grouped.
    #[test]
    fn aggregates_agree(lon in 0.0f64..300.0, w in 10.0f64..60.0) {
        assert_paths_agree(catalog(), &format!(
            "SELECT COUNT(*), SUM(zFlux_PS), AVG(ra_PS), MIN(decl_PS), MAX(decl_PS) \
             FROM Object WHERE ra_PS BETWEEN {lon} AND {}", lon + w
        ));
        assert_paths_agree(catalog(), &format!(
            "SELECT chunkId, COUNT(*), SUM(zFlux_PS), MIN(ra_PS) FROM Object \
             WHERE ra_PS BETWEEN {lon} AND {} GROUP BY chunkId", lon + w
        ));
    }

    // Random comparisons over the NULL-heavy table: every 3VL outcome of
    // a WHERE must drop the row on both paths alike.
    #[test]
    fn null_threevalued_filters_agree(
        t in -45.0f64..145.0,
        v in -5i64..5,
        cmp in 0usize..4,
    ) {
        let op = ["<", "<=", ">", ">="][cmp];
        let db = nullable_db();
        assert_paths_agree(db, &format!("SELECT id, x, k FROM T WHERE x {op} {t}"));
        assert_paths_agree(db, &format!("SELECT id FROM T WHERE NOT (x {op} {t})"));
        assert_paths_agree(db, &format!(
            "SELECT id, tag FROM T WHERE x {op} {t} OR k = {v}"
        ));
        assert_paths_agree(db, &format!(
            "SELECT id FROM T WHERE x IS NOT NULL AND x {op} {t} AND k IN ({v}, {})",
            v + 2
        ));
    }

    // Aggregates over NULLs: COUNT(col) skips them, COUNT(*) does not,
    // SUM/AVG/MIN/MAX ignore them, and a NULL GROUP BY key forms its own
    // group — on both paths, identically.
    #[test]
    fn null_aggregates_agree(t in -45.0f64..145.0) {
        let db = nullable_db();
        assert_paths_agree(db, &format!(
            "SELECT COUNT(*), COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) \
             FROM T WHERE x < {t} OR x IS NULL"
        ));
        assert_paths_agree(db, &format!(
            "SELECT k, COUNT(*), COUNT(x), SUM(x) FROM T WHERE x < {t} \
             OR x IS NULL GROUP BY k"
        ));
    }
}

/// Deterministic 3VL edge cases, pinned against hand-computed facts so
/// the oracle itself is checked, not just path agreement.
#[test]
fn null_semantics_are_threevalued() {
    let db = nullable_db();
    let run = |sql: &str| {
        assert_paths_agree(db, sql);
        let stmt = parse_select(sql).expect("parses");
        execute_with_mode(db, &stmt, ExecMode::Vectorized)
            .expect("vectorizes")
            .0
    };
    let count = |sql: &str| run(sql).rows[0][0].as_i64().expect("int scalar");

    // 240 rows, x is NULL on the 48 multiples of 5.
    assert_eq!(count("SELECT COUNT(*) FROM T"), 240);
    assert_eq!(count("SELECT COUNT(x) FROM T"), 192);
    assert_eq!(count("SELECT COUNT(*) FROM T WHERE x IS NULL"), 48);

    // UNKNOWN never passes a WHERE: the tautology and its complement
    // both lose exactly the NULL rows.
    assert_eq!(count("SELECT COUNT(*) FROM T WHERE x > 0 OR x <= 0"), 192);
    assert_eq!(
        count("SELECT COUNT(*) FROM T WHERE NOT (x > 0) AND NOT (x <= 0)"),
        0
    );

    // IN over a NULL needle is UNKNOWN, so NULL k never matches; NOT IN
    // likewise excludes the NULLs.
    let in_rows = run("SELECT id FROM T WHERE k IN (-4, 4)").rows.len();
    let not_in_rows = run("SELECT id FROM T WHERE k NOT IN (-4, 4)").rows.len();
    let null_k = count("SELECT COUNT(*) FROM T WHERE k IS NULL");
    assert_eq!(in_rows + not_in_rows + null_k as usize, 240);
}

/// The NULL group is a real group with NULL aggregates over an all-NULL
/// argument column.
#[test]
fn null_group_aggregates() {
    let db = nullable_db();
    let sql = "SELECT k, COUNT(*), SUM(x), MIN(x) FROM T GROUP BY k";
    assert_paths_agree(db, sql);
    let stmt = parse_select(sql).expect("parses");
    let (r, _) = execute_with_mode(db, &stmt, ExecMode::Vectorized).expect("vectorizes");
    // k spans -4..=4 plus the NULL group.
    assert_eq!(r.rows.len(), 10);
    assert!(r.rows.iter().any(|row| row[0] == Value::Null));
    // SUM of zero non-NULL inputs is NULL, never 0.
    let all_null_sum = "SELECT SUM(x) FROM T WHERE x IS NULL";
    assert_paths_agree(db, all_null_sum);
    let stmt = parse_select(all_null_sum).expect("parses");
    let (r, _) = execute_with_mode(db, &stmt, ExecMode::Vectorized).expect("vectorizes");
    assert_eq!(r.rows[0][0], Value::Null);
}

/// Statements the compiler refuses (joins, multi-table FROM) still run —
/// interpreted — under Auto, and error under pinned Vectorized mode.
#[test]
fn uncompilable_statements_fall_back() {
    let db = catalog();
    let sql = "SELECT COUNT(*) FROM Object o1, Object o2 \
               WHERE o1.objectId = o2.objectId AND o1.objectId < 20";
    let stmt = parse_select(sql).expect("parses");
    let (_, path) = execute_with_mode(db, &stmt, ExecMode::Auto).expect("auto runs");
    assert_eq!(path, ExecPath::Interpreted);
    assert!(execute_with_mode(db, &stmt, ExecMode::Vectorized).is_err());
}
