//! Join-path oracle suite: the distributed near-neighbor self-join and
//! the cross-catalog XMatch operator must return *exactly* the rows a
//! brute-force single-node oracle computes over the same catalog —
//! including pairs that straddle chunk and subchunk borders, which only
//! the overlap-subchunk machinery can find. Randomized skies and radii
//! come from proptest; one fixed case runs the whole path under a seeded
//! fabric-fault schedule.

mod common;

use common::{cluster_from, small_patch, sorted_rows};
use proptest::prelude::*;
use qserv::{ClusterBuilder, FabricOp, FaultPlan, Qserv, Value, XMatchSpec};
use qserv_datagen::generate::{ObjectRow, Patch, RefObjectRow};
use qserv_partition::chunker::Chunker;
use qserv_sphgeom::{angular_separation_deg, LonLat};

/// Brute-force near-neighbor self-join: every ordered pair of distinct
/// objects with angular separation strictly below `radius` degrees.
/// O(n²), no partitioning, no overlap tables — the semantic ground truth.
fn oracle_self_pairs(objects: &[ObjectRow], radius: f64) -> Vec<Vec<Value>> {
    let mut pairs = Vec::new();
    for a in objects {
        for b in objects {
            if a.object_id != b.object_id
                && angular_separation_deg(a.ra_ps, a.decl_ps, b.ra_ps, b.decl_ps) < radius
            {
                pairs.push(vec![Value::Int(a.object_id), Value::Int(b.object_id)]);
            }
        }
    }
    pairs
}

/// Brute-force XMatch: for each object, the nearest reference object
/// within `radius` degrees (inclusive, matching the dispatched `<=`),
/// ties broken toward the smaller refObjectId — the same total order the
/// distributed keep-nearest merge fold uses. Objects with no candidate
/// in range are omitted. Rows ascend by objectId, mirroring the merge.
fn oracle_xmatch(objects: &[ObjectRow], refs: &[RefObjectRow], radius: f64) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for o in objects {
        let mut best: Option<(f64, i64)> = None;
        for r in refs {
            let d = angular_separation_deg(o.ra_ps, o.decl_ps, r.ra, r.decl);
            if d <= radius {
                let better = match best {
                    None => true,
                    Some((bd, bid)) => d < bd || (d == bd && r.ref_object_id < bid),
                };
                if better {
                    best = Some((d, r.ref_object_id));
                }
            }
        }
        if let Some((d, rid)) = best {
            rows.push(vec![
                Value::Int(o.object_id),
                Value::Int(rid),
                Value::Float(d),
            ]);
        }
    }
    rows
}

fn pairs_sql(radius: f64) -> String {
    format!(
        "SELECT o1.objectId, o2.objectId FROM Object o1, Object o2 \
         WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius:?} \
         AND o1.objectId != o2.objectId"
    )
}

fn cluster_with_refs(patch: &Patch, refs: &[RefObjectRow], nodes: usize) -> Qserv {
    ClusterBuilder::new(nodes)
        .ref_objects(refs)
        .build(&patch.objects, &patch.sources)
}

#[test]
fn self_join_matches_oracle_and_crosses_chunk_borders() {
    // The case must actually exercise the overlap machinery: scan seeds
    // deterministically for a sky where at least one oracle pair has its
    // endpoints in *different* chunks — a partition-only join (no
    // overlap tables) would miss exactly those pairs. The PT1.1
    // footprint crosses the decl=0 stripe border and an RA chunk
    // border, so a dense-enough sky always yields straddlers.
    let radius = 0.09; // just inside the 0.1° overlap
    let chunker = Chunker::test_small();
    let (patch, want, straddlers) = (5401..5433)
        .find_map(|seed| {
            let patch = small_patch(900, seed);
            let want = oracle_self_pairs(&patch.objects, radius);
            let chunk_of = |oid: i64| {
                let o = &patch.objects[(oid - 1) as usize];
                chunker
                    .locate(&LonLat::from_degrees(o.ra_ps, o.decl_ps))
                    .chunk_id
            };
            let straddlers = want
                .iter()
                .filter(|p| {
                    let (Value::Int(a), Value::Int(b)) = (&p[0], &p[1]) else {
                        panic!("pair columns are ids")
                    };
                    chunk_of(*a) != chunk_of(*b)
                })
                .count();
            (straddlers > 0).then_some((patch, want, straddlers))
        })
        .expect("some seed in 5401..5433 yields a border-straddling pair");
    assert!(straddlers > 0 && want.len() > straddlers);

    let q = cluster_from(&patch, 4);
    let got = q.query(&pairs_sql(radius)).expect("distributed join");
    assert_eq!(sorted_rows(&got.rows), sorted_rows(&want));
}

#[test]
fn xmatch_matches_oracle_bit_for_bit() {
    let patch = small_patch(500, 5402);
    let refs = patch.generate_ref_catalog(5402);
    let q = cluster_with_refs(&patch, &refs, 4);
    let (got, _) = q.xmatch(&XMatchSpec::object_to_ref(0.01)).expect("xmatch");
    assert_eq!(got.columns, vec!["objectId", "refObjectId", "dist"]);
    let want = oracle_xmatch(&patch.objects, &refs, 0.01);
    assert!(want.len() > 100, "most objects have a counterpart in range");
    // The distributed result is already sorted ascending by objectId and
    // the distance arithmetic is shared, so this comparison is *exact* —
    // ordering, ids, and distance bits.
    assert_eq!(got.rows, want);
}

#[test]
fn xmatch_rejects_invalid_radii() {
    let patch = small_patch(50, 5403);
    let refs = patch.generate_ref_catalog(5403);
    let q = cluster_with_refs(&patch, &refs, 2);
    // Beyond the partitioning overlap: candidates would be invisible to
    // the owning chunk, so the operator must refuse rather than silently
    // drop matches.
    let overlap = 0.1;
    let err = q
        .xmatch(&XMatchSpec::object_to_ref(overlap * 2.0))
        .unwrap_err();
    assert!(
        err.to_string().contains("overlap"),
        "error should explain the overlap bound: {err}"
    );
    assert!(q.xmatch(&XMatchSpec::object_to_ref(0.0)).is_err());
    assert!(q.xmatch(&XMatchSpec::object_to_ref(-0.01)).is_err());
    // An unpartitioned right table is rejected at spec validation.
    let mut spec = XMatchSpec::object_to_ref(0.01);
    spec.right = "Filter".to_string();
    assert!(q.xmatch(&spec).is_err());
}

#[test]
fn join_path_survives_fabric_faults_and_leaks_nothing() {
    // Worker failures mid-join: the first writes fail outright and 20%
    // of reads fail transiently. With replication the retried chunks
    // must land on the other replica and both join flavors must still
    // equal the oracle, with no stranded /result/* transactions.
    let patch = small_patch(400, 5404);
    let refs = patch.generate_ref_catalog(5404);
    let q = ClusterBuilder::new(4)
        .replication(2)
        .fault_plan(FaultPlan::new(11))
        .ref_objects(&refs)
        .build(&patch.objects, &patch.sources);
    q.cluster()
        .faults()
        .fail_next(None, Some(FabricOp::Write), 4);
    q.cluster()
        .faults()
        .fail_with_probability(None, Some(FabricOp::Read), 0.2);

    let radius = 0.04;
    let got = q.query(&pairs_sql(radius)).expect("join under faults");
    assert_eq!(
        sorted_rows(&got.rows),
        sorted_rows(&oracle_self_pairs(&patch.objects, radius))
    );

    let (matched, stats) = q
        .xmatch(&XMatchSpec::object_to_ref(0.01))
        .expect("xmatch under faults");
    assert_eq!(matched.rows, oracle_xmatch(&patch.objects, &refs, 0.01));
    assert!(
        stats.injected_faults_observed > 0 || stats.chunks_retried > 0,
        "the fault schedule must actually have exercised the retry path"
    );
    assert!(
        q.cluster().faults().stats().total() > 0,
        "fabric faults must have fired somewhere in the run"
    );
    for (id, server) in q.cluster().servers().iter().enumerate() {
        let leaked = server.file_names("/result/");
        assert!(
            leaked.is_empty(),
            "server {id} leaked result files: {leaked:?}"
        );
    }
}

#[test]
fn join_results_bit_identical_across_dispatch_widths() {
    // Merge-path determinism: whether chunk results arrive serially or
    // from racing dispatcher threads, the reorder buffer (joins) and the
    // commutative keep-nearest fold (xmatch) must make the final tables
    // byte-identical — same row order, same bits.
    let patch = small_patch(450, 5405);
    let refs = patch.generate_ref_catalog(5405);
    let run = |width: usize| {
        let mut q = cluster_with_refs(&patch, &refs, 4);
        q.dispatch_width = width;
        let pairs = q.query(&pairs_sql(0.05)).expect("join");
        let (matched, _) = q.xmatch(&XMatchSpec::object_to_ref(0.008)).expect("xmatch");
        (pairs.rows, matched.rows)
    };
    let serial = run(1);
    for _ in 0..3 {
        assert_eq!(run(8), serial, "dispatch width changed the result bytes");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random skies, random radii: the distributed near-neighbor
    /// self-join over a freshly partitioned cluster always equals the
    /// brute-force O(n²) oracle, for any radius within the overlap.
    #[test]
    fn random_sky_self_join_equals_oracle(
        objects in 80usize..220,
        seed in 1u64..100_000,
        radius in 0.005f64..0.09,
    ) {
        let patch = small_patch(objects, seed);
        let q = cluster_from(&patch, 3);
        let got = q.query(&pairs_sql(radius)).expect("distributed join");
        prop_assert_eq!(
            sorted_rows(&got.rows),
            sorted_rows(&oracle_self_pairs(&patch.objects, radius)),
            "self-join diverged from oracle (objects={}, seed={}, r={})",
            objects, seed, radius
        );
    }

    /// Random two-catalog skies: XMatch against an independently drawn
    /// reference catalog equals the nearest-per-object oracle exactly,
    /// for any radius within the overlap.
    #[test]
    fn random_sky_xmatch_equals_oracle(
        objects in 60usize..180,
        seed in 1u64..100_000,
        ref_seed in 1u64..100_000,
        radius in 0.002f64..0.09,
    ) {
        let patch = small_patch(objects, seed);
        let refs = patch.generate_ref_catalog(ref_seed);
        let q = cluster_with_refs(&patch, &refs, 3);
        let (got, _) = q.xmatch(&XMatchSpec::object_to_ref(radius)).expect("xmatch");
        prop_assert_eq!(
            got.rows,
            oracle_xmatch(&patch.objects, &refs, radius),
            "xmatch diverged from oracle (objects={}, seed={}, ref_seed={}, r={})",
            objects, seed, ref_seed, radius
        );
    }
}
