//! Plan-equivalence property battery: generated queries executed under
//! *every* plan the planner can be forced into (the
//! [`qserv::PlanOverride`] hook enumerates all combinations of
//! index-vs-scan, top-n pushdown, and filter reordering) must return
//! bit-identical results — a plan is an execution strategy, never a
//! semantics change — and the common result must match the monolithic
//! single-engine interpreter oracle.

mod common;

use common::{cluster_from, monolithic_db, small_patch, sorted_rows};
use proptest::prelude::*;
use qserv::{PlanOverride, Qserv};
use qserv_engine::db::Database;
use qserv_engine::exec::execute;
use qserv_sqlparse::parse_select;
use std::sync::OnceLock;

struct Fixture {
    qserv: Qserv,
    local: Database,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let patch = small_patch(600, 4242);
        Fixture {
            qserv: cluster_from(&patch, 4),
            local: monolithic_db(&patch),
        }
    })
}

/// Runs `sql` once per enumerated override plus the planner's own
/// choice: every run must be bit-identical (rows AND order), and the
/// shared result must match the interpreter oracle — exactly when the
/// query is ordered, as a row set otherwise.
fn assert_plan_equivalent(sql: &str, ordered: bool) {
    let f = fixture();
    let reference = {
        let mut q = f.qserv.clone_frontend();
        q.plan_override = None;
        q.query(sql)
            .unwrap_or_else(|e| panic!("planner {sql}: {e}"))
    };
    for ov in PlanOverride::enumerate() {
        let mut q = f.qserv.clone_frontend();
        q.plan_override = Some(ov);
        let r = q.query(sql).unwrap_or_else(|e| panic!("{ov:?} {sql}: {e}"));
        assert_eq!(r, reference, "plan {ov:?} diverged for {sql}");
    }
    let local = execute(&f.local, &parse_select(sql).expect("parses"))
        .unwrap_or_else(|e| panic!("local {sql}: {e}"));
    if ordered {
        assert_eq!(
            reference.rows, local.rows,
            "ordered rows differ from the oracle for {sql}"
        );
    } else {
        assert_eq!(
            sorted_rows(&reference.rows),
            sorted_rows(&local.rows),
            "rows differ from the oracle for {sql}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn point_lookups_under_all_plans(oid in 1i64..600) {
        assert_plan_equivalent(
            &format!("SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = {oid}"),
            false,
        );
    }

    #[test]
    fn in_lists_under_all_plans(
        a in 1i64..600,
        b in 1i64..600,
        c in 1i64..600,
        d in 1i64..1200,
    ) {
        // `d` may miss the catalog entirely: absent keys must not
        // perturb any plan.
        assert_plan_equivalent(
            &format!("SELECT objectId, ra_PS FROM Object WHERE objectId IN ({a}, {b}, {c}, {d})"),
            false,
        );
    }

    #[test]
    fn range_scans_under_all_plans(
        cut in 18.0f64..27.0,
        decl in -7.0f64..7.0,
    ) {
        // Expensive conjunct first: the reordering override has real
        // work to do (or undo).
        assert_plan_equivalent(
            &format!(
                "SELECT objectId FROM Object \
                 WHERE fluxToAbMag(zFlux_PS) < {cut} AND decl_PS < {decl}"
            ),
            false,
        );
    }

    #[test]
    fn topn_under_all_plans(k in 1u64..40, desc in any::<bool>()) {
        // ORDER BY a proven-unique key: pushdown is sound and the final
        // prefix is fully determined, so even the oracle must agree on
        // byte-exact row order.
        assert_plan_equivalent(
            &format!(
                "SELECT objectId, ra_PS, decl_PS FROM Object ORDER BY objectId{} LIMIT {k}",
                if desc { " DESC" } else { "" }
            ),
            true,
        );
    }

    #[test]
    fn filtered_topn_under_all_plans(cut in 19.0f64..26.0, k in 1u64..25) {
        assert_plan_equivalent(
            &format!(
                "SELECT objectId FROM Object \
                 WHERE fluxToAbMag(iFlux_PS) < {cut} ORDER BY objectId DESC LIMIT {k}"
            ),
            true,
        );
    }

    #[test]
    fn aggregates_under_all_plans(a in 1i64..600, b in 1i64..600) {
        // Integer-exact aggregates: bit-identity must hold even when
        // the index path elides chunks from the fold sequence.
        assert_plan_equivalent(
            &format!("SELECT COUNT(*) FROM Object WHERE objectId IN ({a}, {b})"),
            false,
        );
        assert_plan_equivalent(
            "SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId",
            false,
        );
    }
}

#[test]
fn override_enumeration_covers_every_combination() {
    let all = PlanOverride::enumerate();
    assert_eq!(all.len(), 8);
    let mut seen = std::collections::BTreeSet::new();
    for ov in &all {
        seen.insert((ov.use_index, ov.push_topn, ov.reorder));
        assert!(ov.use_index.is_some() && ov.push_topn.is_some() && ov.reorder.is_some());
    }
    assert_eq!(seen.len(), 8, "enumeration must not repeat combinations");
}

#[test]
fn override_hook_actually_changes_the_plan() {
    let f = fixture();
    let sql = "SELECT ra_PS FROM Object WHERE objectId = 77";
    let plan_of = |ov: Option<PlanOverride>| {
        let mut q = f.qserv.clone_frontend();
        q.plan_override = ov;
        let table = q.explain_table(sql).expect("explain");
        table
            .rows
            .iter()
            .find(|r| r[0].to_string().contains("access_path"))
            .expect("access_path row")[1]
            .to_string()
    };
    let forced_scan = plan_of(Some(PlanOverride {
        use_index: Some(false),
        push_topn: Some(false),
        reorder: Some(false),
    }));
    let forced_index = plan_of(Some(PlanOverride {
        use_index: Some(true),
        push_topn: Some(false),
        reorder: Some(false),
    }));
    assert!(forced_scan.contains("full_scan"), "{forced_scan}");
    assert!(forced_index.contains("index_lookup"), "{forced_index}");
}
