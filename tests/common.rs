//! Shared fixtures for the integration tests: a synthesized PT1.1-style
//! patch, a loaded cluster, and a monolithic single-engine reference
//! database for distributed-vs-local equivalence checks.
//!
//! Each test target compiles its own copy, so helpers unused by a given
//! target are expected.
#![allow(dead_code)]

use qserv::loader::{object_schema, source_schema, ClusterBuilder};
use qserv::{Chunker, Qserv};
use qserv_datagen::generate::{CatalogConfig, Patch};
use qserv_engine::db::Database;
use qserv_engine::table::Table;
use qserv_engine::value::Value;
use qserv_sphgeom::LonLat;

/// Synthesizes a small deterministic patch.
pub fn small_patch(objects: usize, seed: u64) -> Patch {
    Patch::generate(&CatalogConfig::small(objects, seed))
}

/// Builds a running cluster over `nodes` nodes from a patch.
pub fn cluster_from(patch: &Patch, nodes: usize) -> Qserv {
    ClusterBuilder::new(nodes).build(&patch.objects, &patch.sources)
}

/// Builds a *monolithic* reference database: the same rows as one
/// un-partitioned `Object`/`Source` pair on a single engine, with the
/// same chunkId/subChunkId bookkeeping columns the loader adds.
pub fn monolithic_db(patch: &Patch) -> Database {
    let chunker = Chunker::test_small();
    let mut object = Table::new(object_schema());
    for o in &patch.objects {
        let loc = chunker.locate(&LonLat::from_degrees(o.ra_ps, o.decl_ps));
        let mut row = vec![
            Value::Int(o.object_id),
            Value::Float(o.ra_ps),
            Value::Float(o.decl_ps),
        ];
        for f in o.flux_ps {
            row.push(Value::Float(f));
        }
        row.push(Value::Float(o.u_flux_sg));
        row.push(Value::Float(o.u_radius_ps));
        row.push(Value::Int(loc.chunk_id as i64));
        row.push(Value::Int(loc.subchunk_id as i64));
        object.push_row(row).expect("schema matches");
    }
    object.build_index("objectId").expect("objectId indexes");

    let mut source = Table::new(source_schema());
    for s in &patch.sources {
        // Child rows co-locate with their object, as the loader does.
        let o = &patch.objects[(s.object_id - 1) as usize];
        let loc = chunker.locate(&LonLat::from_degrees(o.ra_ps, o.decl_ps));
        source
            .push_row(vec![
                Value::Int(s.source_id),
                Value::Int(s.object_id),
                Value::Float(s.ra),
                Value::Float(s.decl),
                Value::Float(s.tai_mid_point),
                Value::Float(s.psf_flux),
                Value::Float(s.psf_flux_err),
                Value::Int(loc.chunk_id as i64),
                Value::Int(loc.subchunk_id as i64),
            ])
            .expect("schema matches");
    }
    source.build_index("objectId").expect("objectId indexes");

    let mut db = Database::new();
    db.create_table("Object", object);
    db.create_table("Source", source);
    db
}

/// Sorts result rows lexicographically for order-insensitive comparison.
pub fn sorted_rows(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out = rows.to_vec();
    out.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    out
}

/// Compares two numeric values within a relative tolerance (distributed
/// float summation reassociates, so exact equality is too strict for
/// SUM/AVG).
pub fn approx_eq(a: &Value, b: &Value, rel: f64) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (x, y) => match (x.as_f64(), y.as_f64()) {
            (Some(x), Some(y)) => {
                let scale = x.abs().max(y.abs()).max(1e-12);
                (x - y).abs() / scale <= rel
            }
            _ => x == y,
        },
    }
}
