//! Property-based distributed-vs-local equivalence: randomized spatial
//! boxes, radii, flux cuts and id sets must all agree with a monolithic
//! single-engine execution. One cluster is built per process and reused
//! across cases.

mod common;

use common::{cluster_from, monolithic_db, small_patch, sorted_rows};
use proptest::prelude::*;
use qserv::Qserv;
use qserv_datagen::generate::Patch;
use qserv_engine::db::Database;
use qserv_engine::exec::execute;
use qserv_sqlparse::parse_select;
use std::sync::OnceLock;

struct Fixture {
    qserv: Qserv,
    local: Database,
    patch: Patch,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let patch = small_patch(700, 777);
        Fixture {
            qserv: cluster_from(&patch, 4),
            local: monolithic_db(&patch),
            patch,
        }
    })
}

/// Distributed and local rows must be identical (order-insensitive).
fn assert_equivalent(sql: &str) {
    let f = fixture();
    let distributed = f
        .qserv
        .query(sql)
        .unwrap_or_else(|e| panic!("distributed {sql}: {e}"));
    let local = execute(&f.local, &parse_select(sql).expect("parses"))
        .unwrap_or_else(|e| panic!("local {sql}: {e}"));
    assert_eq!(
        sorted_rows(&distributed.rows),
        sorted_rows(&local.rows),
        "rows differ for {sql}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spatial_box_counts(
        // Boxes across and beyond the PT1.1 footprint, including
        // wrapping ones.
        lon in 350.0f64..370.0,
        lat in -9.0f64..7.0,
        w in 0.1f64..12.0,
        h in 0.1f64..6.0,
    ) {
        // Distributed areaspec vs local explicit UDF predicate: both
        // reduce to the same ptInSphericalBox row test.
        let f = fixture();
        let d = f.qserv.query(&format!(
            "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box({lon}, {lat}, {}, {})",
            lon + w, lat + h
        )).expect("distributed");
        let l = execute(&f.local, &parse_select(&format!(
            "SELECT COUNT(*) FROM Object \
             WHERE qserv_ptInSphericalBox(ra_PS, decl_PS, {lon}, {lat}, {}, {}) = 1",
            lon + w, lat + h
        )).expect("parses")).expect("local");
        prop_assert_eq!(d.scalar(), l.scalar());
    }

    #[test]
    fn near_neighbor_radii(radius in 0.005f64..0.09) {
        // Any radius below the 0.1° overlap must be exact.
        assert_equivalent(&format!(
            "SELECT count(*) FROM Object o1, Object o2 \
             WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {radius} \
             AND o1.objectId != o2.objectId"
        ));
    }

    #[test]
    fn flux_cut_selections(cut in 18.0f64..27.0) {
        assert_equivalent(&format!(
            "SELECT objectId FROM Object WHERE fluxToAbMag(zFlux_PS) < {cut}"
        ));
    }

    #[test]
    fn object_id_point_lookups(oid in 1i64..700) {
        assert_equivalent(&format!(
            "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = {oid}"
        ));
        assert_equivalent(&format!(
            "SELECT sourceId, taiMidPoint FROM Source WHERE objectId = {oid}"
        ));
    }

    #[test]
    fn id_in_lists(a in 1i64..700, b in 1i64..700, c in 1i64..2000) {
        assert_equivalent(&format!(
            "SELECT objectId FROM Object WHERE objectId IN ({a}, {b}, {c})"
        ));
    }

    #[test]
    fn grouped_aggregates_over_cuts(cut in 19.0f64..26.0) {
        let f = fixture();
        let sql = format!(
            "SELECT chunkId, COUNT(*), SUM(uFlux_SG) FROM Object \
             WHERE fluxToAbMag(iFlux_PS) < {cut} GROUP BY chunkId"
        );
        let d = f.qserv.query(&sql).expect("distributed");
        let l = execute(&f.local, &parse_select(&sql).expect("parses")).expect("local");
        prop_assert_eq!(d.num_rows(), l.num_rows(), "group count for {}", sql);
        // Compare per-group with float tolerance (summation order differs).
        let key = |rows: &[Vec<qserv::Value>]| {
            let mut m: Vec<(i64, i64, f64)> = rows
                .iter()
                .map(|r| (
                    r[0].as_i64().expect("chunkId"),
                    r[1].as_i64().expect("count"),
                    r[2].as_f64().unwrap_or(f64::NAN),
                ))
                .collect();
            m.sort_by_key(|t| t.0);
            m
        };
        for (dg, lg) in key(&d.rows).iter().zip(key(&l.rows).iter()) {
            prop_assert_eq!(dg.0, lg.0);
            prop_assert_eq!(dg.1, lg.1);
            prop_assert!((dg.2 - lg.2).abs() <= 1e-9 * dg.2.abs().max(1.0));
        }
    }
}

// Chaos equivalence: whatever patch we load and whatever transient-fault
// schedule the fabric draws, a replication≥2 cluster must merge results
// identical to its fault-free twin — fault injection may cost retries,
// never rows. Each case builds two small clusters, so the case count is
// kept low.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn replicated_cluster_masks_seeded_faults(
        objects in 120usize..260,
        patch_seed in 1u64..10_000,
        fault_seed in 1u64..10_000,
        read_p in 0.05f64..0.25,
        write_p in 0.0f64..0.15,
    ) {
        use qserv::{ClusterBuilder, FabricOp, FaultPlan};

        let patch = small_patch(objects, patch_seed);
        let build = || ClusterBuilder::new(3)
            .replication(2)
            .fault_plan(FaultPlan::new(fault_seed))
            .build(&patch.objects, &patch.sources);
        let clean = build();
        let chaotic = build();
        chaotic.cluster().faults().fail_with_probability(
            None, Some(FabricOp::Read), read_p);
        chaotic.cluster().faults().fail_with_probability(
            None, Some(FabricOp::Write), write_p);

        // Exact-valued queries only: COUNT and row selections merge
        // identically regardless of chunk completion order.
        let queries = [
            "SELECT COUNT(*) FROM Object".to_string(),
            format!("SELECT objectId, ra_PS, decl_PS FROM Object \
                     WHERE objectId = {}", 1 + patch_seed as i64 % objects as i64),
            "SELECT objectId FROM Object \
             WHERE fluxToAbMag(zFlux_PS) < 24.0".to_string(),
        ];
        for sql in &queries {
            let expected = clean.query(sql).expect("fault-free run");
            let got = chaotic.query(sql).expect("chaotic run");
            prop_assert_eq!(
                sorted_rows(&got.rows),
                sorted_rows(&expected.rows),
                "fault seed {} diverged for {}", fault_seed, sql
            );
        }
        // No stranded result transactions on any worker, clean or not.
        for server in chaotic.cluster().servers() {
            prop_assert!(server.file_names("/result/").is_empty());
        }
    }
}

#[test]
fn fixture_is_nontrivial() {
    let f = fixture();
    assert!(f.patch.objects.len() == 700);
    assert!(f.qserv.placement().chunks().len() >= 2);
}
