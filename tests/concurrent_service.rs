//! The concurrent query service, proven three ways:
//!
//! 1. **Multi-client stress** — N client threads × M mixed queries over
//!    real TCP through the proxy. Every concurrent result must equal the
//!    serial oracle, no `/result/*` files may leak, and admission
//!    backpressure (`BUSY`) must be survivable by simple retry.
//! 2. **Fairness property** — random arrival schedules replayed against
//!    the pure [`FairScheduler`] on a virtual clock: every admitted
//!    query completes (no starvation), and under scan saturation the
//!    interactive p95 latency stays within 3× the unloaded latency —
//!    while the FIFO baseline starves (the paper's Figure 14 and its
//!    fix).
//! 3. **Cancellation under chaos** — `KILL` against an in-flight scan
//!    with fabric delay faults active: the query stops at a chunk
//!    boundary, no result files are stranded, the reply channel
//!    resolves, the trace still validates, and the service keeps
//!    serving.
//!
//! The stress test's seed comes from `QSERV_STRESS_SEED` (default 1) so
//! CI can run a seed matrix; set `QSERV_SERVICE_METRICS_OUT` to a path
//! to export the service metrics snapshot as JSON after the stress run.

mod common;

use common::{small_patch, sorted_rows};
use qserv::service::{names, FairScheduler, QueryClass, ServiceConfig};
use qserv::{
    ClusterBuilder, FabricOp, FaultPlan, KillOutcome, Qserv, QservError, QueryService, QueryState,
    Value,
};
use qserv_proxy::client::ClientError;
use qserv_proxy::{ProxyClient, ProxyServer, RetryPolicy};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// Mixed workload: interactive point/region lookups and full scans, all
/// chosen so repeated distributed runs are bit-identical regardless of
/// merge order (integer counts, exact row selections — no global float
/// folds that could reassociate).
const STRESS_QUERIES: [&str; 5] = [
    "SELECT COUNT(*) FROM Object",
    "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = 123",
    "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(0.0, -2.0, 2.0, 2.0)",
    "SELECT chunkId, COUNT(*) FROM Object GROUP BY chunkId",
    "SELECT objectId, ra_PS FROM Object ORDER BY ra_PS DESC LIMIT 5",
];

/// xorshift64*: tiny, seedable, good enough to mix query choices.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn stress_seed() -> u64 {
    std::env::var("QSERV_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn assert_no_result_leaks(q: &Qserv, context: &str) {
    for (id, server) in q.cluster().servers().iter().enumerate() {
        let leaked = server.file_names("/result/");
        assert!(
            leaked.is_empty(),
            "{context}: server {id} leaked result files: {leaked:?}"
        );
    }
}

// ---------------------------------------------------------------------
// 1. Multi-client stress over TCP
// ---------------------------------------------------------------------

#[test]
fn concurrent_sessions_match_serial_oracle() {
    const CLIENTS: usize = 6;
    const QUERIES_PER_CLIENT: usize = 8;

    let patch = small_patch(700, 42);
    let qserv = Arc::new(ClusterBuilder::new(4).build(&patch.objects, &patch.sources));

    // The serial oracle: each distinct query once, before any
    // concurrency exists.
    let oracle: HashMap<&str, Vec<Vec<Value>>> = STRESS_QUERIES
        .iter()
        .map(|&sql| {
            let r = qserv.query(sql).expect("serial oracle run");
            (sql, sorted_rows(&r.rows))
        })
        .collect();

    let server = ProxyServer::start(Arc::clone(&qserv), "127.0.0.1:0").expect("proxy binds");
    let addr = server.addr();
    let seed = stress_seed();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let oracle = &oracle;
                scope.spawn(move || {
                    let mut client = ProxyClient::connect(addr).expect("client connects");
                    let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(c as u64));
                    for i in 0..QUERIES_PER_CLIENT {
                        let sql = STRESS_QUERIES[rng.next() as usize % STRESS_QUERIES.len()];
                        // BUSY is a legitimate answer under load: back
                        // off as the server suggests and resubmit.
                        let rows = loop {
                            match client.query(sql) {
                                Ok((table, _)) => break table.rows,
                                Err(ClientError::Busy { retry_after_ms }) => {
                                    std::thread::sleep(Duration::from_millis(retry_after_ms))
                                }
                                Err(e) => panic!("client {c} query {i} ({sql}): {e}"),
                            }
                        };
                        assert_eq!(
                            &sorted_rows(&rows),
                            &oracle[sql],
                            "client {c} query {i} diverged from the oracle: {sql}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // Every query the concurrent run dispatched must have consumed its
    // result transactions.
    assert_no_result_leaks(&qserv, "stress run");

    // The service saw the whole workload.
    let snap = server.service().metrics_snapshot();
    let admitted = snap.counter(names::ADMITTED_INTERACTIVE) + snap.counter(names::ADMITTED_SCAN);
    assert_eq!(
        snap.counter(names::COMPLETED),
        admitted,
        "every admitted query completed"
    );
    assert_eq!(
        admitted as usize,
        CLIENTS * QUERIES_PER_CLIENT,
        "nothing was rejected at the default queue capacity"
    );

    // Optional CI artifact: the service instruments as JSON.
    if let Ok(path) = std::env::var("QSERV_SERVICE_METRICS_OUT") {
        std::fs::write(&path, snap.to_json()).expect("write metrics artifact");
    }
}

#[test]
fn busy_backpressure_is_survivable_by_retry() {
    let patch = small_patch(300, 43);
    let qserv = Arc::new(ClusterBuilder::new(2).build(&patch.objects, &patch.sources));
    let expected = qserv.query(STRESS_QUERIES[0]).expect("oracle");

    // A deliberately tiny service: one executor, one queue slot per
    // class, so concurrent clients *must* hit BUSY.
    let service = Arc::new(QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig {
            max_concurrent: 1,
            max_scan_concurrent: 1,
            queue_capacity: 1,
            retry_after: Duration::from_millis(5),
            ..ServiceConfig::default()
        },
    ));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("proxy binds");
    let addr = server.addr();

    let busy_total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = ProxyClient::connect(addr).expect("client connects");
                    let mut busy = 0usize;
                    for i in 0..4 {
                        loop {
                            match client.query(STRESS_QUERIES[0]) {
                                Ok((table, _)) => {
                                    assert_eq!(
                                        table.scalar(),
                                        expected.scalar(),
                                        "client {c} query {i} wrong under backpressure"
                                    );
                                    break;
                                }
                                Err(ClientError::Busy { retry_after_ms }) => {
                                    busy += 1;
                                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                                }
                                Err(e) => panic!("client {c}: {e}"),
                            }
                        }
                    }
                    busy
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });

    // 4 clients × 4 queries against a 1-deep queue: rejections must
    // have happened, and the rejected counter must agree.
    let snap = server.service().metrics_snapshot();
    let rejected = snap.counter(names::REJECTED_INTERACTIVE) + snap.counter(names::REJECTED_SCAN);
    assert!(busy_total > 0, "a 1-deep queue must reject under 4 clients");
    assert_eq!(rejected as usize, busy_total, "BUSY frames == rejections");
    assert_no_result_leaks(&qserv, "backpressure run");
}

#[test]
fn configured_retry_policy_absorbs_busy_transparently() {
    // Same 1-deep service as above, but clients use the builder's
    // retry policy instead of a hand-rolled loop: query_with_retry
    // never surfaces a BUSY within its budget.
    let patch = small_patch(300, 45);
    let qserv = Arc::new(ClusterBuilder::new(2).build(&patch.objects, &patch.sources));
    let expected = qserv.query(STRESS_QUERIES[0]).expect("oracle");
    let service = Arc::new(QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig {
            max_concurrent: 1,
            max_scan_concurrent: 1,
            queue_capacity: 1,
            retry_after: Duration::from_millis(2),
            ..ServiceConfig::default()
        },
    ));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("proxy binds");
    let addr = server.addr();

    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let expected = &expected;
            scope.spawn(move || {
                // Distinct jitter seeds per client, generous budget.
                let policy = RetryPolicy {
                    max_retries: 200,
                    ..RetryPolicy::seeded(c + 1)
                };
                let mut client = ProxyClient::builder()
                    .retry_policy(policy)
                    .connect(addr)
                    .expect("client connects");
                assert_eq!(client.retry_policy().max_retries, 200);
                for i in 0..4 {
                    let (table, _) = client
                        .query_with_retry(STRESS_QUERIES[0])
                        .unwrap_or_else(|e| panic!("client {c} query {i}: {e}"));
                    assert_eq!(table.scalar(), expected.scalar());
                }
            });
        }
    });
    assert_no_result_leaks(&qserv, "retry-policy run");
}

#[test]
fn kill_and_status_work_across_sessions() {
    // Session A runs a slow scan; session B sees it in STATUS and kills
    // it; A gets a clean `cancelled` error and its session stays usable.
    let patch = small_patch(700, 44);
    let mut q = ClusterBuilder::new(4)
        .fault_plan(FaultPlan::new(11))
        .build(&patch.objects, &patch.sources);
    // One dispatcher thread + a per-read delay: the scan is slow enough
    // for session B to catch it mid-flight.
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(25));

    // Few chunks on this small cluster: classify every dispatching
    // query as a scan so STATUS shows A's COUNT(*) under that class.
    let service = Arc::new(QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig {
            interactive_chunk_threshold: 0,
            ..ServiceConfig::default()
        },
    ));
    let server = ProxyServer::start_with_service(service, "127.0.0.1:0").expect("proxy binds");
    let addr = server.addr();

    let scanner = std::thread::spawn(move || {
        let mut a = ProxyClient::connect(addr).expect("session A connects");
        let outcome = a.query("SELECT COUNT(*) FROM Object");
        // Either the kill landed (server error mentioning cancellation)
        // or the scan won the race and completed; both leave the
        // session alive for the next statement.
        let killed = match outcome {
            Err(ClientError::Server(msg)) => {
                assert!(msg.contains("cancelled"), "unexpected error: {msg}");
                true
            }
            Ok(_) => false,
            Err(e) => panic!("session A: {e}"),
        };
        let (table, _) = a
            .query("SELECT objectId FROM Object WHERE objectId = 1")
            .expect("session A survives its killed query");
        assert_eq!(table.num_rows(), 1);
        killed
    });

    let mut b = ProxyClient::connect(addr).expect("session B connects");
    // Poll STATUS until A's scan shows up as running (or terminal, if
    // we lost the race).
    let mut qid = None;
    for _ in 0..500 {
        let status = b.status().expect("STATUS");
        let running = status.rows.iter().find(|row| {
            matches!(&row[2], Value::Str(s) if s == "running")
                && matches!(&row[1], Value::Str(c) if c == "scan")
        });
        if let Some(row) = running {
            qid = Some(match row[0] {
                Value::Int(i) => i as u64,
                _ => unreachable!("qid column is int"),
            });
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let qid = qid.expect("session B never saw the scan running");
    let outcome = b.kill(qid).expect("KILL");
    assert!(
        outcome == "cancelling" || outcome == "finished",
        "kill of a running scan answered {outcome:?}"
    );
    // An unknown qid is reported, not an error.
    assert_eq!(b.kill(999_999).expect("KILL unknown"), "unknown");
    scanner.join().expect("session A thread");
    assert_no_result_leaks(&qserv, "cross-session kill");
}

// ---------------------------------------------------------------------
// 2. Fairness property on a virtual clock
// ---------------------------------------------------------------------

/// One query in the scheduling simulation.
#[derive(Clone, Copy, Debug)]
struct SimQuery {
    class: QueryClass,
    /// Scheduling cost (chunk count) the ticket carries.
    cost: u64,
    /// Execution time once started, virtual ms.
    exec_ms: u64,
    /// Arrival time, virtual ms.
    arrive_ms: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct SimOutcome {
    admitted: bool,
    start_ms: u64,
    finish_ms: u64,
}

/// Replays an arrival schedule against the pure [`FairScheduler`] on a
/// virtual clock: a discrete-event loop where starting a query occupies
/// its slot for `exec_ms`. Returns one outcome per input query.
fn simulate(cfg: &ServiceConfig, queries: &[SimQuery]) -> Vec<SimOutcome> {
    let mut sched = FairScheduler::new(cfg);
    let mut outcomes = vec![SimOutcome::default(); queries.len()];

    let mut arrivals: Vec<usize> = (0..queries.len()).collect();
    arrivals.sort_by_key(|&i| (queries[i].arrive_ms, i));
    let mut next_arrival = 0usize;

    // Completions as a min-heap of (finish_ms, query index).
    let mut running: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut now = 0u64;

    loop {
        // Advance to the next event: an arrival or a completion.
        let next_arr = arrivals.get(next_arrival).map(|&i| queries[i].arrive_ms);
        let next_done = running.peek().map(|r| r.0 .0);
        now = match (next_arr, next_done) {
            (Some(a), Some(d)) => a.min(d).max(now),
            (Some(a), None) => a.max(now),
            (None, Some(d)) => d.max(now),
            (None, None) => break,
        };

        // Completions first: they free the slots arrivals may take.
        while running.peek().is_some_and(|r| r.0 .0 <= now) {
            let std::cmp::Reverse((_, i)) = running.pop().expect("peeked");
            sched.complete(queries[i].class);
            outcomes[i].finish_ms = now;
        }
        while next_arrival < arrivals.len() && queries[arrivals[next_arrival]].arrive_ms <= now {
            let i = arrivals[next_arrival];
            next_arrival += 1;
            outcomes[i].admitted = sched.admit(i as u64, queries[i].class, queries[i].cost);
        }
        // Drain every ticket the scheduler will start at this instant.
        while let Some(t) = sched.next_ticket() {
            let i = t.qid as usize;
            outcomes[i].start_ms = now;
            running.push(std::cmp::Reverse((now + queries[i].exec_ms, i)));
        }
    }
    outcomes
}

fn p95(mut v: Vec<u64>) -> u64 {
    assert!(!v.is_empty());
    v.sort_unstable();
    let idx = ((v.len() as f64) * 0.95).ceil() as usize - 1;
    v[idx.min(v.len() - 1)]
}

/// The ISSUE acceptance scenario: scan saturation (more scans than the
/// cap admits, all long-running) plus 20 simultaneous interactive
/// queries. Returns the interactive latencies (arrival → finish).
fn saturated_latencies(cfg: &ServiceConfig) -> Vec<u64> {
    const INTERACTIVE_EXEC_MS: u64 = 100;
    let mut queries = Vec::new();
    // Ten huge scans arrive first — more than `max_concurrent`, so an
    // unscheduled FIFO fills every slot with them.
    for _ in 0..10 {
        queries.push(SimQuery {
            class: QueryClass::Scan,
            cost: 1_000,
            exec_ms: 60_000,
            arrive_ms: 0,
        });
    }
    for _ in 0..20 {
        queries.push(SimQuery {
            class: QueryClass::Interactive,
            cost: 1,
            exec_ms: INTERACTIVE_EXEC_MS,
            arrive_ms: 1,
        });
    }
    let outcomes = simulate(cfg, &queries);
    outcomes
        .iter()
        .zip(&queries)
        .filter(|(o, q)| q.class == QueryClass::Interactive && o.admitted)
        .map(|(o, q)| o.finish_ms - q.arrive_ms)
        .collect()
}

#[test]
fn interactive_p95_bounded_under_scan_saturation() {
    // 9 slots, scans capped at 2 → 7 slots always open to interactive:
    // 20 queries drain in three waves, so the worst wave finishes at
    // 3 × exec and the p95 bound of the acceptance criterion holds.
    let cfg = ServiceConfig {
        max_concurrent: 9,
        max_scan_concurrent: 2,
        ..ServiceConfig::default()
    };
    let latencies = saturated_latencies(&cfg);
    assert_eq!(latencies.len(), 20, "every interactive query completed");
    let p = p95(latencies);
    assert!(
        p <= 3 * 100,
        "interactive p95 {p} ms exceeds 3× the unloaded 100 ms latency"
    );
}

#[test]
fn fifo_baseline_starves_interactive_queries() {
    // The identical workload through the unscheduled FIFO baseline:
    // the scans grab all the slots and the interactive queries wait
    // for a 60-second scan to finish — Figure 14's starvation.
    let cfg = ServiceConfig {
        max_concurrent: 9,
        max_scan_concurrent: 2,
        fifo: true,
        ..ServiceConfig::default()
    };
    let latencies = saturated_latencies(&cfg);
    assert_eq!(latencies.len(), 20);
    let p = p95(latencies);
    assert!(
        p >= 60_000,
        "FIFO should starve interactive queries behind the scans, p95 {p} ms"
    );
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

    /// No starvation, ever: for random mixed arrival schedules, every
    /// admitted query eventually starts and finishes, and queries
    /// *within a class* start in arrival order.
    #[test]
    fn every_admitted_query_completes(
        seed in 0u64..10_000,
        n in 1usize..40,
        max_concurrent in 1usize..6,
        max_scan in 1usize..6,
    ) {
        let mut rng = Rng::new(seed);
        let queries: Vec<SimQuery> = (0..n)
            .map(|_| {
                let scan = rng.next().is_multiple_of(3);
                SimQuery {
                    class: if scan { QueryClass::Scan } else { QueryClass::Interactive },
                    cost: if scan { 50 + rng.next() % 2_000 } else { 1 + rng.next() % 8 },
                    exec_ms: 1 + rng.next() % (if scan { 5_000 } else { 50 }),
                    arrive_ms: rng.next() % 1_000,
                }
            })
            .collect();
        let cfg = ServiceConfig {
            max_concurrent,
            max_scan_concurrent: max_scan.min(max_concurrent),
            queue_capacity: 64,
            ..ServiceConfig::default()
        };
        let outcomes = simulate(&cfg, &queries);
        let mut starts: [Vec<(u64, u64)>; 2] = [Vec::new(), Vec::new()];
        for (i, (o, q)) in outcomes.iter().zip(&queries).enumerate() {
            proptest::prop_assert!(o.admitted, "capacity 64 admits everything here");
            proptest::prop_assert!(
                o.finish_ms >= o.start_ms && o.start_ms >= q.arrive_ms,
                "query {i} never ran: {o:?}"
            );
            proptest::prop_assert_eq!(o.finish_ms - o.start_ms, q.exec_ms);
            let c = if q.class == QueryClass::Scan { 1 } else { 0 };
            starts[c].push((q.arrive_ms, o.start_ms));
        }
        // Within a class the queue is FIFO: a later arrival never
        // starts before an earlier one (equal arrivals tie-break by
        // admission order, which the sort preserves).
        for class_starts in &mut starts {
            class_starts.sort_by_key(|&(arrive, _)| arrive);
            for w in class_starts.windows(2) {
                proptest::prop_assert!(
                    w[0].1 <= w[1].1,
                    "within-class arrival order violated: {w:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Cancellation under chaos
// ---------------------------------------------------------------------

#[test]
fn kill_under_fabric_faults_leaves_no_residue() {
    let patch = small_patch(700, 45);
    let mut q = ClusterBuilder::new(4)
        .replication(2)
        .fault_plan(FaultPlan::new(21))
        .build(&patch.objects, &patch.sources);
    // Serial dispatch + a 40 ms read delay per chunk keeps the scan in
    // flight for well over 100 ms, so the kill lands mid-dispatch.
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(40));

    let service = QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig {
            max_concurrent: 2,
            // This test cluster has few chunks, so force every
            // chunk-dispatching query into the scan class.
            interactive_chunk_threshold: 0,
            ..ServiceConfig::default()
        },
    );
    let handle = service
        .submit_traced("SELECT COUNT(*) FROM Object", "chaos.kill")
        .expect("scan admitted");
    let qid = handle.qid;
    assert_eq!(handle.class, QueryClass::Scan);

    // Wait for it to actually start, then kill it.
    for _ in 0..500 {
        let running = service
            .status()
            .iter()
            .any(|s| s.qid == qid && s.state == QueryState::Running);
        if running {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let killed_at = std::time::Instant::now();
    let outcome = service.kill(qid);
    assert!(
        matches!(outcome, KillOutcome::Cancelling | KillOutcome::Finished),
        "kill answered {outcome:?}"
    );

    // The reply channel must resolve — a kill may never wedge the
    // merge pipeline — and promptly: cancellation is checked at every
    // chunk boundary, so one delayed chunk bounds the stop latency.
    let reply = handle.wait();
    assert!(
        killed_at.elapsed() < Duration::from_secs(10),
        "kill took {:?} to unwind",
        killed_at.elapsed()
    );
    match (&outcome, &reply.result) {
        (KillOutcome::Cancelling, Err(QservError::Cancelled)) => {}
        // The scan can win the race at the last chunk boundary.
        (_, Ok(_)) => {}
        (o, Err(e)) => panic!("kill outcome {o:?} but query failed with: {e}"),
    }
    // The trace is present even for the cancelled run, and well-formed.
    let trace = reply.trace.as_ref().expect("traced submission has a trace");
    trace.validate().expect("killed-query trace validates");

    // Nothing stranded on the fabric: every result transaction the
    // cancelled dispatch opened was consumed or scrubbed.
    assert_no_result_leaks(&qserv, "kill under delay faults");

    // The registry agrees, and the service still serves.
    let state = service
        .status()
        .iter()
        .find(|s| s.qid == qid)
        .map(|s| s.state)
        .expect("killed query still in STATUS");
    assert!(
        state == QueryState::Cancelled || state == QueryState::Done,
        "terminal state {state:?}"
    );
    qserv.cluster().faults().clear();
    let after = service
        .submit("SELECT COUNT(*) FROM Object")
        .expect("service alive after kill")
        .wait();
    let (rows, _) = after.result.expect("post-kill query succeeds");
    assert_eq!(rows.scalar(), Some(&Value::Int(700)));
    assert_no_result_leaks(&qserv, "post-kill query");
}

#[test]
fn kill_of_a_queued_query_is_immediate() {
    let patch = small_patch(300, 46);
    let mut q = ClusterBuilder::new(2)
        .fault_plan(FaultPlan::new(22))
        .build(&patch.objects, &patch.sources);
    q.dispatch_width = 1;
    let qserv = Arc::new(q);
    qserv
        .cluster()
        .faults()
        .delay(None, Some(FabricOp::Read), Duration::from_millis(10));

    // One executor: the second submission is necessarily queued.
    let service = QueryService::start(
        Arc::clone(&qserv),
        ServiceConfig {
            max_concurrent: 1,
            ..ServiceConfig::default()
        },
    );
    let first = service
        .submit("SELECT COUNT(*) FROM Object")
        .expect("first admitted");
    let second = service
        .submit("SELECT COUNT(*) FROM Object")
        .expect("second admitted");

    let second_qid = second.qid;
    assert_eq!(service.kill(second_qid), KillOutcome::CancelledQueued);
    let reply = second.wait();
    assert!(
        matches!(reply.result, Err(QservError::Cancelled)),
        "queued kill must resolve as Cancelled"
    );
    assert_eq!(reply.run, Duration::ZERO, "it never ran");
    // Killing it again reports the terminal state.
    assert_eq!(service.kill(second_qid), KillOutcome::Finished);

    let (rows, _) = first.wait().result.expect("first query unaffected");
    assert_eq!(rows.scalar(), Some(&Value::Int(300)));
    assert_no_result_leaks(&qserv, "queued kill");
}
