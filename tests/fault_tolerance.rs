//! Fault tolerance: replica failover, unreplicated failure reporting,
//! and concurrent query safety.

mod common;

use common::{cluster_from, small_patch};
use qserv::{ClusterBuilder, PlacementStrategy, QservError, Value};

#[test]
fn replicated_cluster_survives_node_loss() {
    let patch = small_patch(400, 61);
    let q = ClusterBuilder::new(4)
        .replication(2)
        .build(&patch.objects, &patch.sources);
    let before = q.query("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(before.scalar(), Some(&Value::Int(400)));

    // Kill one node: every chunk still has a live replica.
    q.cluster().servers()[1].set_online(false);
    let after = q.query("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(
        after.scalar(),
        Some(&Value::Int(400)),
        "replication must mask a single node failure"
    );

    // Point queries too.
    let r = q
        .query("SELECT objectId FROM Object WHERE objectId = 123")
        .unwrap();
    assert_eq!(r.num_rows(), 1);
}

#[test]
fn unreplicated_cluster_reports_failure() {
    let patch = small_patch(200, 62);
    let q = cluster_from(&patch, 3);
    q.cluster().servers()[0].set_online(false);
    let err = q.query("SELECT COUNT(*) FROM Object").unwrap_err();
    assert!(
        matches!(err, QservError::Fabric(_)),
        "losing the only replica must surface as a fabric error, got {err}"
    );
}

#[test]
fn recovery_after_node_returns() {
    let patch = small_patch(200, 63);
    let q = cluster_from(&patch, 3);
    q.cluster().servers()[2].set_online(false);
    assert!(q.query("SELECT COUNT(*) FROM Object").is_err());
    q.cluster().servers()[2].set_online(true);
    let r = q.query("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(200)));
}

#[test]
fn three_way_replication_survives_two_failures() {
    let patch = small_patch(300, 64);
    let q = ClusterBuilder::new(5)
        .replication(3)
        .placement(PlacementStrategy::RoundRobin)
        .build(&patch.objects, &patch.sources);
    q.cluster().servers()[0].set_online(false);
    q.cluster().servers()[1].set_online(false);
    let r = q.query("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(300)));
}

#[test]
fn worker_error_carries_chunk_id() {
    let patch = small_patch(100, 65);
    let q = cluster_from(&patch, 2);
    let err = q.query("SELECT no_such_column FROM Object").unwrap_err();
    match err {
        QservError::Worker { chunk, message } => {
            assert!(q.placement().chunks().contains(&chunk));
            assert!(message.contains("no_such_column"), "{message}");
        }
        other => panic!("expected a worker error, got {other}"),
    }
}

#[test]
fn concurrent_queries_from_many_threads() {
    let patch = small_patch(400, 66);
    let q = cluster_from(&patch, 4);
    crossbeam::thread::scope(|scope| {
        for t in 0..8 {
            let q = &q;
            scope.spawn(move |_| {
                for i in 0..5 {
                    let oid = 1 + (t * 37 + i * 11) % 400;
                    let r = q
                        .query(&format!(
                            "SELECT objectId FROM Object WHERE objectId = {oid}"
                        ))
                        .unwrap();
                    assert_eq!(r.num_rows(), 1);
                    assert_eq!(r.rows[0][0], Value::Int(oid as i64));
                }
                let r = q.query("SELECT COUNT(*) FROM Object").unwrap();
                assert_eq!(r.scalar(), Some(&Value::Int(400)));
            });
        }
    })
    .expect("no query thread panics");
}

#[test]
fn concurrent_near_neighbor_and_scans() {
    // Subchunk generation + dropping must be safe under concurrency.
    let patch = small_patch(300, 67);
    let q = cluster_from(&patch, 3);
    let nn = "SELECT count(*) FROM Object o1, Object o2 \
              WHERE qserv_areaspec_box(0.0, -2.0, 2.0, 2.0) \
              AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.05";
    let reference = q.query(nn).unwrap();
    crossbeam::thread::scope(|scope| {
        for _ in 0..4 {
            let q = &q;
            let reference = &reference;
            scope.spawn(move |_| {
                for _ in 0..3 {
                    let r = q.query(nn).unwrap();
                    assert_eq!(&r, reference);
                    let c = q.query("SELECT COUNT(*) FROM Object").unwrap();
                    assert_eq!(c.scalar(), Some(&Value::Int(300)));
                }
            });
        }
    })
    .expect("no thread panics");
}

#[test]
fn hash_placement_cluster_works() {
    let patch = small_patch(250, 68);
    let q = ClusterBuilder::new(4)
        .placement(PlacementStrategy::Hash)
        .build(&patch.objects, &patch.sources);
    let r = q.query("SELECT COUNT(*) FROM Object").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(250)));
}
